"""Shared-memory lifecycle tests for the sharded serving tier.

The slab protocol (DESIGN.md §16): the coordinator owns one named
``multiprocessing.shared_memory`` segment per shard, sliced into fixed
slots; workers attach untracked (the coordinator is the sole owner) and
only ever read.  Two things must hold for the content-hash embedding
cache upstream to stay sound, and for long-lived servers not to bleed
``/dev/shm``:

- **bit-exactness** — a float64 payload read out of a slot is the byte
  image of what was written (same shape, dtype and content digest);
- **ownership** — every segment this module ever creates is unlinked by
  ``close()``, whether workers exited cleanly or were SIGKILLed, and a
  worker death can never destroy a segment the coordinator still serves
  from.

Slab-only tests run in-process; the ``@pytest.mark.shard`` ones
round-trip payloads through real spawned workers.
"""

import glob

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import FeatureEncoder, ShardedSimilarityServer, trajectory_key
from repro.serve.shard import SHM_PREFIX, _ShmSlab, _read_slot


def _segments():
    """Names of live slab segments on this host (ours only, by prefix)."""
    return sorted(glob.glob(f"/dev/shm/{SHM_PREFIX}-*"))


def _trajs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(int(rng.integers(6, 12)), 2)).cumsum(axis=0)
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# The slab alone (no worker processes)
# ---------------------------------------------------------------------------


class TestShmSlab:
    def test_write_read_round_trip_is_bit_exact(self):
        slab = _ShmSlab(slots=4, slot_bytes=4096)
        try:
            rng = np.random.default_rng(0)
            # Subnormals, infinities and negative zero must all survive:
            # the content-hash cache keys on the exact byte image.
            payload = rng.normal(size=(16, 8))
            payload[0, 0] = np.inf
            payload[0, 1] = -np.inf
            payload[0, 2] = 5e-324  # smallest subnormal
            payload[0, 3] = -0.0
            slot = slab.acquire()
            assert slot is not None
            shape = slab.write(slot, payload)
            assert shape == (16, 8)
            out = _read_slot(slab._shm, slot, slab.slot_bytes, shape)
            assert out.dtype == np.float64
            assert out.tobytes() == payload.tobytes()
            assert trajectory_key(out) == trajectory_key(payload)
        finally:
            slab.close()

    def test_slots_exhaust_to_none_and_recycle(self):
        slab = _ShmSlab(slots=2, slot_bytes=256)
        try:
            a, b = slab.acquire(), slab.acquire()
            assert a is not None and b is not None and a != b
            assert slab.acquire() is None  # exhausted, not blocking
            slab.release(a)
            assert slab.acquire() == a
        finally:
            slab.close()

    def test_oversized_payload_is_rejected(self):
        slab = _ShmSlab(slots=1, slot_bytes=64)
        try:
            slot = slab.acquire()
            with pytest.raises(ValueError):
                slab.write(slot, np.zeros(9))  # 72 B > 64 B slot
        finally:
            slab.close()

    def test_close_unlinks_the_segment_and_is_idempotent(self):
        before = set(_segments())
        slab = _ShmSlab(slots=1, slot_bytes=64)
        created = set(_segments()) - before
        assert len(created) == 1
        slab.close()
        assert set(_segments()) == before
        slab.close()  # second close is a no-op, not an error
        with pytest.raises(ValueError):
            slab.write(0, np.zeros(1))  # closed slab refuses writes


# ---------------------------------------------------------------------------
# Through real workers
# ---------------------------------------------------------------------------


@pytest.mark.shard
def test_payload_round_trip_through_worker_is_bit_exact():
    enc = FeatureEncoder(dim=4, seed=0)
    srv = ShardedSimilarityServer(enc, dim=4, n_shards=1, shard_deadline_s=30.0)
    try:
        rng = np.random.default_rng(3)
        for shape in [(7, 2), (128, 2), (1, 2)]:
            payload = rng.normal(size=shape).cumsum(axis=0)
            resp = srv.echo_shard(0, payload, timeout_s=30.0)
            echoed = np.asarray(resp["data"])
            assert echoed.dtype == np.float64
            assert echoed.shape == shape
            assert echoed.tobytes() == payload.tobytes()
            # The worker hashed the bytes IT saw: digest equality proves
            # the slab handed over the exact image, end to end.
            assert resp["digest"] == trajectory_key(payload)
    finally:
        srv.close()


@pytest.mark.shard
def test_oversized_payload_falls_back_inline_and_stays_exact():
    """Payloads past the slot size ship inline (slower, never wrong)."""
    enc = FeatureEncoder(dim=4, seed=0)
    srv = ShardedSimilarityServer(
        enc, dim=4, n_shards=1, slot_bytes=256, shard_deadline_s=30.0
    )
    try:
        overflow_before = get_registry().counter("serve.shard.slab_overflow").value
        big = np.random.default_rng(4).normal(size=(600, 2))  # 9600 B > 256 B
        resp = srv.echo_shard(0, big, timeout_s=30.0)
        assert np.asarray(resp["data"]).tobytes() == big.tobytes()
        assert resp["digest"] == trajectory_key(big)
        assert (
            get_registry().counter("serve.shard.slab_overflow").value
            > overflow_before
        )
    finally:
        srv.close()


@pytest.mark.shard
def test_no_segments_leak_after_clean_close():
    before = set(_segments())
    enc = FeatureEncoder(dim=4, seed=0)
    srv = ShardedSimilarityServer(enc, dim=4, n_shards=2, shard_deadline_s=30.0)
    assert len(set(_segments()) - before) == 2  # one slab per shard
    srv.add_batch(_trajs(10))
    srv.topk(_trajs(1, seed=8)[0], k=2)
    srv.close()
    assert set(_segments()) == before


@pytest.mark.shard
def test_no_segments_leak_after_worker_crash():
    """SIGKILLed workers cannot unlink; the coordinator still must."""
    before = set(_segments())
    enc = FeatureEncoder(dim=4, seed=0)
    srv = ShardedSimilarityServer(enc, dim=4, n_shards=2, shard_deadline_s=30.0)
    srv.add_batch(_trajs(10, seed=1))
    for handle in srv._handles:
        handle.process.kill()
        handle.process.join(timeout=10)
    # Segments survive the workers' death: the coordinator can keep
    # serving fallbacks from its retained blocks, then reclaims on close.
    assert len(set(_segments()) - before) == 2
    result = srv.topk(_trajs(1, seed=9)[0], k=2)
    assert result.degraded
    srv.close()
    assert set(_segments()) == before


@pytest.mark.shard
def test_slots_recycle_and_none_leak_across_queries():
    """After a serving burst every slab slot is back on the free list."""
    enc = FeatureEncoder(dim=4, seed=0)
    srv = ShardedSimilarityServer(
        enc, dim=4, n_shards=2, slots=4, shard_deadline_s=30.0
    )
    try:
        srv.add_batch(_trajs(12, seed=2))
        for q in _trajs(10, seed=21):
            assert not srv.topk(q, k=3).degraded
        for handle in srv._handles:
            assert not handle._pending
            assert sorted(handle.slab._free) == [0, 1, 2, 3]
    finally:
        srv.close()
