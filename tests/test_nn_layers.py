"""Tests for Linear, MLP, activations and initialisers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import MLP, LeakyReLU, Linear, ReLU, Sigmoid, Tanh
from repro.nn import init as nn_init


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_broadcasts_over_leading_axes(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, np.zeros((1, 2)))

    def test_affine_math(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_deterministic_given_rng(self):
        a = Linear(3, 3, rng=np.random.default_rng(1))
        b = Linear(3, 3, rng=np.random.default_rng(1))
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)

    def test_gradients_flow_to_weights(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_repr(self, rng):
        assert "Linear(in=3, out=2" in repr(Linear(3, 2, rng=rng))


class TestMLP:
    def test_depth_and_shapes(self, rng):
        mlp = MLP([4, 8, 8, 2], rng=rng)
        assert len(mlp.linears) == 3
        assert mlp(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_final_activation_flag(self, rng):
        mlp = MLP([2, 2], activation=ReLU(), final_activation=True, rng=rng)
        out = mlp(Tensor(-100 * np.ones((1, 2))))
        assert np.all(out.data >= 0)

    def test_rejects_short_size_list(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_three_d_input(self, rng):
        mlp = MLP([4, 4, 4], rng=rng)
        assert mlp(Tensor(np.ones((2, 6, 4)))).shape == (2, 6, 4)

    def test_gradcheck(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        x = rng.normal(size=(4, 3))
        check_gradients(lambda t: mlp(t), [x], atol=1e-4)


class TestActivations:
    @pytest.mark.parametrize(
        "act,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (LeakyReLU(0.1), lambda x: np.where(x >= 0, x, 0.1 * x)),
        ],
    )
    def test_values(self, act, fn, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(act(Tensor(x)).data, fn(x))

    def test_activation_has_no_parameters(self):
        assert LeakyReLU().parameters() == []


class TestInit:
    def test_xavier_uniform_bound(self, rng):
        w = nn_init.xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self, rng):
        w = nn_init.xavier_normal((200, 200), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)

    def test_orthogonal_columns(self, rng):
        w = nn_init.orthogonal((8, 8), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_orthogonal_rectangular(self, rng):
        w = nn_init.orthogonal((4, 8), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)
        w2 = nn_init.orthogonal((8, 4), rng)
        np.testing.assert_allclose(w2.T @ w2, np.eye(4), atol=1e-10)

    def test_uniform_bound(self, rng):
        w = nn_init.uniform((50,), rng, 0.3)
        assert np.all(np.abs(w) <= 0.3)

    def test_zeros(self):
        np.testing.assert_allclose(nn_init.zeros((2, 3)), np.zeros((2, 3)))

    def test_kaiming_shape(self, rng):
        assert nn_init.kaiming_uniform((5, 7), rng).shape == (5, 7)

    def test_fans_rejects_scalar(self, rng):
        with pytest.raises(ValueError):
            nn_init.xavier_uniform((), rng)
