"""Tests for trajectory perturbations."""

import numpy as np
import pytest

from repro.data import Trajectory
from repro.data.augment import add_noise, crop, downsample


@pytest.fixture
def traj(rng):
    return rng.normal(size=(30, 2))


class TestDownsample:
    def test_keeps_endpoints(self, traj, rng):
        out = downsample(traj, 0.3, rng)
        np.testing.assert_allclose(out[0], traj[0])
        np.testing.assert_allclose(out[-1], traj[-1])

    def test_reduces_length(self, traj, rng):
        out = downsample(traj, 0.3, rng)
        assert 2 <= len(out) < len(traj)

    def test_full_fraction_identity(self, traj, rng):
        np.testing.assert_allclose(downsample(traj, 1.0, rng), traj)

    def test_short_input_untouched(self, rng):
        pts = rng.normal(size=(2, 2))
        np.testing.assert_allclose(downsample(pts, 0.1, rng), pts)

    def test_does_not_mutate(self, traj, rng):
        before = traj.copy()
        downsample(traj, 0.5, rng)
        np.testing.assert_allclose(traj, before)

    def test_accepts_trajectory_object(self, traj, rng):
        out = downsample(Trajectory(traj), 0.5, rng)
        assert out.shape[1] == 2

    def test_validation(self, traj, rng):
        with pytest.raises(ValueError):
            downsample(traj, 0.0, rng)
        with pytest.raises(ValueError):
            downsample(traj, 1.5, rng)


class TestNoise:
    def test_zero_sigma_identity(self, traj, rng):
        np.testing.assert_allclose(add_noise(traj, 0.0, rng), traj)

    def test_perturbation_scale(self, traj, rng):
        out = add_noise(traj, 0.1, rng)
        assert (out - traj).std() == pytest.approx(0.1, rel=0.4)

    def test_validation(self, traj, rng):
        with pytest.raises(ValueError):
            add_noise(traj, -0.1, rng)


class TestCrop:
    def test_window_is_contiguous_subsequence(self, traj, rng):
        out = crop(traj, 0.4, rng)
        # Find the window start by matching the first output point.
        starts = np.where((traj == out[0]).all(axis=1))[0]
        assert any(
            np.allclose(traj[s : s + len(out)], out) for s in starts
        )

    def test_window_size(self, traj, rng):
        out = crop(traj, 0.4, rng)
        assert len(out) == max(2, round(0.4 * len(traj)))

    def test_full_fraction_identity(self, traj, rng):
        np.testing.assert_allclose(crop(traj, 1.0, rng), traj)

    def test_validation(self, traj, rng):
        with pytest.raises(ValueError):
            crop(traj, 0.0, rng)
