"""Tests for the exact distance metrics, cross-validated against naive DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    as_points,
    cross_dist,
    dtw,
    dtw_alignment,
    dtw_matrix,
    edr,
    erp,
    frechet,
    hausdorff,
    lcss,
    lcss_length,
)

# ----------------------------------------------------------------------
# Naive reference implementations (straight from the recurrences)
# ----------------------------------------------------------------------


def naive_dtw(a, b):
    m, n = len(a), len(b)
    d = np.full((m + 1, n + 1), np.inf)
    d[0, 0] = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            c = np.linalg.norm(a[i - 1] - b[j - 1])
            d[i, j] = c + min(d[i - 1, j], d[i, j - 1], d[i - 1, j - 1])
    return d[m, n]


def naive_frechet(a, b):
    m, n = len(a), len(b)
    d = np.full((m + 1, n + 1), np.inf)
    d[0, 0] = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            c = np.linalg.norm(a[i - 1] - b[j - 1])
            d[i, j] = max(c, min(d[i - 1, j], d[i, j - 1], d[i - 1, j - 1]))
    return d[m, n]


def naive_erp(a, b, g=np.zeros(2)):
    m, n = len(a), len(b)
    d = np.zeros((m + 1, n + 1))
    for i in range(1, m + 1):
        d[i, 0] = d[i - 1, 0] + np.linalg.norm(a[i - 1] - g)
    for j in range(1, n + 1):
        d[0, j] = d[0, j - 1] + np.linalg.norm(b[j - 1] - g)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            d[i, j] = min(
                d[i - 1, j] + np.linalg.norm(a[i - 1] - g),
                d[i, j - 1] + np.linalg.norm(b[j - 1] - g),
                d[i - 1, j - 1] + np.linalg.norm(a[i - 1] - b[j - 1]),
            )
    return d[m, n]


def naive_edr(a, b, eps):
    m, n = len(a), len(b)
    d = np.zeros((m + 1, n + 1))
    d[:, 0] = np.arange(m + 1)
    d[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = 0 if np.linalg.norm(a[i - 1] - b[j - 1]) <= eps else 1
            d[i, j] = min(d[i - 1, j] + 1, d[i, j - 1] + 1, d[i - 1, j - 1] + sub)
    return d[m, n]


def naive_lcss_len(a, b, eps):
    m, n = len(a), len(b)
    length = np.zeros((m + 1, n + 1))
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if np.linalg.norm(a[i - 1] - b[j - 1]) <= eps:
                length[i, j] = length[i - 1, j - 1] + 1
            else:
                length[i, j] = max(length[i - 1, j], length[i, j - 1])
    return length[m, n]


def random_pair(rng, max_len=12):
    a = rng.normal(size=(int(rng.integers(1, max_len)), 2))
    b = rng.normal(size=(int(rng.integers(1, max_len)), 2))
    return a, b


# ----------------------------------------------------------------------


class TestPointKernels:
    def test_as_points_validates(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            as_points(np.zeros((0, 2)))

    def test_as_points_accepts_trajectory_objects(self):
        class Fake:
            points = np.zeros((2, 2))

        assert as_points(Fake()).shape == (2, 2)

    def test_cross_dist_values(self, rng):
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(4, 2))
        d = cross_dist(a, b)
        assert d.shape == (3, 4)
        assert d[1, 2] == pytest.approx(np.linalg.norm(a[1] - b[2]))


@pytest.mark.parametrize("seed", range(8))
class TestAgainstNaive:
    def test_dtw(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert dtw(a, b) == pytest.approx(naive_dtw(a, b))

    def test_frechet(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert frechet(a, b) == pytest.approx(naive_frechet(a, b))

    def test_erp(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert erp(a, b) == pytest.approx(naive_erp(a, b))

    def test_edr(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert edr(a, b, eps=0.5) == pytest.approx(naive_edr(a, b, 0.5))

    def test_lcss(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert lcss_length(a, b, eps=0.5) == naive_lcss_len(a, b, 0.5)


class TestMetricProperties:
    @pytest.mark.parametrize("metric", [dtw, frechet, hausdorff, erp])
    def test_identity(self, metric, rng):
        a = rng.normal(size=(7, 2))
        assert metric(a, a) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("metric", [dtw, frechet, hausdorff, erp, edr, lcss])
    def test_symmetry(self, metric, rng):
        a = rng.normal(size=(5, 2))
        b = rng.normal(size=(8, 2))
        assert metric(a, b) == pytest.approx(metric(b, a))

    @pytest.mark.parametrize("metric", [dtw, frechet, hausdorff, erp])
    def test_nonnegative(self, metric, rng):
        a, b = random_pair(rng)
        assert metric(a, b) >= 0

    def test_erp_triangle_inequality(self, rng):
        # ERP is a true metric; DTW famously is not.
        for _ in range(10):
            a, b, c = (rng.normal(size=(int(rng.integers(2, 8)), 2)) for _ in range(3))
            assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-9

    def test_translation_invariance_of_shapes(self, rng):
        a, b = random_pair(rng)
        shift = np.array([10.0, -5.0])
        for metric in (dtw, frechet, hausdorff):
            assert metric(a + shift, b + shift) == pytest.approx(metric(a, b))

    def test_lcss_range(self, rng):
        a, b = random_pair(rng)
        assert 0.0 <= lcss(a, b) <= 1.0

    def test_lcss_identical_is_zero(self, rng):
        a = rng.normal(size=(6, 2))
        assert lcss(a, a) == 0.0

    def test_edr_identical_is_zero(self, rng):
        a = rng.normal(size=(6, 2))
        assert edr(a, a) == 0.0

    def test_edr_upper_bound(self, rng):
        a, b = random_pair(rng)
        assert edr(a, b) <= max(len(a), len(b))

    def test_hausdorff_order_invariant(self, rng):
        a, b = random_pair(rng)
        perm = np.random.default_rng(0).permutation(len(a))
        assert hausdorff(a[perm], b) == pytest.approx(hausdorff(a, b))

    def test_frechet_at_least_hausdorff(self, rng):
        # The Fréchet distance upper-bounds Hausdorff for the same curves.
        for _ in range(10):
            a, b = random_pair(rng)
            assert frechet(a, b) >= hausdorff(a, b) - 1e-9

    def test_dtw_at_least_frechet_like_lower_bound(self, rng):
        # DTW sums costs, so it is at least the single largest matched cost
        # on its own path, which is at least the Fréchet value? Not in
        # general — but DTW >= d(first points matched) >= 0.  Check a
        # simpler, always-true bound: DTW >= distance between start points
        # is false too; assert DTW >= 0 and >= |m-n| * 0 trivially. Keep a
        # meaningful known case instead.
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0]])
        assert dtw(a, b) == pytest.approx(2.0)

    def test_eps_validation(self):
        a = np.zeros((2, 2))
        with pytest.raises(ValueError):
            edr(a, a, eps=0.0)
        with pytest.raises(ValueError):
            lcss(a, a, eps=-1.0)

    def test_erp_gap_point_changes_result(self, rng):
        a, b = random_pair(rng)
        d0 = erp(a, b, gap=(0.0, 0.0))
        d1 = erp(a, b, gap=(100.0, 100.0))
        if len(a) != len(b):  # gap penalties only arise with deletions
            assert d0 != pytest.approx(d1)


class TestKnownValues:
    def test_dtw_hand_example(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        b = np.array([[0.0, 0.0], [2.0, 0.0]])
        # Optimal: (0,0)->(0,0); (1,0) matches either end at cost 1; (2,0)->(2,0).
        assert dtw(a, b) == pytest.approx(1.0)

    def test_frechet_hand_example(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0]])
        assert frechet(a, b) == pytest.approx(1.0)

    def test_hausdorff_hand_example(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0], [0.0, 1.0]])
        # Nearest to a is (0,1) at 1; farthest b point from a is (3,4) at 5.
        assert hausdorff(a, b) == pytest.approx(5.0)

    def test_edr_hand_example(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[0.0, 0.0], [5.0, 5.0]])
        assert edr(a, b, eps=0.1) == 1.0

    def test_lcss_hand_example(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        b = np.array([[0.0, 0.0], [9.0, 9.0], [2.0, 2.0]])
        assert lcss_length(a, b, eps=0.1) == 2
        assert lcss(a, b, eps=0.1) == pytest.approx(1 / 3)

    def test_erp_empty_against_gap(self):
        # ERP of a trajectory vs a single far point accumulates gap costs.
        a = np.array([[1.0, 0.0], [2.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        # Best: match (1,0), delete (2,0) at cost |(2,0)| = 2.
        assert erp(a, b) == pytest.approx(2.0)


class TestDTWAlignment:
    def test_path_endpoints(self, rng):
        a, b = random_pair(rng, max_len=10)
        path = dtw_alignment(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)

    def test_path_is_monotone(self, rng):
        a, b = random_pair(rng, max_len=10)
        path = dtw_alignment(a, b)
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert 0 <= i1 - i0 <= 1
            assert 0 <= j1 - j0 <= 1
            assert (i1 - i0) + (j1 - j0) >= 1

    def test_path_cost_equals_distance(self, rng):
        a, b = random_pair(rng, max_len=10)
        path = dtw_alignment(a, b)
        cost = sum(np.linalg.norm(a[i] - b[j]) for i, j in path)
        assert cost == pytest.approx(dtw(a, b))

    def test_dtw_matrix_final_cell(self, rng):
        a, b = random_pair(rng, max_len=10)
        table = dtw_matrix(a, b)
        assert table[len(a), len(b)] == pytest.approx(dtw(a, b))

    def test_identical_trajectories_diagonal_path(self):
        a = np.arange(10, dtype=float).reshape(5, 2)
        path = dtw_alignment(a, a)
        assert path == [(i, i) for i in range(5)]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_dtw_vs_naive(seed):
    a, b = random_pair(np.random.default_rng(seed), max_len=8)
    assert dtw(a, b) == pytest.approx(naive_dtw(a, b))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.05, 2.0))
def test_property_lcss_vs_naive(seed, eps):
    a, b = random_pair(np.random.default_rng(seed), max_len=8)
    assert lcss_length(a, b, eps=eps) == naive_lcss_len(a, b, eps)
