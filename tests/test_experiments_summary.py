"""Tests for experiment result summarisation."""

import pytest

from repro.experiments import RunResult
from repro.experiments.summary import ablation_gap, summarize, winner_table


def result(model, metric, hr10, dataset="porto"):
    return RunResult(
        model_name=model,
        metric=metric,
        dataset=dataset,
        scores={"HR-5": hr10 - 0.1, "HR-10": hr10, "R5@10": hr10 + 0.1},
        train_seconds_per_epoch=1.0,
        final_loss=0.01,
    )


@pytest.fixture
def results():
    return [
        result("SRN", "dtw", 0.5),
        result("TMN", "dtw", 0.7),
        result("TMN-NM", "dtw", 0.55),
        result("SRN", "lcss", 0.6),
        result("TMN", "lcss", 0.65),
        result("TMN-NM", "lcss", 0.5),
    ]


class TestSummarize:
    def test_winner_identified(self, results):
        summaries = summarize(results)
        by_metric = {s.metric: s for s in summaries}
        assert by_metric["dtw"].winner == "TMN"
        assert by_metric["dtw"].winner_score == pytest.approx(0.7)
        assert by_metric["dtw"].runner_up == "TMN-NM"

    def test_margin(self, results):
        s = {x.metric: x for x in summarize(results)}["dtw"]
        assert s.margin == pytest.approx(0.15)

    def test_custom_score_key(self, results):
        summaries = summarize(results, score_key="R5@10")
        assert all(s.score_key == "R5@10" for s in summaries)

    def test_single_model_block_rejected(self):
        with pytest.raises(ValueError):
            summarize([result("TMN", "dtw", 0.5)])

    def test_blocks_separated_by_dataset(self):
        rows = [
            result("A", "dtw", 0.5, dataset="porto"),
            result("B", "dtw", 0.6, dataset="porto"),
            result("A", "dtw", 0.9, dataset="geolife"),
            result("B", "dtw", 0.2, dataset="geolife"),
        ]
        summaries = summarize(rows)
        winners = {(s.metric, s.dataset): s.winner for s in summaries}
        assert winners[("dtw", "porto")] == "B"
        assert winners[("dtw", "geolife")] == "A"


class TestWinnerTable:
    def test_renders(self, results):
        text = winner_table(results)
        assert "TMN" in text
        assert "dtw" in text
        assert "margin" in text


class TestAblationGap:
    def test_positive_gaps(self, results):
        gaps = ablation_gap(results)
        assert gaps["dtw"] == pytest.approx(0.15)
        assert gaps["lcss"] == pytest.approx(0.15)

    def test_custom_models(self, results):
        gaps = ablation_gap(results, full_model="TMN", ablated_model="SRN")
        assert gaps["dtw"] == pytest.approx(0.2)

    def test_missing_models_rejected(self, results):
        with pytest.raises(ValueError):
            ablation_gap(results, full_model="GPT", ablated_model="TMN")
