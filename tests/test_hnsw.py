"""Tests for the HNSW approximate nearest-neighbour index."""

import numpy as np
import pytest

from repro.index import knn_brute
from repro.index.hnsw import HNSWIndex


@pytest.fixture
def built(rng):
    pts = rng.normal(size=(300, 8))
    index = HNSWIndex(dim=8, m=8, ef_construction=64, seed=0)
    index.add_batch(pts)
    return index, pts


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            HNSWIndex(dim=0)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, m=1)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, ef_construction=0)

    def test_add_returns_sequential_ids(self, rng):
        index = HNSWIndex(dim=3)
        ids = index.add_batch(rng.normal(size=(5, 3)))
        assert ids == [0, 1, 2, 3, 4]
        assert len(index) == 5

    def test_add_rejects_wrong_dim(self, rng):
        index = HNSWIndex(dim=3)
        with pytest.raises(ValueError):
            index.add(rng.normal(size=4))

    def test_query_empty_index(self):
        with pytest.raises(RuntimeError):
            HNSWIndex(dim=2).query(np.zeros(2))


class TestSearchQuality:
    def test_exact_on_indexed_point(self, built):
        index, pts = built
        d, i = index.query(pts[42], k=1)
        assert i[0] == 42
        assert d[0] == pytest.approx(0.0, abs=1e-9)

    def test_high_recall_vs_brute_force(self, built, rng):
        index, pts = built
        queries = rng.normal(size=(30, 8))
        hits = total = 0
        for q in queries:
            _, approx = index.query(q, k=10, ef=80)
            _, exact = knn_brute(pts, q[None], 10)
            hits += len(set(approx.tolist()) & set(exact[0].tolist()))
            total += 10
        assert hits / total >= 0.9  # approximate, but must be good

    def test_distances_sorted(self, built, rng):
        index, _ = built
        d, _ = index.query(rng.normal(size=8), k=10)
        assert np.all(np.diff(d) >= -1e-12)

    def test_larger_ef_no_worse(self, built, rng):
        index, pts = built
        q = rng.normal(size=8)
        _, exact = knn_brute(pts, q[None], 5)
        exact = set(exact[0].tolist())

        def recall(ef):
            _, ids = index.query(q, k=5, ef=ef)
            return len(set(ids.tolist()) & exact)

        assert recall(200) >= recall(5)

    def test_query_validation(self, built, rng):
        index, _ = built
        with pytest.raises(ValueError):
            index.query(np.zeros(3), k=1)
        with pytest.raises(ValueError):
            index.query(np.zeros(8), k=0)

    def test_single_element_index(self, rng):
        index = HNSWIndex(dim=2)
        index.add(np.array([1.0, 2.0]))
        d, i = index.query(np.array([1.0, 2.0]), k=1)
        assert i[0] == 0


class TestIntegrationWithEmbeddings:
    def test_trajectory_embedding_search(self, rng):
        """HNSW over learned trajectory embeddings (the paper's use case)."""
        from repro.core import TMN, TMNConfig

        model = TMN(TMNConfig(hidden_dim=8, matching=False, sampling_number=4, seed=0))
        trajs = [rng.normal(size=(6, 2)) for _ in range(50)]
        emb = model.encode(trajs)
        index = HNSWIndex(dim=8, m=6, seed=1)
        index.add_batch(emb)
        _, approx = index.query(emb[0], k=5, ef=50)
        _, exact = knn_brute(emb, emb[0][None], 5)
        assert len(set(approx.tolist()) & set(exact[0].tolist())) >= 3


class TestQueryBatch:
    def test_matches_single_queries(self, built, rng):
        index, pts = built
        queries = rng.normal(size=(7, 8))
        dists, ids = index.query_batch(queries, k=3, ef=50)
        assert dists.shape == (7, 3) and ids.shape == (7, 3)
        for row, q in enumerate(queries):
            d_single, i_single = index.query(q, k=3, ef=50)
            np.testing.assert_array_equal(ids[row], i_single)
            np.testing.assert_allclose(dists[row], d_single)

    def test_empty_batch(self, built):
        index, _ = built
        dists, ids = index.query_batch(np.zeros((0, 8)), k=2)
        assert dists.shape == (0, 2) and ids.shape == (0, 2)

    def test_validation(self, built):
        index, _ = built
        with pytest.raises(ValueError):
            index.query_batch(np.zeros(8), k=1)  # 1-D, not a batch
        with pytest.raises(ValueError):
            index.query_batch(np.zeros((3, 5)), k=1)  # wrong dim


class TestConcurrency:
    """The serving layer queries from worker threads while inserts happen.

    The contract (see the module docstring): operations serialise on an
    internal lock — concurrent readers must never crash, never observe a
    half-linked graph, and never return an id >= the index size they
    observed."""

    def test_queries_during_adds(self, rng):
        import threading

        index = HNSWIndex(dim=4, m=6, ef_construction=32, seed=0)
        index.add_batch(rng.normal(size=(10, 4)))
        vectors = rng.normal(size=(120, 4))
        queries = rng.normal(size=(40, 4))
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for v in vectors:
                    index.add(v)
            finally:
                stop.set()

        def reader(seed):
            local = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    q = queries[int(local.integers(0, len(queries)))]
                    size_before = len(index)
                    dists, ids = index.query(q, k=3)
                    assert len(ids) == 3
                    # Ids must come from trajectories present at query time;
                    # the size can only have grown since we sampled it.
                    assert np.all(ids < len(index))
                    assert np.all(ids >= 0)
                    assert np.all(np.isfinite(dists))
                    assert len(index) >= size_before
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        readers = [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        writer_thread = threading.Thread(target=writer)
        for t in readers:
            t.start()
        writer_thread.start()
        writer_thread.join()
        for t in readers:
            t.join()
        assert not errors
        assert len(index) == 130

    def test_concurrent_adds_assign_unique_ids(self, rng):
        import threading

        index = HNSWIndex(dim=3, m=4, seed=1)
        vectors = rng.normal(size=(60, 3))
        ids = []
        lock = threading.Lock()

        def worker(part):
            for v in part:
                node = index.add(v)
                with lock:
                    ids.append(node)

        threads = [
            threading.Thread(target=worker, args=(vectors[w::4],)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(ids) == list(range(60))
        assert len(index) == 60

    def test_query_batch_during_adds(self, rng):
        import threading

        index = HNSWIndex(dim=4, m=6, seed=2)
        index.add_batch(rng.normal(size=(20, 4)))
        inserts = rng.normal(size=(60, 4))
        queries = rng.normal(size=(5, 4))
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for v in inserts:
                    index.add(v)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    dists, ids = index.query_batch(queries, k=2)
                    assert ids.shape == (5, 2)
                    assert np.all(ids < len(index))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        writer_thread = threading.Thread(target=writer)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join()
        reader_thread.join()
        assert not errors
