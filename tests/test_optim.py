"""Tests for optimizers, gradient clipping and LR schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import SGD, Adam, ConstantLR, ExponentialDecayLR, StepLR, clip_grad_norm


def quadratic_loss(p: Parameter) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = p - target
    return (diff * diff).sum()


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_skips_parameters_without_grad(self):
        p, q = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([p, q], lr=0.1)
        (p.sum() * 2.0).backward()
        opt.step()
        np.testing.assert_allclose(q.data, np.ones(2))
        assert not np.allclose(p.data, np.ones(2))

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.ones(3) * 10)
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(100):
            loss = (p * 0.0).sum()  # zero data gradient: only decay acts
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.all(np.abs(p.data) < 10)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(1))
        opt = Adam([p])
        p.grad = np.ones(1)
        opt.zero_grad()
        assert p.grad is None


class TestSGD:
    def test_single_step_math(self):
        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.5)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [1.5])

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(3))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = quadratic_loss(p).item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay(self):
        p = Parameter(np.array([4.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [4.0 - 0.1 * 0.5 * 4.0])

    def test_rejects_empty_and_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([])
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1)


class TestClip:
    def test_norm_reduced_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10  # norm 20
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.ones(2))], 1.0) == 0.0

    def test_rejects_nonpositive_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        with pytest.raises(ValueError):
            clip_grad_norm([p], 0.0)


class TestSchedules:
    def test_constant(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.5)
        sched = ConstantLR(opt)
        assert sched.step() == 0.5
        assert opt.lr == 0.5

    def test_step_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_lr_rejects_bad_step(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)

    def test_exponential(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = ExponentialDecayLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)
