"""Tests for the request-scoped tracing stack: repro.obs.trace (spans,
cross-thread handoffs, ring + JSONL log), expo (Prometheus exposition),
slo (declarative SLOs over the trace ring), benchgate (bench-regression
gate), the histogram reservoir, lint rule R008, and the traced serve /
train integration plus the metrics/trace/bench-diff CLI surface."""

import json
import textwrap
import threading

import numpy as np
import pytest

from repro.analysis import run_analysis
from repro.cli import main
from repro.obs import (
    SLO,
    SLOViolation,
    Tracer,
    check_slos,
    compare_bench,
    compare_bench_files,
    evaluate_slos,
    format_trace,
    get_tracer,
    read_trace_log,
    render_exposition,
)
from repro.obs.benchgate import tolerance_for
from repro.obs.metrics import Histogram
from repro.obs.trace import ROOT, Trace


class FakeClock:
    """Deterministic injectable clock for byte-identical trace output."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _scripted_trace(tracer, clk):
    """One serve-shaped trace with a fully scripted timeline (8ms total)."""
    with tracer.trace("serve.topk", k=5, deadline_s=0.01) as tr:
        with tr.span("cache") as cache:
            clk.advance(0.001)
            cache.set(result="miss")
        handoff = tr.handoff()  # t=0.001
        clk.advance(0.002)
        handoff.record_wait()  # queue-wait [0.001, 0.003]
        handoff.record("forward", 0.003, 0.007, batch_size=4)
        clk.advance(0.004)  # t=0.007
        with tr.span("index") as index:
            clk.advance(0.0005)
            index.set(n=12)
        clk.advance(0.0005)  # end t=0.008
    return tracer.recent()[-1]


# ----------------------------------------------------------------------
# Trace / span basics
# ----------------------------------------------------------------------
class TestTraceBasics:
    def test_span_tree_and_attrs(self):
        clk = FakeClock()
        tracer = Tracer(clock=clk)
        with tracer.trace("work", job=1) as tr:
            with tr.span("outer") as outer:
                clk.advance(0.5)
                outer.set(stage="a")
                with tr.span("inner"):
                    clk.advance(0.25)
        trace = tracer.recent()[-1]
        assert trace.name == "work"
        assert trace.attrs["job"] == 1
        assert trace.duration == pytest.approx(0.75)
        (outer_ev,) = trace.children(ROOT)
        assert outer_ev["name"] == "outer"
        assert outer_ev["attrs"] == {"stage": "a"}
        (inner_ev,) = trace.children(outer_ev["id"])
        assert inner_ev["name"] == "inner"
        assert inner_ev["end"] - inner_ev["start"] == pytest.approx(0.25)

    def test_exception_sets_error_attr_on_span_and_trace(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.trace("work") as tr:
                with tr.span("step"):
                    raise RuntimeError("boom")
        trace = tracer.recent()[-1]
        assert trace.attrs["error"] == "RuntimeError"
        assert trace.children(ROOT)[0]["attrs"]["error"] == "RuntimeError"

    def test_trace_ids_are_sequential_and_distinct(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.trace("t"):
                pass
        assert [t.trace_id for t in tracer.recent()] == [
            "t000001",
            "t000002",
            "t000003",
        ]

    def test_span_without_active_trace_is_noop(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("orphan") as span:
            span.set(ignored=True)  # must not raise
        assert tracer.recent() == []
        assert tracer.current() is None

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer(clock=FakeClock())
        tracer.annotate(nobody="home")  # no trace: silently ignored
        with tracer.trace("work") as tr:
            tracer.annotate(on_root=True)
            with tr.span("step"):
                tracer.annotate(on_span=True)
        trace = tracer.recent()[-1]
        assert trace.attrs["on_root"] is True
        assert trace.children(ROOT)[0]["attrs"]["on_span"] is True

    def test_late_events_after_finish_are_dropped_and_counted(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("work") as tr:
            pass
        tr._record(99, ROOT, "late", 0.0, 1.0, {})
        assert tr.dropped_events == 1
        assert tr.events == []

    def test_max_events_bounds_the_event_list(self):
        tracer = Tracer(clock=FakeClock())
        trace = Trace("t?", "work", tracer, start=0.0, max_events=3)
        for i in range(5):
            trace._record(i + 1, ROOT, f"s{i}", 0.0, 1.0, {})
        assert len(trace.events) == 3
        assert trace.dropped_events == 2


# ----------------------------------------------------------------------
# Cross-thread handoff
# ----------------------------------------------------------------------
class TestHandoff:
    def test_record_wait_spans_creation_to_now(self):
        clk = FakeClock()
        tracer = Tracer(clock=clk)
        with tracer.trace("work") as tr:
            handoff = tr.handoff()
            clk.advance(0.125)
            handoff.record_wait()
        (wait,) = tracer.recent()[-1].children(ROOT)
        assert wait["name"] == "queue-wait"
        assert wait["end"] - wait["start"] == pytest.approx(0.125)

    def test_handoff_spans_recorded_from_another_thread(self):
        tracer = Tracer()  # real clock: thread attribution is the point
        done = threading.Event()

        def consumer(handoff):
            with handoff.resume():
                with tracer.span("forward"):
                    pass
            done.set()

        with tracer.trace("work") as tr:
            worker = threading.Thread(
                target=consumer, args=(tr.handoff(),), name="flusher"
            )
            worker.start()
            assert done.wait(5.0)
            worker.join()
        trace = tracer.recent()[-1]
        names = {e["name"]: e for e in trace.events}
        assert set(names) == {"queue-wait", "forward"}
        assert names["queue-wait"]["thread"] == "flusher"
        assert names["forward"]["thread"] == "flusher"
        # resume() parents the consumer's spans at the handoff point
        assert names["forward"]["parent"] == ROOT

    def test_resume_does_not_leak_onto_consumer_thread(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("work") as tr:
            handoff = tr.handoff()
        with handoff.resume(wait_name=None):
            pass
        assert tracer.current() is None


# ----------------------------------------------------------------------
# Ring, reset, JSONL log
# ----------------------------------------------------------------------
class TestTracerRing:
    def test_ring_keeps_only_newest(self):
        tracer = Tracer(ring_size=4, clock=FakeClock())
        for _ in range(10):
            with tracer.trace("t"):
                pass
        ids = [t.trace_id for t in tracer.recent()]
        assert ids == ["t000007", "t000008", "t000009", "t000010"]
        assert [t.trace_id for t in tracer.recent(n=2)] == ["t000009", "t000010"]

    def test_recent_filters_by_name(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("a"):
            pass
        with tracer.trace("b"):
            pass
        assert [t.name for t in tracer.recent(name="b")] == ["b"]

    def test_reset_clears_ring_and_numbering(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("t"):
            pass
        tracer.reset()
        assert tracer.recent() == []
        with tracer.trace("t"):
            pass
        assert tracer.recent()[-1].trace_id == "t000001"

    def test_jsonl_log_round_trip(self, tmp_path):
        log = tmp_path / "traces.jsonl"
        clk = FakeClock()
        tracer = Tracer(clock=clk, log_path=log)
        original = _scripted_trace(tracer, clk)
        tracer.configure(log_path=None)  # close the file
        (loaded,) = read_trace_log(log)
        assert loaded.trace_id == original.trace_id
        assert loaded.name == original.name
        assert loaded.duration == pytest.approx(original.duration)
        assert loaded.events == original.events
        assert format_trace(loaded) == format_trace(original)

    def test_read_trace_log_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace_log(bad)


# ----------------------------------------------------------------------
# Deterministic rendering (trace trees + Prometheus exposition)
# ----------------------------------------------------------------------
class TestDeterministicRendering:
    def test_trace_tree_snapshot_is_deterministic(self):
        def build():
            clk = FakeClock()
            return _scripted_trace(Tracer(clock=clk), clk)

        first, second = format_trace(build()), format_trace(build())
        assert first == second
        lines = first.splitlines()
        assert lines[0].startswith("trace t000001 serve.topk  8.00ms")
        assert "deadline_s=0.01" in lines[0] and "k=5" in lines[0]
        # the batched forward is the longest hop: critical-path marked
        (forward_line,) = [l for l in lines if "forward" in l]
        assert forward_line.startswith("*")
        assert "50.0%" in forward_line  # 4ms of 8ms wall
        assert "40.0% of deadline" in forward_line  # 4ms of the 10ms budget
        (wait_line,) = [l for l in lines if "queue-wait" in l]
        assert not wait_line.startswith("*")
        assert "25.0%" in wait_line

    def test_exposition_snapshot_is_deterministic_and_prometheus_shaped(self):
        snapshot = {
            "serve.cache.hits": {"type": "counter", "value": 3.0},
            "serve.queue.depth": {"type": "gauge", "value": 2.0},
            "unset.gauge": {"type": "gauge", "value": None},
            "serve.query.seconds": {
                "type": "histogram",
                "count": 4,
                "total": 0.5,
                "p50": 0.125,
                "p90": 0.2,
                "p99": 0.21,
            },
        }
        spans = {"epoch/batch": {"seconds": 1.5, "count": 3}}
        text = render_exposition(snapshot, span_totals=spans)
        assert text == render_exposition(snapshot, span_totals=spans)
        assert "# TYPE repro_serve_cache_hits_total counter" in text
        assert "repro_serve_cache_hits_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert "unset_gauge" not in text  # never-set gauges are elided
        assert 'repro_serve_query_seconds{quantile="0.5"} 0.125' in text
        assert "repro_serve_query_seconds_sum 0.5" in text
        assert "repro_serve_query_seconds_count 4" in text
        assert 'repro_span_seconds_total{path="epoch/batch"} 1.5' in text
        assert 'repro_span_count_total{path="epoch/batch"} 3' in text
        assert text.endswith("\n")

    def test_exposition_accepts_live_registry(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        assert "repro_hits_total 2" in render_exposition(reg)


# ----------------------------------------------------------------------
# Concurrency: distinct traces under parallel workers
# ----------------------------------------------------------------------
class TestConcurrentTracing:
    def test_parallel_workers_keep_distinct_traces(self):
        tracer = Tracer(ring_size=256)
        per_worker = 12
        errors = []

        def worker(tag):
            try:
                for i in range(per_worker):
                    with tracer.trace("job", worker=tag) as tr:
                        with tr.span("step", seq=i):
                            pass
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"w{w}")
            for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        traces = tracer.recent()
        assert len(traces) == 4 * per_worker
        assert len({t.trace_id for t in traces}) == 4 * per_worker
        for trace in traces:
            # each trace carries exactly its own worker's single step span
            (step,) = trace.children(ROOT)
            assert step["name"] == "step"
            assert step["thread"] == f"w{trace.attrs['worker']}"


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
class TestSLOs:
    def _traces(self, durations, degraded_flags=None):
        clk = FakeClock()
        tracer = Tracer(ring_size=len(durations) + 1, clock=clk)
        degraded_flags = degraded_flags or [False] * len(durations)
        for seconds, degraded in zip(durations, degraded_flags):
            with tracer.trace("serve.topk", degraded=degraded):
                clk.advance(seconds)
        return tracer

    def test_latency_slo_breach_and_pass(self):
        tracer = self._traces([0.01] * 9 + [0.5])
        slo = SLO(name="p99", kind="latency", threshold=0.1, percentile=99.0)
        (status,) = evaluate_slos([slo], tracer.recent())
        assert not status.ok
        assert status.samples == 10
        assert status.value > 0.1
        loose = SLO(name="p50", kind="latency", threshold=0.1, percentile=50.0)
        (status,) = evaluate_slos([loose], tracer.recent())
        assert status.ok

    def test_degraded_rate_slo(self):
        tracer = self._traces([0.01] * 4, degraded_flags=[True, False, False, False])
        slo = SLO(name="deg", kind="degraded_rate", threshold=0.2)
        (status,) = evaluate_slos([slo], tracer.recent())
        assert status.value == pytest.approx(0.25)
        assert not status.ok

    def test_drop_rate_uses_totals_not_traces(self):
        slo = SLO(name="drops", kind="drop_rate", threshold=0.0)
        (status,) = evaluate_slos([slo], [], totals={"requests": 10, "dropped": 1})
        assert status.value == pytest.approx(0.1)
        assert not status.ok
        (status,) = evaluate_slos([slo], [], totals={"requests": 10, "dropped": 0})
        assert status.ok

    def test_no_data_is_ok_with_none_value(self):
        slo = SLO(name="p99", kind="latency", threshold=0.1)
        (status,) = evaluate_slos([slo], [])
        assert status.ok and status.value is None and status.samples == 0

    def test_check_slos_strict_raises_with_detail(self):
        tracer = self._traces([0.5])
        slo = SLO(name="p99-latency", kind="latency", threshold=0.1)
        with pytest.raises(SLOViolation, match="p99-latency"):
            check_slos([slo], tracer=tracer, strict=True)
        statuses = check_slos([slo], tracer=tracer, strict=False)
        assert [s.ok for s in statuses] == [False]

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="nope", threshold=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="latency", threshold=-1.0)


# ----------------------------------------------------------------------
# Histogram reservoir (bounded memory)
# ----------------------------------------------------------------------
class TestHistogramReservoir:
    def test_memory_bounded_but_count_total_exact(self):
        h = Histogram("lat", reservoir_size=16)
        values = list(range(1, 101))
        for v in values:
            h.observe(v)
        assert h.count == 100
        assert h.total == pytest.approx(sum(values))
        assert h.reservoir_len == 16
        summary = h.to_dict()
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(sum(values) / 100)
        assert 1.0 <= summary["p50"] <= 100.0

    def test_exact_below_the_cap(self):
        h = Histogram("lat", reservoir_size=64)
        for v in range(10):
            h.observe(v)
        assert h.reservoir_len == 10
        assert h.percentile(50) == pytest.approx(4.5)

    def test_replacement_is_deterministic_per_name(self):
        def fill(name):
            h = Histogram(name, reservoir_size=8)
            for v in range(500):
                h.observe(v)
            return h.to_dict()

        assert fill("same") == fill("same")

    def test_reservoir_is_unbiased_enough_for_quantiles(self):
        h = Histogram("wide", reservoir_size=512)
        rng = np.random.default_rng(7)
        for v in rng.uniform(0, 1, size=20_000):
            h.observe(v)
        assert h.to_dict()["p50"] == pytest.approx(0.5, abs=0.1)

    def test_reset_and_validation(self):
        h = Histogram("x", reservoir_size=4)
        h.observe(1.0)
        h.reset()
        assert h.count == 0 and h.reservoir_len == 0
        with pytest.raises(ValueError):
            Histogram("bad", reservoir_size=0)


# ----------------------------------------------------------------------
# Bench-regression gate
# ----------------------------------------------------------------------
def _bench_payload(seconds=1.0, outcome="passed", **quality):
    return {
        "scale": "BENCH",
        "benches": {
            "benchmarks/test_x.py::test_bench": {
                "outcome": outcome,
                "seconds": seconds,
                "quality": quality,
            }
        },
    }


class TestBenchGate:
    def test_identity_comparison_passes(self):
        payload = _bench_payload(served_qps=100.0, latency_p99=0.01, dropped=0.0)
        assert compare_bench(payload, payload).ok

    def test_latency_regression_beyond_tolerance_fails(self):
        base = _bench_payload(latency_p99=0.2)
        cur = _bench_payload(latency_p99=0.2 * 3)  # 3x: outside the 75% band
        diff = compare_bench(cur, base)
        assert not diff.ok
        (failure,) = diff.failures
        assert failure.metric == "latency_p99" and failure.status == "regressed"
        assert "FAIL" in diff.format_text()

    def test_latency_within_tolerance_passes(self):
        base = _bench_payload(latency_p99=0.2)
        assert compare_bench(_bench_payload(latency_p99=0.3), base).ok

    def test_zero_drop_promise_is_absolute(self):
        diff = compare_bench(_bench_payload(dropped=1.0), _bench_payload(dropped=0.0))
        assert not diff.ok

    def test_throughput_may_improve_but_not_collapse(self):
        base = _bench_payload(served_qps=100.0)
        assert compare_bench(_bench_payload(served_qps=500.0), base).ok
        assert not compare_bench(_bench_payload(served_qps=40.0), base).ok

    def test_config_echo_mismatch_fails(self):
        diff = compare_bench(_bench_payload(workers=8.0), _bench_payload(workers=4.0))
        (failure,) = diff.failures
        assert failure.status == "mismatch"

    def test_missing_bench_and_metric_fail_while_new_ones_pass(self):
        base = _bench_payload(served_qps=100.0)
        assert not compare_bench({"benches": {}}, base).ok
        missing_metric = compare_bench(_bench_payload(other=1.0), base)
        assert any(
            d.metric == "served_qps" and d.status == "missing"
            for d in missing_metric.deltas
        )
        new_only = compare_bench(_bench_payload(served_qps=100.0, extra=5.0), base)
        assert new_only.ok
        assert any(d.status == "new" for d in new_only.deltas)

    def test_failed_outcome_fails_the_gate(self):
        diff = compare_bench(_bench_payload(outcome="failed"), _bench_payload())
        assert not diff.ok

    def test_overrides_widen_one_metric(self):
        base = _bench_payload(latency_p99=0.2)
        cur = _bench_payload(latency_p99=0.6)
        assert not compare_bench(cur, base).ok
        assert compare_bench(cur, base, overrides={"latency_p99": 5.0}).ok

    def test_tolerance_rules_directions(self):
        assert tolerance_for("n_db").direction == "exact"
        assert tolerance_for("dropped").direction == "lower"
        assert tolerance_for("dropped").band(0.0) == 0.0
        assert tolerance_for("latency_p99").direction == "lower"
        assert tolerance_for("served_qps").direction == "higher"
        assert tolerance_for("hr10").direction == "higher"
        assert tolerance_for("final_loss").direction == "lower"
        assert tolerance_for("mystery_metric").direction == "both"

    def test_compare_bench_files_and_perturbed_baseline_fails(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        payload = _bench_payload(served_qps=100.0, latency_p99=0.01, dropped=0.0)
        current.write_text(json.dumps(payload))
        baseline.write_text(json.dumps(payload))
        assert compare_bench_files(current, baseline).ok

        # Perturb one baseline metric beyond its tolerance: the gate
        # must demonstrably fail (this is the bench-check contract).
        perturbed = _bench_payload(served_qps=1000.0, latency_p99=0.01, dropped=0.0)
        baseline.write_text(json.dumps(perturbed))
        diff = compare_bench_files(current, baseline)
        assert not diff.ok
        (failure,) = diff.failures
        assert failure.metric == "served_qps" and failure.status == "regressed"

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "not_bench.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            compare_bench_files(path, path)


# ----------------------------------------------------------------------
# Lint rule R008
# ----------------------------------------------------------------------
class TestTracingLintRule:
    def _lint(self, tmp_path, source):
        (tmp_path / "mod.py").write_text(textwrap.dedent(source))
        return run_analysis([tmp_path], root=tmp_path, rules=["R008"])

    def test_flags_discarded_span_calls_and_bare_enter(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def f(tracer, tr):
                tracer.span("a")
                tr.trace_span("b")
                tr.handoff()
                tracer.span("c").__enter__()
            """,
        )
        assert [(v.rule, v.line) for v in report.violations] == [
            ("R008", 2),
            ("R008", 3),
            ("R008", 4),
            ("R008", 5),
        ]

    def test_with_blocks_and_stored_tokens_are_fine(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def f(tracer, tr):
                with tracer.span("a"):
                    pass
                token = tr.handoff()
                return token
            """,
        )
        assert report.ok

    def test_allow_comment_suppresses(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def f(tracer):
                tracer.span("a")  # lint: allow(R008)
            """,
        )
        assert report.ok
        assert report.suppressed_count == 1


# ----------------------------------------------------------------------
# Integration: traced serving and training
# ----------------------------------------------------------------------
class TestServeTraceIntegration:
    @pytest.fixture(scope="class")
    def bench_run(self):
        from repro.serve import run_serve_bench

        tracer = get_tracer()
        tracer.reset()
        result = run_serve_bench(
            n_db=12, n_queries=48, workers=4, naive_queries=2, seed=0
        )
        return result, tracer.recent(name="serve.topk")

    def test_every_request_leaves_one_distinct_trace(self, bench_run):
        result, traces = bench_run
        assert result.dropped == 0
        assert len(traces) == 48
        assert len({t.trace_id for t in traces}) == 48

    def test_child_spans_account_for_the_wall_time(self, bench_run):
        # Acceptance: a traced topk under the 4-worker bench yields a
        # trace whose child spans (cache, queue-wait, forward, index)
        # sum to within 10% of the request wall time.
        _, traces = bench_run
        coverage = []
        for trace in traces:
            child_seconds = sum(
                e["end"] - e["start"] for e in trace.children(ROOT)
            )
            coverage.append(child_seconds / trace.duration)
        best = max(coverage)
        assert 0.9 <= best <= 1.05
        # ...and attribution is not a one-off: most requests are covered.
        assert sorted(coverage)[len(coverage) // 2] > 0.5

    def test_handoff_attributes_queue_wait_before_forward(self, bench_run):
        _, traces = bench_run
        for trace in traces:
            events = {e["name"]: e for e in trace.children(ROOT)}
            assert {"cache", "queue-wait", "forward", "index"} <= set(events)
            wait, forward = events["queue-wait"], events["forward"]
            # the queue-wait interval ends exactly where the batched
            # forward begins: that boundary is the handoff resume point
            assert wait["end"] == forward["start"]
            assert wait["start"] >= trace.start
            assert forward["attrs"]["batch_size"] >= 1
            assert trace.attrs["degraded"] is False

    def test_slos_hold_and_are_reported(self, bench_run):
        result, _ = bench_run
        assert result.slo_statuses  # evaluated, not skipped
        assert result.slo_ok
        assert result.to_dict()["slo_failures"] == 0.0

    def test_format_trace_renders_critical_path(self, bench_run):
        _, traces = bench_run
        slowest = max(traces, key=lambda t: t.duration)
        text = format_trace(slowest)
        assert text.startswith(f"trace {slowest.trace_id} serve.topk")
        assert any(line.startswith("*") for line in text.splitlines())

    def test_degraded_requests_carry_the_reason(self):
        from repro.serve import SimilarityServer

        class Boom:
            output_dim = 4

            def encode(self, batch):
                raise RuntimeError("encoder down")

        tracer = get_tracer()
        tracer.reset()
        server = SimilarityServer(Boom(), dim=4, seed=0)
        try:
            rng = np.random.default_rng(0)
            server.topk(rng.normal(size=(6, 2)), k=1)
        finally:
            server.close()
        (trace,) = tracer.recent(name="serve.topk")
        assert trace.attrs["degraded"] is True
        assert trace.attrs["degraded_reason"].startswith("batch-failed")

    def test_trainer_emits_one_trace_per_epoch(self):
        from repro.core import TMN, TMNConfig, Trainer

        tracer = get_tracer()
        tracer.reset()
        rng = np.random.default_rng(11)
        trajs = [rng.normal(size=(10, 2)) for _ in range(8)]
        cfg = TMNConfig(
            hidden_dim=8, epochs=2, sampling_number=4, batch_anchors=8, seed=0
        )
        Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs)
        traces = tracer.recent(name="train.epoch")
        assert len(traces) == 2
        assert [t.attrs["epoch"] for t in traces] == [1, 2]
        for trace in traces:
            batches = [e for e in trace.children(ROOT) if e["name"] == "batch"]
            assert batches
            assert "loss" in trace.attrs
            grandchildren = {
                e["name"] for e in trace.events if e["parent"] == batches[0]["id"]
            }
            assert {"forward", "loss", "backward", "optimizer"} <= grandchildren


# ----------------------------------------------------------------------
# CLI surface: metrics / trace / bench-diff
# ----------------------------------------------------------------------
class TestObservabilityCLI:
    def test_metrics_renders_exposition(self, capsys):
        from repro.obs import get_registry

        get_registry().counter("serve.query.requests").inc(0)
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_query_requests_total counter" in out

    def test_trace_reads_a_jsonl_log(self, tmp_path, capsys):
        log = tmp_path / "traces.jsonl"
        clk = FakeClock()
        tracer = Tracer(clock=clk, log_path=log)
        _scripted_trace(tracer, clk)
        tracer.configure(log_path=None)
        assert main(["trace", str(log), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s); slowest 1:" in out
        assert "trace t000001 serve.topk" in out

    def test_trace_missing_log_is_an_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_diff_cli_pass_fail_and_json(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_bench_payload(served_qps=100.0)))
        baseline.write_text(json.dumps(_bench_payload(served_qps=100.0)))
        assert main(["bench-diff", str(current), str(baseline)]) == 0
        assert "bench gate ok" in capsys.readouterr().out

        baseline.write_text(json.dumps(_bench_payload(served_qps=1000.0)))
        assert main(["bench-diff", str(current), str(baseline)]) == 1
        assert "bench gate FAILED" in capsys.readouterr().out

        assert (
            main(["bench-diff", str(current), str(baseline), "--json"]) == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False and payload["failures"] == 1

        assert (
            main(
                [
                    "bench-diff",
                    str(current),
                    str(baseline),
                    "--tolerance",
                    "served_qps=20.0",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_bench_diff_bad_tolerance_spec(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(_bench_payload()))
        assert (
            main(["bench-diff", str(path), str(path), "--tolerance", "oops"]) == 2
        )
        assert "bad --tolerance" in capsys.readouterr().err

    def test_serve_bench_trace_log_flag(self, tmp_path, capsys):
        log = tmp_path / "serve_traces.jsonl"
        code = main(
            [
                "serve-bench",
                "--n-db",
                "10",
                "--queries",
                "24",
                "--workers",
                "2",
                "--trace-log",
                str(log),
            ]
        )
        assert code == 0
        assert "slo ok" in capsys.readouterr().out
        traces = read_trace_log(log)
        assert len(traces) == 24
        assert all(t.name == "serve.topk" for t in traces)
