"""Tests for cross-process trace stitching and fleet telemetry (DESIGN.md §17).

The tentpole contract: a ``TraceContext`` ships with every shard
request, workers record a detached span subtree against it, and the
coordinator stitches the exported subtrees back under its own
``serve.topk`` spans — so one trace attributes dispatch, per-shard IPC
wait, worker compute and the straggler gap across process boundaries.

In-process tests pin down the wire format, graft semantics (id
remapping, clock-offset shifting, truncation, non-finite-attr
sanitisation, never-raises on malformed payloads), the scrape-hook and
shard-label exposition machinery, the fleet SLO kinds and lint rule
R010.  The ``@pytest.mark.shard`` tests drive real spawned worker
processes and assert the acceptance-level properties: a stitched
4-shard trace whose worker-side spans cover >=90% of each shard's wall
time, a SIGKILL mid-flight still yielding a complete stitched trace
with the dead shard marked, and trace-ring boundedness under the
sharded bench.
"""

import json
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.analysis import run_analysis
from repro.obs import get_registry, render_exposition
from repro.obs.expo import (
    register_scrape_hook,
    run_scrape_hooks,
    unregister_scrape_hook,
)
from repro.obs.metrics import MetricsRegistry, mirror_snapshot
from repro.obs.slo import DEFAULT_SHARD_SLOS, SLO, evaluate_slos
from repro.obs.trace import (
    ROOT,
    Trace,
    TraceContext,
    Tracer,
    begin_remote,
    capture_context,
    export_subtree,
    format_trace,
    get_tracer,
    graft_subtree,
)
from repro.serve import FeatureEncoder, ShardedSimilarityServer

DIM = 8


class FakeClock:
    """Deterministic injectable clock for byte-identical trace output."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _trajs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(int(rng.integers(6, 14)), 2)).cumsum(axis=0)
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# TraceContext wire format
# ----------------------------------------------------------------------
class TestTraceContextWire:
    def test_to_wire_round_trips_exactly(self):
        ctx = TraceContext("t000007", parent_span_id=3, clock_offset=0.25)
        wire = ctx.to_wire()
        assert json.loads(json.dumps(wire)) == wire  # plain JSON dict
        assert TraceContext.from_wire(wire) == ctx

    def test_from_wire_defaults_missing_fields(self):
        ctx = TraceContext.from_wire({})
        assert ctx.trace_id == "t?"
        assert ctx.parent_span_id == ROOT
        assert ctx.clock_offset == 0.0

    def test_capture_context_requires_an_active_trace(self):
        tracer = Tracer(clock=FakeClock())
        assert capture_context(tracer) is None
        with tracer.trace("serve.topk") as tr:
            with tr.span("dispatch") as dispatch:
                ctx = capture_context(tracer, clock_offset=0.5)
                assert ctx is not None
                assert ctx.trace_id == tr.trace_id
                assert ctx.parent_span_id == dispatch.span_id
                assert ctx.clock_offset == 0.5
        assert capture_context(tracer) is None

    def test_capture_context_is_none_while_tracing_disabled(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.set_enabled(False) is True
        try:
            with tracer.trace("serve.topk"):
                assert capture_context(tracer) is None
        finally:
            assert tracer.set_enabled(True) is False


# ----------------------------------------------------------------------
# begin_remote / export_subtree / graft_subtree
# ----------------------------------------------------------------------
def _worker_subtree(clk, ctx, tracer):
    """A scripted worker-side subtree: ipc-wait, slab-read, search.

    All timestamps are on the *worker's* clock axis; the coordinator's
    graft shifts them by ``clock_offset``.
    """
    rtrace = begin_remote(ctx, name="shard.search", tracer=tracer)
    rtrace.record_span("ipc-wait", clk.now - 0.001, clk.now, parent_id=ROOT)
    with rtrace.handoff().resume(wait_name=None):
        with rtrace.span("slab-read"):
            clk.advance(0.001)
        with rtrace.span("search") as search:
            clk.advance(0.004)
            search.set(n=12)
    return export_subtree(rtrace)


class TestGraftSubtree:
    def test_begin_remote_without_context_is_inert(self):
        rtrace = begin_remote(None, name="shard.search")
        with rtrace.handoff().resume(wait_name=None):
            with rtrace.span("search"):
                pass
        rtrace.record_span("ipc-wait", 0.0, 1.0, parent_id=ROOT)

    def test_deterministic_stitch_with_fake_clocks(self):
        coord_clk = FakeClock()
        coordinator = Tracer(clock=coord_clk)
        # Worker clock deliberately 10s behind (the worker "receives" at
        # coordinator t=0.002): the graft must shift its timestamps back
        # onto the coordinator clock via clock_offset.
        worker_clk = FakeClock(start=-9.998)
        worker = Tracer(clock=worker_clk)
        with coordinator.trace("serve.topk", k=5) as tr:
            with tr.span("dispatch"):
                coord_clk.advance(0.001)
            ctx = tr.context(clock_offset=10.0)
            payload = _worker_subtree(worker_clk, ctx, worker)
            coord_clk.advance(0.007)
            shard_span = tr.record_span("shard-0", 0.001, 0.008, result="ok")
            kept = graft_subtree(
                tr, shard_span, payload, clock_offset=10.0, shard=0
            )
        trace = coordinator.recent()[-1]
        assert kept == 3
        assert trace.dropped_events == 0
        grafted = [e for e in trace.events if e.get("shard") == 0]
        assert [e["name"] for e in grafted] == ["ipc-wait", "slab-read", "search"]
        # Remapped ids are ascending and unique, so children stay above
        # their parents in id order.
        ids = [e["id"] for e in grafted]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        # Remote ROOT-parented events all re-anchor to the shard span
        # (the worker's handoff anchored its spans at the remote ROOT).
        by_name = {e["name"]: e for e in grafted}
        assert all(e["parent"] == shard_span for e in grafted)
        # clock_offset landed every remote timestamp on the origin axis.
        assert by_name["ipc-wait"]["start"] == pytest.approx(0.001)
        assert by_name["ipc-wait"]["end"] == pytest.approx(0.002)
        assert by_name["slab-read"]["start"] == pytest.approx(0.002)
        assert by_name["slab-read"]["end"] == pytest.approx(0.003)
        assert by_name["search"]["end"] == pytest.approx(0.007)
        assert by_name["search"]["attrs"] == {"n": 12}
        rendered = format_trace(trace)
        assert "s0:search" in rendered and "s0:ipc-wait" in rendered

    def test_mismatched_trace_id_grafts_nothing(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("serve.topk") as tr:
            payload = {
                "trace_id": "t999999",
                "events": [
                    {"id": 1, "parent": ROOT, "name": "x", "start": 0, "end": 1}
                ],
                "dropped": 0,
            }
            assert graft_subtree(tr, ROOT, payload) == 0
        trace = tracer.recent()[-1]
        assert trace.events == []
        assert trace.dropped_events == 1

    def test_oversized_subtree_truncates_keeping_outermost_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("serve.topk") as tr:
            events = [
                {"id": i, "parent": ROOT, "name": f"e{i}", "start": 0.0, "end": 1.0}
                for i in range(1, 11)
            ]
            payload = {"trace_id": tr.trace_id, "events": events, "dropped": 2}
            kept = graft_subtree(tr, ROOT, payload, max_spans=4)
        trace = tracer.recent()[-1]
        assert kept == 4
        # Lowest worker ids (the outermost spans) survive the cut.
        assert [e["name"] for e in trace.events] == ["e1", "e2", "e3", "e4"]
        # 6 truncated + 2 worker-side drops carried through.
        assert trace.dropped_events == 8

    def test_non_finite_attrs_are_sanitised_to_repr_strings(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("serve.topk") as tr:
            payload = {
                "trace_id": tr.trace_id,
                "events": [
                    {
                        "id": 1,
                        "parent": ROOT,
                        "name": "search",
                        "start": 0.0,
                        "end": 1.0,
                        "attrs": {"mean": float("nan"), "rate": float("inf"), "n": 3},
                    }
                ],
                "dropped": 0,
            }
            assert graft_subtree(tr, ROOT, payload) == 1
        trace = tracer.recent()[-1]
        attrs = trace.events[0]["attrs"]
        assert attrs == {"mean": "nan", "rate": "inf", "n": 3}
        # Strict JSON (the trace-log format) accepts the whole trace.
        json.dumps(trace.to_dict(), allow_nan=False)

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "garbage",
            {"events": "not-a-list"},
            {"trace_id": None, "events": [], "dropped": "many"},
        ],
    )
    def test_malformed_payloads_never_raise(self, payload):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("serve.topk") as tr:
            assert graft_subtree(tr, ROOT, payload) == 0

    def test_malformed_events_are_dropped_and_counted(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.trace("serve.topk") as tr:
            payload = {
                "trace_id": tr.trace_id,
                "events": [
                    {"no": "id"},
                    {"id": "NaN-ish", "start": []},
                    {"id": 3, "parent": ROOT, "name": "ok", "start": 0.0, "end": 1.0},
                ],
                "dropped": 0,
            }
            assert graft_subtree(tr, ROOT, payload) == 1
        trace = tracer.recent()[-1]
        assert [e["name"] for e in trace.events] == ["ok"]
        assert trace.dropped_events == 2


class TestTracerToggle:
    def test_set_enabled_gates_trace_creation(self):
        tracer = Tracer(clock=FakeClock())
        previous = tracer.set_enabled(False)
        assert previous is True and tracer.enabled is False
        with tracer.trace("serve.topk") as tr:
            with tr.span("cache"):
                pass
            tr.record_span("shard-0", 0.0, 1.0)
        assert tracer.recent() == []  # nothing landed in the ring
        assert tracer.set_enabled(True) is False
        with tracer.trace("serve.topk"):
            pass
        assert len(tracer.recent()) == 1


# ----------------------------------------------------------------------
# Exposition: scrape hooks and the shard label dimension
# ----------------------------------------------------------------------
class TestScrapeHooks:
    def test_hooks_run_once_per_scrape_and_unregister(self):
        calls = []
        hook = lambda: calls.append(1)  # noqa: E731
        register_scrape_hook(hook)
        try:
            register_scrape_hook(hook)  # duplicate registration is a no-op
            assert run_scrape_hooks() >= 1
            assert calls == [1]
        finally:
            unregister_scrape_hook(hook)
        unregister_scrape_hook(hook)  # already gone: no error
        calls.clear()
        run_scrape_hooks()
        assert calls == []

    def test_failing_hook_is_swallowed_and_others_still_run(self):
        seen = []

        def bad():
            raise RuntimeError("scrape-time failure")

        def good():
            seen.append(1)

        register_scrape_hook(bad)
        register_scrape_hook(good)
        try:
            run_scrape_hooks()
            assert seen == [1]
        finally:
            unregister_scrape_hook(bad)
            unregister_scrape_hook(good)

    def test_live_registry_render_scrapes_but_snapshot_render_does_not(self):
        calls = []
        hook = lambda: calls.append(1)  # noqa: E731
        register_scrape_hook(hook)
        try:
            registry = MetricsRegistry()
            registry.counter("serve.requests").inc()
            render_exposition(registry)
            assert calls == [1]
            render_exposition(registry.snapshot())
            assert calls == [1]  # dict snapshots are pure
        finally:
            unregister_scrape_hook(hook)


class TestShardLabelDimension:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        for shard in (1, 0):
            registry.gauge(f"serve.shard.{shard}.index.size").set(12 + shard)
            registry.gauge(f"serve.shard.{shard}.lat.p99").set(0.5 + shard)
        return registry

    def test_shard_series_merge_into_one_labelled_family(self):
        text = render_exposition(self._registry())
        lines = text.splitlines()
        assert 'repro_serve_shard_index_size{shard="0"} 12' in lines
        assert 'repro_serve_shard_index_size{shard="1"} 13' in lines
        assert 'repro_serve_shard_lat_p99{shard="0"} 0.5' in lines
        # One TYPE header per family, series sorted by shard id.
        assert (
            sum(1 for l in lines if l == "# TYPE repro_serve_shard_index_size gauge")
            == 1
        )
        i0 = lines.index('repro_serve_shard_index_size{shard="0"} 12')
        i1 = lines.index('repro_serve_shard_index_size{shard="1"} 13')
        assert i0 < i1

    def test_non_shard_series_render_unchanged(self):
        text = render_exposition(self._registry())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        # No bare (unlabelled) metric remains for the shard series.
        assert "repro_serve_shard_0_index_size" not in text


class TestMirrorQuantiles:
    def test_histogram_quantiles_mirror_as_gauges(self):
        registry = MetricsRegistry()
        snapshot = {
            "lat": {
                "type": "histogram",
                "count": 4,
                "mean": 0.25,
                "p50": 0.2,
                "p99": 0.9,
            }
        }
        written = mirror_snapshot(snapshot, "serve.shard.2.", registry=registry)
        assert written == 4
        assert registry.gauge("serve.shard.2.lat.p50").value == 0.2
        assert registry.gauge("serve.shard.2.lat.p99").value == 0.9


# ----------------------------------------------------------------------
# Fleet SLOs: shard imbalance and straggler rate
# ----------------------------------------------------------------------
def _shard_trace(tracer, clk, waits):
    """One serve.topk trace with scripted per-shard gather durations."""
    with tracer.trace("serve.topk") as tr:
        for shard, wait in enumerate(waits):
            tr.record_span(f"shard-{shard}", 0.0, wait, result="ok")
        clk.advance(max(waits) if waits else 0.001)
    return tracer.recent()[-1]


class TestShardSLOs:
    def test_shard_imbalance_is_percentile_of_max_over_mean(self):
        clk = FakeClock()
        tracer = Tracer(clock=clk)
        # Ratios: 1.0 (balanced) and 1.6 (one shard 4x the other).
        _shard_trace(tracer, clk, [0.010, 0.010])
        _shard_trace(tracer, clk, [0.010, 0.040])
        slo = SLO(
            name="imb", kind="shard_imbalance", threshold=1.5, percentile=100.0
        )
        status = evaluate_slos([slo], traces=tracer.recent())[0]
        assert status.value == pytest.approx(1.6)
        assert status.samples == 2
        assert not status.ok

    def test_single_shard_traces_are_skipped(self):
        clk = FakeClock()
        tracer = Tracer(clock=clk)
        _shard_trace(tracer, clk, [0.010])
        slo = SLO(name="imb", kind="shard_imbalance", threshold=1.5)
        status = evaluate_slos([slo], traces=tracer.recent())[0]
        assert status.value is None and status.ok

    def test_straggler_rate_counts_gaps_beyond_gap_s(self):
        clk = FakeClock()
        tracer = Tracer(clock=clk)
        _shard_trace(tracer, clk, [0.010, 0.011, 0.012])  # gap 1ms
        _shard_trace(tracer, clk, [0.010, 0.010, 0.300])  # gap 290ms
        slo = SLO(
            name="straggler", kind="straggler_rate", threshold=0.4, gap_s=0.1
        )
        status = evaluate_slos([slo], traces=tracer.recent())[0]
        assert status.value == pytest.approx(0.5)
        assert not status.ok

    def test_negative_gap_rejected_and_defaults_exist(self):
        with pytest.raises(ValueError):
            SLO(name="bad", kind="straggler_rate", threshold=0.5, gap_s=-1.0)
        kinds = {slo.kind for slo in DEFAULT_SHARD_SLOS}
        assert kinds == {"shard_imbalance", "straggler_rate"}


class TestTracingOverheadGate:
    def test_overhead_rule_is_one_sided_with_five_point_band(self):
        from repro.obs.benchgate import tolerance_for

        tol = tolerance_for("tracing_overhead_pct")
        assert tol.direction == "lower"
        assert tol.rel == 0.0
        assert tol.abs == 5.0

    def test_drift_beyond_five_points_fails_the_gate(self):
        from repro.obs import compare_bench

        def payload(pct):
            return {
                "benches": {
                    "benchmarks/test_x.py::test_bench": {
                        "outcome": "passed",
                        "seconds": 1.0,
                        "quality": {"tracing_overhead_pct": pct},
                    }
                }
            }

        baseline = payload(2.0)
        assert compare_bench(payload(6.9), baseline).ok
        assert not compare_bench(payload(7.1), baseline).ok


# ----------------------------------------------------------------------
# Lint rule R010
# ----------------------------------------------------------------------
class TestTraceContextLintRule:
    def _lint(self, tmp_path, source):
        (tmp_path / "mod.py").write_text(textwrap.dedent(source))
        return run_analysis([tmp_path], root=tmp_path, rules=["R010"])

    def test_flags_dispatch_dicts_without_trace_ctx(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def dispatch(handle, wire):
                handle.request({"cmd": "search", "k": 5})
                handle.send_payload({"cmd": "encode"}, b"")
                handle.request({"cmd": "search", "k": 5, "trace_ctx": wire})
                handle.request({"cmd": "stats"})
            """,
        )
        assert [(v.rule, v.line) for v in report.violations] == [
            ("R010", 2),
            ("R010", 3),
        ]

    def test_trace_ctx_none_satisfies_the_contract(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def dispatch(handle):
                handle.request({"cmd": "search", "trace_ctx": None})
                handle.request({"cmd": "encode", "trace_ctx": None})
            """,
        )
        assert report.ok

    def test_flags_discarded_context_tokens(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def f(tracer, tr):
                capture_context(tracer)
                tr.context(clock_offset=0.5)
                ctx = capture_context(tracer)
                return ctx.to_wire()
            """,
        )
        assert [(v.rule, v.line) for v in report.violations] == [
            ("R010", 2),
            ("R010", 3),
        ]

    def test_allow_comment_suppresses(self, tmp_path):
        report = self._lint(
            tmp_path,
            """\
            def dispatch(handle):
                handle.request({"cmd": "search"})  # lint: allow(R010)
            """,
        )
        assert report.ok
        assert report.suppressed_count == 1

    def test_shard_dispatch_sites_in_repo_are_clean(self):
        import pathlib

        import repro.serve.shard as shard_mod

        src_root = pathlib.Path(shard_mod.__file__).parents[2]
        report = run_analysis([src_root / "repro"], root=src_root, rules=["R010"])
        assert report.ok


# ----------------------------------------------------------------------
# End to end through real worker processes
# ----------------------------------------------------------------------
def _server(trajs, n_shards, **kw):
    enc = FeatureEncoder(dim=DIM, seed=0)
    kw.setdefault("brute_threshold", 10**9)
    kw.setdefault("shard_deadline_s", 30.0)
    srv = ShardedSimilarityServer(enc, dim=DIM, n_shards=n_shards, **kw)
    srv.add_batch(trajs)
    return srv


def _descendants(trace, root_id):
    """All events below ``root_id`` in the trace's parent tree."""
    children = {}
    for event in trace.events:
        children.setdefault(event["parent"], []).append(event)
    out, queue = [], [root_id]
    while queue:
        node = queue.pop()
        for event in children.get(node, ()):
            out.append(event)
            queue.append(event["id"])
    return out


@pytest.mark.shard
def test_stitched_four_shard_trace_covers_worker_wall_time():
    """Acceptance: one serve.topk trace, 4 shard subtrees, >=90% coverage."""
    trajs = _trajs(40, seed=21)
    srv = _server(trajs, n_shards=4)
    try:
        q = _trajs(1, seed=77)[0]
        srv.topk(q, k=3)  # prime the embedding cache
        for shard in range(4):
            # Worker-side compute dominates the shard wall time, so the
            # coverage assertion measures stitching, not scheduler noise.
            srv.debug_shard(shard, search_delay_s=0.05)
        result = srv.topk(q, k=5)
        assert not result.degraded
        trace = get_tracer().recent(name="serve.topk")[-1]
        assert trace.attrs.get("shards") == 4
        assert "straggler_gap_s" in trace.attrs
        assert "slowest_shard" in trace.attrs
        shard_spans = {
            e["name"]: e
            for e in trace.events
            if e["name"].startswith("shard-") and "shard" not in e
        }
        assert sorted(shard_spans) == ["shard-0", "shard-1", "shard-2", "shard-3"]
        for shard in range(4):
            span = shard_spans[f"shard-{shard}"]
            assert span["attrs"]["result"] == "ok"
            subtree = _descendants(trace, span["id"])
            assert {e.get("shard") for e in subtree} == {shard}
            names = {e["name"] for e in subtree}
            assert {"ipc-wait", "slab-read", "search"} <= names
            covered = max(e["end"] for e in subtree) - min(
                e["start"] for e in subtree
            )
            wall = span["end"] - span["start"]
            assert covered >= 0.9 * wall, (shard, covered, wall)
    finally:
        srv.close()


@pytest.mark.shard
def test_sigkill_mid_flight_yields_stitched_trace_with_dead_shard():
    """Acceptance: the trace survives a worker SIGKILL and marks the shard."""
    trajs = _trajs(24, seed=22)
    srv = _server(trajs, n_shards=2, shard_deadline_s=2.0)
    try:
        q = _trajs(1, seed=55)[0]
        srv.topk(q, k=2)  # prime the cache: the search hop is in flight
        srv.debug_shard(0, search_delay_s=10.0)
        killer = threading.Timer(0.3, srv._handles[0].process.kill)
        killer.start()
        try:
            result = srv.topk(q, k=4)
        finally:
            killer.cancel()
        assert result.degraded
        trace = get_tracer().recent(name="serve.topk")[-1]
        assert trace.end is not None  # stitched and finished
        dead = [
            e
            for e in trace.events
            if e["name"] == "shard-0" and "shard" not in e
        ]
        assert len(dead) == 1
        assert dead[0]["attrs"]["result"] in ("dead", "deadline")
        assert dead[0]["attrs"].get("dead") or dead[0]["attrs"].get("deadline")
        # The healthy shard still contributed a stitched subtree, and the
        # fallback scan for the dead one is attributed.
        names = [e["name"] for e in trace.events]
        assert "shard-1" in names
        assert "fallback-0" in names
        assert any(
            e.get("shard") == 1 and e["name"] == "search" for e in trace.events
        )
    finally:
        srv.close()


@pytest.mark.shard
def test_trace_ring_stays_bounded_under_sharded_bench():
    from repro.serve import run_shard_bench

    tracer = get_tracer()
    result = run_shard_bench(
        n_db=32, n_queries=8, shards=2, workers=2, seed=0, enforce_slos=False
    )
    assert result.n_queries == 8
    traces = tracer.recent()
    assert len(traces) <= tracer._ring_size
    topk_traces = tracer.recent(name="serve.topk")
    assert len(topk_traces) >= 8
    for trace in topk_traces[-8:]:
        assert trace.end is not None
        assert len(trace.events) <= trace.max_events
    # Per-shard attribution was aggregated from those same traces.
    assert sorted(result.shard_attribution) == [0, 1]
    for row in result.shard_attribution.values():
        assert row["gathers"] > 0
        assert row["mean_search_s"] >= 0.0


@pytest.mark.shard
def test_scrape_refresh_honours_ttl_and_close():
    trajs = _trajs(16, seed=23)
    srv = _server(trajs, n_shards=2, stats_ttl_s=0.2)
    try:
        srv.topk(trajs[0], k=2)
        assert srv.refresh_shard_telemetry() is True  # stale: probes workers
        assert srv.refresh_shard_telemetry() is False  # inside the TTL window
        time.sleep(0.25)
        assert srv.refresh_shard_telemetry() is True
        # A live-registry render is a scrape: the hook refreshed the
        # mirrors, so the shard label dimension shows every worker.
        time.sleep(0.25)
        text = render_exposition(get_registry())
        assert 'shard="0"' in text and 'shard="1"' in text
    finally:
        srv.close()
    assert srv.refresh_shard_telemetry() is False  # closed server refuses


@pytest.mark.shard
def test_untraced_sharded_requests_ship_no_subtrees():
    """With tracing disabled the wire shape survives but nothing stitches."""
    tracer = get_tracer()
    trajs = _trajs(16, seed=24)
    srv = _server(trajs, n_shards=2)
    n_before = len(tracer.recent(name="serve.topk"))
    before = tracer.set_enabled(False)
    try:
        result = srv.topk(trajs[1], k=3)
        assert not result.degraded
        # The request rode the same wire shape (trace_ctx=None) but no
        # trace was opened, so nothing landed in the ring.
        assert len(tracer.recent(name="serve.topk")) == n_before
    finally:
        tracer.set_enabled(before)
        srv.close()
