"""Tests for SRN, NeuTraj, T3S and Traj2SimVec."""

import numpy as np
import pytest

from repro.baselines import SRN, NeuTraj, T3S, Traj2SimVec
from repro.core import TMNConfig, Trainer
from repro.data import pair_batch


def small_config(**overrides):
    defaults = dict(hidden_dim=8, epochs=1, sampling_number=4, batch_anchors=8, seed=0)
    defaults.update(overrides)
    return TMNConfig(**defaults)


def toy_batch(rng, n=3, steps=6):
    trajs = [rng.normal(size=(steps, 2)) for _ in range(2 * n)]
    return pair_batch(trajs[:n], trajs[n:])


ALL_BASELINES = [SRN, NeuTraj, T3S, Traj2SimVec]


@pytest.mark.parametrize("cls", ALL_BASELINES)
class TestCommonBehaviour:
    def make(self, cls, rng):
        model = cls(small_config())
        if isinstance(model, NeuTraj):
            model.prepare([rng.normal(size=(10, 2)) for _ in range(4)])
        return model

    def test_forward_shapes(self, cls, rng):
        model = self.make(cls, rng)
        pa, la, ma, pb, lb, mb = toy_batch(rng)
        out_a, out_b = model.forward_pair(pa, la, ma, pb, lb, mb)
        assert out_a.shape == (3, 6, 8)
        assert out_b.shape == (3, 6, 8)

    def test_siamese_no_pair_interaction(self, cls, rng):
        model = self.make(cls, rng)
        assert not model.requires_pair_interaction
        model.eval()
        t = [rng.normal(size=(5, 2))]
        e1, _ = model.embed_pair(t, [rng.normal(size=(5, 2))])
        e2, _ = model.embed_pair(t, [rng.normal(size=(5, 2)) + 10.0])
        np.testing.assert_allclose(e1.data, e2.data, atol=1e-12)

    def test_recommended_config(self, cls, rng):
        cfg = cls.recommended_config(hidden_dim=8, epochs=1, sampling_number=4)
        assert isinstance(cfg, TMNConfig)

    def test_trains_one_epoch(self, cls, rng):
        trajs = [rng.normal(size=(int(rng.integers(8, 14)), 2)) for _ in range(10)]
        cfg = cls.recommended_config(
            hidden_dim=8, epochs=1, sampling_number=4, kd_neighbors=2, batch_anchors=8
        )
        model = cls(cfg)
        history = Trainer(model, cfg, metric="hausdorff").fit(trajs)
        assert len(history.epoch_losses) == 1

    def test_gradients_reach_parameters(self, cls, rng):
        model = self.make(cls, rng)
        pa, la, ma, pb, lb, mb = toy_batch(rng)
        out_a, out_b = model.forward_pair(pa, la, ma, pb, lb, mb)
        (out_a.sum() + out_b.sum()).backward()
        grads = [p.grad is not None for _, p in model.named_parameters()]
        assert any(grads)


class TestSRN:
    def test_config_has_no_subloss(self):
        assert not SRN.recommended_config().sub_loss

    def test_masked_padding_invariance(self, rng):
        model = SRN(small_config())
        a = [rng.normal(size=(4, 2))]
        e_alone, _ = model.embed_pair(a, a)
        longer = a + [rng.normal(size=(9, 2))]
        e_batch, _ = model.embed_pair(longer, longer)
        np.testing.assert_allclose(e_batch.data[0], e_alone.data[0], atol=1e-10)


class TestNeuTraj:
    def test_requires_prepare(self, rng):
        model = NeuTraj(small_config())
        pa, la, ma, pb, lb, mb = toy_batch(rng)
        with pytest.raises(RuntimeError, match="prepare"):
            model.forward_pair(pa, la, ma, pb, lb, mb)

    def test_memory_written_only_in_training(self, rng):
        model = NeuTraj(small_config())
        model.prepare([rng.normal(size=(10, 2)) for _ in range(4)])
        pa, la, ma, pb, lb, mb = toy_batch(rng)
        model.eval()
        model.forward_pair(pa, la, ma, pb, lb, mb)
        assert model._memory_count.sum() == 0
        model.train()
        model.forward_pair(pa, la, ma, pb, lb, mb)
        assert model._memory_count.sum() > 0

    def test_memory_influences_output(self, rng):
        model = NeuTraj(small_config())
        model.prepare([rng.normal(size=(10, 2)) for _ in range(4)])
        t = [rng.normal(size=(6, 2))]
        model.eval()
        before, _ = model.embed_pair(t, t)
        # Write memory by processing other trajectories in training mode.
        model.train()
        others = [rng.normal(size=(6, 2)) for _ in range(8)]
        model.embed_pair(others[:4], others[4:])
        model.eval()
        after, _ = model.embed_pair(t, t)
        assert not np.allclose(before.data, after.data)

    def test_memory_decay_validation(self):
        with pytest.raises(ValueError):
            NeuTraj(small_config(), memory_decay=1.0)

    def test_lstm_input_dim_doubled(self):
        model = NeuTraj(small_config())
        assert model.lstm.input_size == 2 * small_config().embed_dim


class TestT3S:
    def test_gamma_blends_representations(self, rng):
        model = T3S(small_config())
        pa, la, ma, pb, lb, mb = toy_batch(rng)
        out, _ = model.forward_pair(pa, la, ma, pb, lb, mb)
        # Force gamma extreme: pure LSTM (sigmoid -> 1).
        model.gamma.data = np.array([50.0])
        out_lstm, _ = model.forward_pair(pa, la, ma, pb, lb, mb)
        x = model.act(model.point_embed(__import__("repro.autograd", fromlist=["Tensor"]).Tensor(pa)))
        lstm_only, _ = model.lstm(x, mask=ma)
        np.testing.assert_allclose(out_lstm.data, lstm_only.data, atol=1e-8)

    def test_positional_encoding_limit(self, rng):
        model = T3S(small_config(), max_len=4)
        trajs = [rng.normal(size=(8, 2))]
        with pytest.raises(ValueError, match="positional"):
            model.embed_pair(trajs, trajs)

    def test_gamma_is_trainable(self, rng):
        model = T3S(small_config())
        names = [n for n, _ in model.named_parameters()]
        assert "gamma" in names


class TestTraj2SimVec:
    def test_prepare_builds_tree(self, rng):
        model = Traj2SimVec(small_config())
        assert model.tree is None
        model.prepare([rng.normal(size=(10, 2)) for _ in range(6)])
        assert model.tree is not None
        assert model.simplified.shape == (6, 20)

    def test_recommended_config_flags(self):
        cfg = Traj2SimVec.recommended_config()
        assert cfg.sub_loss
        assert cfg.sampler == "kdtree"
        assert cfg.kd_neighbors == 5

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Traj2SimVec(small_config(), n_segments=1)
