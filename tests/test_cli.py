"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x", "--n", "50"])
        assert args.command == "generate"
        assert args.n == 50

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestGenerate:
    def test_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        assert main(["generate", "--kind", "porto", "--n", "60", "--out", str(out)]) == 0
        ds = load_dataset(out)
        assert len(ds) > 10
        assert "wrote" in capsys.readouterr().out

    def test_raw_skips_preprocessing(self, tmp_path):
        out = tmp_path / "raw"
        main(["generate", "--kind", "geolife", "--n", "12", "--raw", "--out", str(out)])
        assert len(load_dataset(out)) == 12


class TestTrainEvaluate:
    def test_train_then_evaluate(self, tmp_path, capsys):
        ckpt = tmp_path / "model"
        code = main(
            [
                "train",
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--model",
                "SRN",
                "--fast",
                "--epochs",
                "1",
                "--out",
                str(ckpt),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final loss" in out

        code = main(
            [
                "evaluate",
                "--checkpoint",
                str(ckpt),
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR-5" in out


class TestExperimentFast:
    def test_table4_fast(self, capsys):
        assert main(["experiment", "table4", "--metric", "hausdorff", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "TMN-kd" in out

    def test_fig5_fast(self, capsys):
        assert main(["experiment", "fig5", "--metric", "hausdorff", "--fast"]) == 0
        assert "TMN-noSub" in capsys.readouterr().out
