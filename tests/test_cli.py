"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x", "--n", "50"])
        assert args.command == "generate"
        assert args.n == 50

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestGenerate:
    def test_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        assert main(["generate", "--kind", "porto", "--n", "60", "--out", str(out)]) == 0
        ds = load_dataset(out)
        assert len(ds) > 10
        assert "wrote" in capsys.readouterr().out

    def test_raw_skips_preprocessing(self, tmp_path):
        out = tmp_path / "raw"
        main(["generate", "--kind", "geolife", "--n", "12", "--raw", "--out", str(out)])
        assert len(load_dataset(out)) == 12


class TestTrainEvaluate:
    def test_train_then_evaluate(self, tmp_path, capsys):
        ckpt = tmp_path / "model"
        code = main(
            [
                "train",
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--model",
                "SRN",
                "--fast",
                "--epochs",
                "1",
                "--out",
                str(ckpt),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final loss" in out

        code = main(
            [
                "evaluate",
                "--checkpoint",
                str(ckpt),
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR-5" in out


class TestExperimentFast:
    def test_table4_fast(self, capsys):
        assert main(["experiment", "table4", "--metric", "hausdorff", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "TMN-kd" in out

    def test_fig5_fast(self, capsys):
        assert main(["experiment", "fig5", "--metric", "hausdorff", "--fast"]) == 0
        assert "TMN-noSub" in capsys.readouterr().out


class TestProfileServe:
    def test_writes_loadable_speedscope_with_dp_kernels(self, tmp_path, capsys):
        """The acceptance check: profile-serve emits a speedscope document
        whose frames include the DP-metric kernels."""
        import json

        ss = tmp_path / "profile.speedscope.json"
        folded = tmp_path / "profile.folded"
        code = main(
            [
                "profile-serve",
                "--n-db",
                "12",
                "--queries",
                "40",
                "--workers",
                "2",
                "--hz",
                "400",
                "--exact-pairs",
                "10",
                "--speedscope",
                str(ss),
                "--folded",
                str(folded),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench:" in out
        assert "profile:" in out and "sample(s)" in out
        doc = json.loads(ss.read_text())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["profiles"], "at least one per-thread profile"
        labels = {f["name"] for f in doc["shared"]["frames"]}
        assert any("repro.metrics._dp" in label for label in labels), (
            "the exact DP-metric phase must surface the kernels"
        )
        assert folded.read_text().strip(), "collapsed stacks written"

    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile-serve"])
        assert args.command == "profile-serve"
        assert args.hz == 97.0
        assert args.exact_pairs == 24

    def test_train_sampler_and_memory_flags(self, tmp_path, capsys):
        import json

        log = tmp_path / "run.jsonl"
        code = main(
            [
                "train",
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--model",
                "SRN",
                "--fast",
                "--epochs",
                "1",
                "--sample-hz",
                "200",
                "--track-memory",
                "--profile",
                "--log-json",
                str(log),
                "--out",
                str(tmp_path / "ckpt"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total_bytes" in out  # op table gained the memory column
        records = [json.loads(line) for line in log.read_text().splitlines()]
        end = next(r for r in records if r.get("event") == "run_end")
        assert end["sample_profile"]["samples"] >= 0
        assert "stacks" in end["sample_profile"]
        epochs = [r for r in records if r.get("event") == "epoch"]
        assert epochs and all("alloc_bytes" in r for r in epochs)
