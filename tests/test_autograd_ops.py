"""Unit tests for composite autodiff operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import (
    Tensor,
    check_gradients,
    clip,
    concat,
    dot_rows,
    euclidean_distance,
    masked_softmax,
    maximum,
    minimum,
    softmax,
    stack,
    where,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        s = softmax(x, axis=-1).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(5))

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data, atol=1e-12
        )

    def test_handles_large_values(self):
        s = softmax(Tensor([[1000.0, 1000.0]])).data
        np.testing.assert_allclose(s, [[0.5, 0.5]])

    def test_gradcheck(self, rng):
        x = rng.normal(size=(3, 4))
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda t: softmax(t, axis=-1) * w, [x])

    def test_axis_zero(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(softmax(x, axis=0).data.sum(axis=0), np.ones(3))


class TestMaskedSoftmax:
    def test_masked_positions_zero(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        mask = np.array([[True, True, False, False], [True, True, True, True]])
        s = masked_softmax(x, mask).data
        assert np.all(s[0, 2:] == 0.0)
        np.testing.assert_allclose(s.sum(axis=-1), [1.0, 1.0])

    def test_fully_masked_row_is_zero(self):
        x = Tensor(np.ones((1, 3)))
        s = masked_softmax(x, np.zeros((1, 3), bool)).data
        np.testing.assert_allclose(s, np.zeros((1, 3)))
        assert not np.any(np.isnan(s))

    def test_equals_softmax_with_full_mask(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            masked_softmax(Tensor(x), np.ones((3, 5), bool)).data,
            softmax(Tensor(x)).data,
        )

    def test_gradcheck(self, rng):
        x = rng.normal(size=(3, 4))
        mask = np.array([[1, 1, 0, 0], [1, 0, 1, 0], [1, 1, 1, 1]], bool)
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda t: masked_softmax(t, mask) * w, [x])

    def test_broadcast_mask(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        mask = np.array([True, True, False, True])[None, None, :]
        s = masked_softmax(x, np.broadcast_to(mask, x.shape)).data
        assert np.all(s[..., 2] == 0.0)


class TestConcatStack:
    def test_concat_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        out = concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concat_gradcheck(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        check_gradients(lambda x, y: concat([x.tanh(), y], axis=0), [a, b])
        check_gradients(lambda x, y: concat([x, y * 2], axis=-1), [a, b])

    def test_concat_accepts_raw_arrays(self):
        out = concat([np.ones((1, 2)), np.zeros((1, 2))], axis=0)
        assert out.shape == (2, 2)

    def test_stack_values_and_grad(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        out = stack([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.stack([a, b], axis=1))
        check_gradients(lambda x, y: stack([x, y.exp()], axis=0), [a, b])

    def test_stack_many(self, rng):
        parts = [Tensor(rng.normal(size=(3,))) for _ in range(5)]
        assert stack(parts, axis=0).shape == (5, 3)


class TestSelection:
    def test_where_values(self, rng):
        cond = np.array([True, False, True])
        a, b = Tensor([1.0, 2.0, 3.0]), Tensor([10.0, 20.0, 30.0])
        np.testing.assert_allclose(where(cond, a, b).data, [1.0, 20.0, 3.0])

    def test_where_gradcheck(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        cond = rng.random((3, 4)) > 0.5
        check_gradients(lambda x, y: where(cond, x * 2, y), [a, b])

    def test_where_broadcast_condition(self, rng):
        cond = np.array([[True], [False]])
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        check_gradients(lambda x, y: where(cond, x, y), [a, b])

    def test_maximum_minimum_values(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(minimum(a, b).data, [1.0, 2.0])

    def test_maximum_gradcheck(self, rng):
        a = rng.normal(size=(4,))
        b = rng.normal(size=(4,))
        check_gradients(lambda x, y: maximum(x, y), [a, b])
        check_gradients(lambda x, y: minimum(x, y), [a, b])

    def test_clip_values_and_grad(self, rng):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        out = clip(x, -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.0, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_clip_one_sided(self):
        x = Tensor([-2.0, 2.0])
        np.testing.assert_allclose(clip(x, 0.0, None).data, [0.0, 2.0])
        np.testing.assert_allclose(clip(x, None, 0.0).data, [-2.0, 0.0])

    def test_clip_gradcheck(self):
        # Points kept away from the clip boundaries, where the kink would
        # invalidate the central finite difference.
        x = np.array([-1.7, -0.4, 0.3, 0.9, 1.6])
        check_gradients(lambda t: clip(t, -1.0, 1.0) * 2.0, [x])
        check_gradients(lambda t: clip(t, 0.0, None), [x])
        check_gradients(lambda t: clip(t, None, 0.5), [x])


class TestDistances:
    def test_euclidean_value(self):
        a, b = Tensor([0.0, 0.0]), Tensor([3.0, 4.0])
        assert euclidean_distance(a, b).item() == pytest.approx(5.0, abs=1e-5)

    def test_euclidean_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        check_gradients(lambda x, y: euclidean_distance(x, y), [a, b])

    def test_euclidean_at_zero_is_finite(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        d = euclidean_distance(a, Tensor(np.zeros(3)))
        d.backward()
        assert np.all(np.isfinite(a.grad))

    def test_dot_rows(self, rng):
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            dot_rows(Tensor(a), Tensor(b)).data, (a * b).sum(axis=-1)
        )

    def test_dot_rows_gradcheck(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        check_gradients(lambda x, y: dot_rows(x, y), [a, b])


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
def test_property_softmax_is_distribution(arr):
    s = softmax(Tensor(arr), axis=-1).data
    assert np.all(s >= 0)
    np.testing.assert_allclose(s.sum(axis=-1), np.ones(arr.shape[0]), atol=1e-9)
