"""Property-based tests of algebraic identities the autodiff engine must obey."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, check_gradients

matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-2, 2, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=30, deadline=None)
@given(matrices, matrices)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_double_negation(a):
    np.testing.assert_allclose((-(-Tensor(a))).data, a)


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_exp_log_inverse(a):
    t = Tensor(np.abs(a) + 0.5)
    np.testing.assert_allclose(t.log().exp().data, t.data, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_sum_linearity_of_gradient(a):
    """d/dx sum(c * x) == c everywhere."""
    t = Tensor(a, requires_grad=True)
    (t * 3.5).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(a, 3.5))


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_chain_rule_products(a):
    """Gradient of x*x*x is 3x^2 (repeated-use accumulation)."""
    t = Tensor(a, requires_grad=True)
    (t * t * t).sum().backward()
    np.testing.assert_allclose(t.grad, 3 * a * a, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_matmul_transpose_identity(seed):
    """(A B)^T == B^T A^T, and both paths gradcheck."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    left = (Tensor(a) @ Tensor(b)).T
    right = Tensor(b).T @ Tensor(a).T
    np.testing.assert_allclose(left.data, right.data, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_composed_network_gradcheck(seed):
    """Random small 'network': linear -> tanh -> linear -> mean."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 4))
    w1 = rng.normal(size=(4, 5)) * 0.5
    w2 = rng.normal(size=(5, 1)) * 0.5
    check_gradients(lambda t, a, b: ((t @ a).tanh() @ b).mean(), [x, w1, w2])


@settings(max_examples=20, deadline=None)
@given(matrices)
def test_mean_equals_sum_over_size(a):
    t = Tensor(a)
    np.testing.assert_allclose(t.mean().item(), t.sum().item() / a.size, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(matrices)
def test_detach_blocks_gradient_but_keeps_value(a):
    t = Tensor(a, requires_grad=True)
    d = (t * 2).detach()
    np.testing.assert_allclose(d.data, 2 * a)
    out = (d * 3).sum()
    if out._backward is None:
        assert t.grad is None
