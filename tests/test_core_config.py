"""Tests for TMNConfig and the similarity transforms."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    TMNConfig,
    alpha_for_metric,
    distance_to_similarity,
    predicted_similarity,
    similarity_to_distance,
)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = TMNConfig()
        assert cfg.hidden_dim == 128
        assert cfg.learning_rate == 5e-3
        assert cfg.sampling_number == 20
        assert cfg.sub_stride == 10
        assert cfg.loss == "mse"
        assert cfg.sampler == "rank"
        assert cfg.matching

    def test_embed_dim_is_half(self):
        assert TMNConfig(hidden_dim=64).embed_dim == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_dim": 3},
            {"hidden_dim": 0},
            {"sampling_number": 5},
            {"sampling_number": 0},
            {"loss": "huber"},
            {"sampler": "random"},
            {"sub_stride": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TMNConfig(**kwargs)

    def test_with_updates_returns_new(self):
        cfg = TMNConfig()
        cfg2 = cfg.with_updates(hidden_dim=16)
        assert cfg2.hidden_dim == 16
        assert cfg.hidden_dim == 128

    def test_frozen(self):
        with pytest.raises(Exception):
            TMNConfig().hidden_dim = 4


class TestAlphaForMetric:
    def test_paper_values(self):
        assert alpha_for_metric("dtw") == 16.0
        assert alpha_for_metric("erp") == 16.0
        for name in ("hausdorff", "frechet", "edr", "lcss"):
            assert alpha_for_metric(name) == 8.0

    def test_case_insensitive(self):
        assert alpha_for_metric("DTW") == 16.0

    def test_unknown(self):
        with pytest.raises(KeyError):
            alpha_for_metric("cosine")


class TestSimilarityTransforms:
    def test_distance_to_similarity_range(self, rng):
        d = np.abs(rng.normal(size=20))
        s = distance_to_similarity(d, alpha=2.0)
        assert np.all((s > 0) & (s <= 1))

    def test_zero_distance_is_one(self):
        assert distance_to_similarity(0.0, 1.0) == pytest.approx(1.0)

    def test_roundtrip(self, rng):
        d = np.abs(rng.normal(size=10))
        s = distance_to_similarity(d, alpha=3.0)
        np.testing.assert_allclose(similarity_to_distance(s, 3.0), d)

    def test_tensor_input(self):
        t = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        s = distance_to_similarity(t, alpha=1.0)
        assert isinstance(s, Tensor)
        np.testing.assert_allclose(s.data, [1.0, np.exp(-1)])
        s.sum().backward()
        assert t.grad is not None

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            distance_to_similarity(1.0, 0.0)
        with pytest.raises(ValueError):
            similarity_to_distance(0.5, -1.0)

    def test_similarity_range_validation(self):
        with pytest.raises(ValueError):
            similarity_to_distance(1.5, 1.0)
        with pytest.raises(ValueError):
            similarity_to_distance(0.0, 1.0)


class TestPredictedSimilarity:
    def test_identical_embeddings_near_one(self):
        e = np.ones((3, 4))
        np.testing.assert_allclose(predicted_similarity(e, e), np.ones(3), atol=1e-5)

    def test_monotone_in_distance(self, rng):
        a = np.zeros((2, 3))
        near = np.full((2, 3), 0.1)
        far = np.full((2, 3), 5.0)
        assert np.all(predicted_similarity(a, near) > predicted_similarity(a, far))

    def test_tensor_and_array_agree(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        t = predicted_similarity(Tensor(a), Tensor(b))
        n = predicted_similarity(a, b)
        np.testing.assert_allclose(t.data, n, atol=1e-7)

    def test_gradient_flows(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)))
        predicted_similarity(a, b).sum().backward()
        assert a.grad is not None
