"""Tests for the matching mechanism and self-attention."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import SelfAttention, cross_match, match_pattern


class TestMatchPattern:
    def test_rows_are_distributions(self, rng):
        xa = Tensor(rng.normal(size=(2, 4, 3)))
        xb = Tensor(rng.normal(size=(2, 4, 3)))
        p = match_pattern(xa, xb).data
        np.testing.assert_allclose(p.sum(axis=-1), np.ones((2, 4)))

    def test_masked_keys_get_zero_weight(self, rng):
        xa = Tensor(rng.normal(size=(1, 3, 2)))
        xb = Tensor(rng.normal(size=(1, 3, 2)))
        mask_b = np.array([[True, False, True]])
        p = match_pattern(xa, xb, mask_b=mask_b).data
        assert np.all(p[0, :, 1] == 0.0)
        np.testing.assert_allclose(p.sum(axis=-1), np.ones((1, 3)))

    def test_masked_query_rows_zeroed(self, rng):
        xa = Tensor(rng.normal(size=(1, 3, 2)))
        xb = Tensor(rng.normal(size=(1, 3, 2)))
        mask_a = np.array([[True, True, False]])
        p = match_pattern(xa, xb, mask_a=mask_a).data
        np.testing.assert_allclose(p[0, 2], np.zeros(3))

    def test_unbatched_2d_inputs(self, rng):
        xa = Tensor(rng.normal(size=(4, 3)))
        xb = Tensor(rng.normal(size=(5, 3)))
        p = match_pattern(xa, xb).data
        assert p.shape == (4, 5)
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(4))

    def test_identical_points_attend_to_match(self):
        # Strongly separated embeddings: each point of a matches its twin in b.
        base = np.eye(4)[None, :, :] * 10.0
        p = match_pattern(Tensor(base), Tensor(base)).data[0]
        assert np.all(p.argmax(axis=1) == np.arange(4))


class TestCrossMatch:
    def test_shapes(self, rng):
        xa = Tensor(rng.normal(size=(2, 5, 3)))
        xb = Tensor(rng.normal(size=(2, 5, 3)))
        m, p = cross_match(xa, xb)
        assert m.shape == (2, 5, 3)
        assert p.shape == (2, 5, 5)

    def test_discrepancy_is_x_minus_summary(self, rng):
        xa = Tensor(rng.normal(size=(1, 4, 3)))
        xb = Tensor(rng.normal(size=(1, 4, 3)))
        m, p = cross_match(xa, xb)
        summary = p.data @ xb.data
        np.testing.assert_allclose(m.data, xa.data - summary, atol=1e-12)

    def test_padded_rows_zeroed(self, rng):
        xa = Tensor(rng.normal(size=(1, 4, 3)))
        xb = Tensor(rng.normal(size=(1, 4, 3)))
        mask_a = np.array([[True, True, False, False]])
        m, _ = cross_match(xa, xb, mask_a=mask_a)
        np.testing.assert_allclose(m.data[0, 2:], np.zeros((2, 3)))

    def test_self_match_discrepancy_small_for_identical_points(self):
        # All points equal: the weighted summary is exactly the point itself.
        pts = np.ones((1, 5, 3))
        m, _ = cross_match(Tensor(pts), Tensor(pts))
        np.testing.assert_allclose(m.data, np.zeros_like(pts), atol=1e-12)

    def test_gradcheck(self, rng):
        xa = rng.normal(size=(2, 3, 2))
        xb = rng.normal(size=(2, 3, 2))
        ma = np.array([[1, 1, 0], [1, 1, 1]], bool)
        mb = np.array([[1, 0, 0], [1, 1, 1]], bool)
        check_gradients(lambda a, b: cross_match(a, b, ma, mb)[0], [xa, xb], atol=1e-4)

    def test_padding_invariance(self, rng):
        """Extending both trajectories with padded points must not change
        the discrepancy on the real points (Section IV-B masking)."""
        xa = rng.normal(size=(1, 3, 2))
        xb = rng.normal(size=(1, 3, 2))
        m_short, _ = cross_match(
            Tensor(xa), Tensor(xb), np.ones((1, 3), bool), np.ones((1, 3), bool)
        )
        xa_pad = np.concatenate([xa, np.zeros((1, 2, 2))], axis=1)
        xb_pad = np.concatenate([xb, np.zeros((1, 2, 2))], axis=1)
        mask = np.array([[True, True, True, False, False]])
        m_pad, _ = cross_match(Tensor(xa_pad), Tensor(xb_pad), mask, mask)
        np.testing.assert_allclose(m_pad.data[:, :3], m_short.data, atol=1e-12)


class TestSelfAttention:
    def test_output_shape(self, rng):
        attn = SelfAttention(4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 6, 4))))
        assert out.shape == (2, 6, 4)

    def test_mask_hides_padding(self, rng):
        attn = SelfAttention(3, rng=rng)
        x = rng.normal(size=(1, 4, 3))
        mask = np.array([[True, True, True, False]])
        out = attn(Tensor(x), mask=mask)
        # Padded query rows produce zero output.
        np.testing.assert_allclose(out.data[0, 3], np.zeros(3), atol=1e-12)

    def test_mask_padding_invariance(self, rng):
        attn = SelfAttention(3, rng=rng)
        x = rng.normal(size=(1, 3, 3))
        out_short = attn(Tensor(x), mask=np.ones((1, 3), bool))
        x_pad = np.concatenate([x, np.zeros((1, 2, 3))], axis=1)
        mask = np.array([[True, True, True, False, False]])
        out_pad = attn(Tensor(x_pad), mask=mask)
        np.testing.assert_allclose(out_pad.data[:, :3], out_short.data, atol=1e-12)

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            SelfAttention(0)

    def test_gradcheck(self, rng):
        attn = SelfAttention(2, rng=rng)
        x = rng.normal(size=(1, 3, 2))
        check_gradients(lambda t: attn(t), [x], atol=1e-4)

    def test_parameters_trainable(self, rng):
        attn = SelfAttention(3, rng=rng)
        attn(Tensor(rng.normal(size=(1, 4, 3)))).sum().backward()
        assert attn.w_q.grad is not None
        assert attn.w_k.grad is not None
        assert attn.w_v.grad is not None
