"""Tests for the evaluation stack: search, ranking metrics, efficiency."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.eval import (
    embedding_distance_matrix,
    evaluate_rankings,
    hitting_ratio,
    recall_k_at_t,
    time_encoding,
    time_exact_metric,
    time_vector_similarity,
    topk_indices,
)


class TestEmbeddingDistanceMatrix:
    def test_matches_scipy(self, rng):
        a = rng.normal(size=(10, 6))
        np.testing.assert_allclose(embedding_distance_matrix(a), cdist(a, a), atol=1e-6)

    def test_cross_matches_scipy(self, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(7, 4))
        np.testing.assert_allclose(embedding_distance_matrix(a, b), cdist(a, b), atol=1e-6)

    def test_no_negative_values_from_rounding(self, rng):
        a = rng.normal(size=(20, 3))
        assert np.all(embedding_distance_matrix(a) >= 0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            embedding_distance_matrix(rng.normal(size=(5, 3)), rng.normal(size=(5, 4)))
        with pytest.raises(ValueError):
            embedding_distance_matrix(rng.normal(size=5))


class TestTopK:
    def test_simple_ranking(self):
        mat = np.array([[0.0, 1.0, 3.0, 2.0], [1.0, 0.0, 0.5, 4.0]])
        idx = topk_indices(mat, k=2, exclude_self=False)
        np.testing.assert_array_equal(idx[0], [0, 1])
        np.testing.assert_array_equal(idx[1], [1, 2])

    def test_exclude_self_skips_diagonal(self):
        mat = np.zeros((3, 3)) + 5.0
        np.fill_diagonal(mat, 0.0)
        mat[0, 2] = 1.0
        idx = topk_indices(mat, k=1, exclude_self=True)
        assert idx[0, 0] == 2

    def test_sorted_by_distance(self, rng):
        mat = rng.random((6, 6))
        idx = topk_indices(mat, k=5, exclude_self=False)
        for row in range(6):
            vals = mat[row, idx[row]]
            assert np.all(np.diff(vals) >= 0)

    def test_k_validation(self, rng):
        mat = rng.random((4, 4))
        with pytest.raises(ValueError):
            topk_indices(mat, k=0)
        with pytest.raises(ValueError):
            topk_indices(mat, k=4, exclude_self=True)  # only 3 candidates

    def test_exclude_self_requires_square(self, rng):
        with pytest.raises(ValueError):
            topk_indices(rng.random((3, 5)), k=2, exclude_self=True)


class TestRankingMetrics:
    def test_perfect_prediction_gives_one(self, rng):
        gt = rng.random((8, 8))
        gt = gt + gt.T
        assert hitting_ratio(gt, gt.copy(), k=3) == 1.0
        assert recall_k_at_t(gt, gt.copy(), k=2, t=4) == 1.0

    def test_monotone_ordering_gives_one(self, rng):
        """Any monotone transform of the distances preserves rankings."""
        gt = rng.random((8, 8))
        gt = gt + gt.T
        assert hitting_ratio(gt, gt**3, k=3) == 1.0

    def test_hand_example(self):
        # 4 items; query 0's true nearest is 1, predicted nearest is 2.
        gt = np.array(
            [
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 9.0, 9.0],
                [2.0, 9.0, 0.0, 9.0],
                [3.0, 9.0, 9.0, 0.0],
            ]
        )
        pred = gt.copy()
        pred[0, 1], pred[0, 2] = 2.0, 1.0  # swap ranks for query 0
        hr1 = hitting_ratio(gt, pred, k=1)
        assert hr1 == pytest.approx(3 / 4)  # only query 0 misses

    def test_recall_requires_t_ge_k(self, rng):
        gt = rng.random((5, 5))
        with pytest.raises(ValueError):
            recall_k_at_t(gt, gt, k=3, t=2)

    def test_recall_at_larger_t_not_smaller(self, rng):
        gt = rng.random((10, 10))
        gt = gt + gt.T
        pred = rng.random((10, 10))
        pred = pred + pred.T
        r_small = recall_k_at_t(gt, pred, k=3, t=3)
        r_large = recall_k_at_t(gt, pred, k=3, t=8)
        assert r_large >= r_small

    def test_evaluate_rankings_bundle(self, rng):
        gt = rng.random((12, 12))
        gt = gt + gt.T
        out = evaluate_rankings(gt, gt.copy(), hr_ks=(3, 5), recall=(3, 5))
        assert set(out) == {"HR-3", "HR-5", "R3@5"}
        assert all(v == 1.0 for v in out.values())

    def test_evaluate_rankings_shape_check(self, rng):
        with pytest.raises(ValueError):
            evaluate_rankings(rng.random((4, 4)), rng.random((5, 5)))

    def test_scores_in_unit_interval(self, rng):
        gt = rng.random((10, 10))
        pred = rng.random((10, 10))
        out = evaluate_rankings(gt + gt.T, pred + pred.T, hr_ks=(3,), recall=(3, 5))
        assert all(0.0 <= v <= 1.0 for v in out.values())


class TestEfficiencyTimers:
    def test_time_exact_metric_positive(self, toy_trajectories):
        assert time_exact_metric(toy_trajectories, "hausdorff") > 0

    def test_time_encoding(self, toy_trajectories):
        from repro.core import TMN, TMNConfig

        model = TMN(TMNConfig(hidden_dim=8, sampling_number=4))
        per_traj = time_encoding(model, toy_trajectories)
        assert per_traj > 0

    def test_time_encoding_needs_input(self):
        from repro.core import TMN, TMNConfig

        with pytest.raises(ValueError):
            time_encoding(TMN(TMNConfig(hidden_dim=8, sampling_number=4)), [])

    def test_time_vector_similarity(self, rng):
        emb = rng.normal(size=(4, 16))
        assert time_vector_similarity(emb, repeats=100) > 0

    def test_time_vector_similarity_needs_two(self, rng):
        with pytest.raises(ValueError):
            time_vector_similarity(rng.normal(size=(1, 4)))
