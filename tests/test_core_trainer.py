"""Tests for the Trainer: loss descent, determinism, validation, ablations."""

import numpy as np
import pytest

from repro.core import TMN, TMNConfig, Trainer
from repro.metrics import pairwise_distance_matrix


@pytest.fixture(scope="module")
def tiny_train():
    rng = np.random.default_rng(11)
    trajs = [rng.normal(size=(int(rng.integers(8, 16)), 2)) for _ in range(16)]
    distances = pairwise_distance_matrix(trajs, "hausdorff")
    return trajs, distances


def small_config(**overrides):
    defaults = dict(hidden_dim=8, epochs=2, sampling_number=4, batch_anchors=8, seed=0)
    defaults.update(overrides)
    return TMNConfig(**defaults)


class TestFit:
    def test_loss_decreases(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(epochs=6)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        history = trainer.fit(trajs, distances=distances)
        assert len(history.epoch_losses) == 6
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_history_metadata(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config()
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        history = trainer.fit(trajs, distances=distances)
        assert history.metric == "hausdorff"
        assert all(s > 0 for s in history.epoch_seconds)
        assert history.final_loss == history.epoch_losses[-1]
        assert len(history.grad_norms) == len(history.epoch_losses)
        assert all(g >= 0 for g in history.grad_norms)

    def test_spans_and_epoch_callback(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(epochs=2)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        seen = []
        trainer.fit(trajs, distances=distances, on_epoch=seen.append)
        assert [r["epoch"] for r in seen] == [1, 2]
        for record in seen:
            assert record["grad_norm"] >= 0
            assert "epoch/batch/forward" in record["spans"]
        totals = trainer.spans.totals()
        assert totals["epoch"]["count"] == 2
        assert totals["epoch"]["seconds"] >= totals["epoch/batch"]["seconds"]

    def test_final_loss_without_epochs_raises(self):
        from repro.core import TrainingHistory

        with pytest.raises(RuntimeError):
            TrainingHistory(metric="dtw").final_loss

    def test_effective_alpha_scaled(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config()
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        trainer.fit(trajs, distances=distances)
        mean_d = distances[distances > 0].mean()
        assert trainer.effective_alpha == pytest.approx(8.0 / (8.0 * mean_d))

    def test_explicit_alpha_respected(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(alpha=2.0)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        trainer.fit(trajs, distances=distances)
        mean_d = distances[distances > 0].mean()
        assert trainer.effective_alpha == pytest.approx(2.0 / (8.0 * mean_d))

    def test_deterministic_given_seed(self, tiny_train):
        trajs, distances = tiny_train

        def run():
            cfg = small_config(epochs=2)
            model = TMN(cfg)
            Trainer(model, cfg, metric="hausdorff").fit(trajs, distances=distances)
            return model.encode(trajs[:3])

        np.testing.assert_allclose(run(), run())

    def test_model_left_in_eval_mode(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config()
        model = TMN(cfg)
        Trainer(model, cfg, metric="hausdorff").fit(trajs, distances=distances)
        assert not model.training

    def test_computes_distances_when_missing(self):
        rng = np.random.default_rng(2)
        trajs = [rng.normal(size=(6, 2)) for _ in range(8)]
        cfg = small_config(epochs=1)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        history = trainer.fit(trajs)  # no distances passed
        assert len(history.epoch_losses) == 1


class TestValidation:
    def test_too_few_trajectories(self, rng):
        trajs = [rng.normal(size=(5, 2)) for _ in range(3)]
        cfg = small_config()
        with pytest.raises(ValueError, match="sampling_number"):
            Trainer(TMN(cfg), cfg, metric="dtw").fit(trajs)

    def test_distance_matrix_shape_mismatch(self, tiny_train):
        trajs, _ = tiny_train
        cfg = small_config()
        with pytest.raises(ValueError, match="does not match"):
            Trainer(TMN(cfg), cfg, metric="dtw").fit(trajs, distances=np.zeros((3, 3)))


class TestVariants:
    def test_kdtree_sampler_path(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(sampler="kdtree", kd_neighbors=3)
        history = Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs, distances=distances)
        assert history.epoch_losses

    def test_qerror_loss_path(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(loss="qerror")
        history = Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs, distances=distances)
        # Q-error is >= 1 by construction.
        assert history.epoch_losses[-1] >= 1.0

    def test_sub_loss_disabled(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(sub_loss=False)
        history = Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs, distances=distances)
        assert history.epoch_losses

    def test_sub_loss_none_when_stride_exceeds_lengths(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(sub_loss=True, sub_stride=1000)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        history = trainer.fit(trajs, distances=distances)
        assert history.epoch_losses  # runs fine; sub term contributes nothing

    def test_sub_loss_changes_training(self, tiny_train):
        trajs, distances = tiny_train

        def final_loss(sub):
            cfg = small_config(sub_loss=sub, sub_stride=5, epochs=2)
            model = TMN(cfg)
            Trainer(model, cfg, metric="hausdorff").fit(trajs, distances=distances)
            return model.encode(trajs[:2])

        assert not np.allclose(final_loss(True), final_loss(False))

    def test_trainer_works_with_metric_spec(self, tiny_train):
        from repro.metrics import get_metric

        trajs, distances = tiny_train
        cfg = small_config()
        spec = get_metric("edr", eps=0.5)
        history = Trainer(TMN(cfg), cfg, metric=spec).fit(trajs)
        assert history.metric == "edr"


class TestEarlyStopping:
    def test_stops_when_loss_plateaus(self, tiny_train):
        trajs, distances = tiny_train
        # A huge min_delta means "never improved": stop after patience epochs.
        cfg = small_config(epochs=10, patience=2, min_delta=1e9)
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        history = trainer.fit(trajs, distances=distances)
        assert history.stopped_early
        # First epoch always "improves" on infinity, then patience epochs.
        assert len(history.epoch_losses) == 3

    def test_runs_full_epochs_when_improving(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(epochs=3, patience=3, min_delta=0.0)
        history = Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs, distances=distances)
        assert len(history.epoch_losses) <= 3

    def test_disabled_by_default(self, tiny_train):
        trajs, distances = tiny_train
        cfg = small_config(epochs=3)
        history = Trainer(TMN(cfg), cfg, metric="hausdorff").fit(trajs, distances=distances)
        assert not history.stopped_early
        assert len(history.epoch_losses) == 3

    def test_patience_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            small_config(patience=0)
