"""Integration tests: the full paper pipeline end-to-end at tiny scale."""

import numpy as np
import pytest

from repro.core import TMN, TMNConfig, Trainer, pair_distance_matrix
from repro.eval import evaluate_rankings
from repro.experiments import SMOKE, load_corpus
from repro.metrics import pairwise_distance_matrix


@pytest.fixture(scope="module")
def corpus():
    return load_corpus("porto", SMOKE, seed=1)


class TestEndToEnd:
    def test_training_beats_untrained(self, corpus):
        """The central claim at miniature scale: a trained TMN ranks test
        trajectories better than an untrained one."""
        cfg = TMNConfig(
            hidden_dim=16, epochs=8, sampling_number=6, batch_anchors=8, seed=0
        )
        gt = corpus.test_distances("hausdorff")

        untrained = TMN(cfg)
        untrained.eval()
        before = evaluate_rankings(
            gt, pair_distance_matrix(untrained, corpus.test_points), hr_ks=(5,), recall=(5, 10)
        )

        model = TMN(cfg)
        Trainer(model, cfg, metric="hausdorff").fit(
            corpus.train_points, distances=corpus.train_distances("hausdorff")
        )
        after = evaluate_rankings(
            gt, pair_distance_matrix(model, corpus.test_points), hr_ks=(5,), recall=(5, 10)
        )
        assert after["HR-5"] > before["HR-5"]

    def test_pipeline_all_metrics_smoke(self, corpus):
        """Every supported metric must drive the full train/eval loop."""
        cfg = TMNConfig(hidden_dim=8, epochs=1, sampling_number=4, batch_anchors=16, seed=0)
        for metric in ("dtw", "frechet", "hausdorff", "erp", "edr", "lcss"):
            model = TMN(cfg)
            history = Trainer(model, cfg, metric=metric).fit(
                corpus.train_points, distances=corpus.train_distances(metric)
            )
            assert np.isfinite(history.final_loss), metric

    def test_full_reproducibility(self, corpus):
        """Same seed, same corpus -> identical evaluation scores."""

        def run():
            cfg = TMNConfig(hidden_dim=8, epochs=2, sampling_number=4, seed=7)
            model = TMN(cfg)
            Trainer(model, cfg, metric="hausdorff").fit(
                corpus.train_points, distances=corpus.train_distances("hausdorff")
            )
            pred = pair_distance_matrix(model, corpus.test_points[:15])
            return evaluate_rankings(
                corpus.test_distances("hausdorff")[:15, :15], pred, hr_ks=(3,), recall=(3, 5)
            )

        assert run() == run()

    def test_ground_truth_matrices_consistent(self, corpus):
        """The cached corpus matrices must equal fresh computation."""
        fresh = pairwise_distance_matrix(corpus.test_points[:10], "dtw")
        cached = corpus.test_distances("dtw")[:10, :10]
        np.testing.assert_allclose(fresh, cached)
