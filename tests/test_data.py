"""Tests for trajectory containers, synthetic corpora, preprocessing,
grid mapping and batching."""

import numpy as np
import pytest

from repro.data import (
    GEOLIFE_BBOX,
    PORTO_BBOX,
    GridMapper,
    NormStats,
    Trajectory,
    TrajectoryDataset,
    filter_center,
    filter_min_length,
    make_dataset,
    make_geolife_like,
    make_porto_like,
    normalize,
    pad_batch,
    pair_batch,
    prepare,
)


class TestTrajectory:
    def test_basic(self, rng):
        t = Trajectory(rng.normal(size=(5, 2)))
        assert len(t) == 5
        assert t.points.dtype == np.float64

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            Trajectory(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 2)), timestamps=np.zeros(2))

    def test_prefix(self, rng):
        t = Trajectory(rng.normal(size=(6, 2)), timestamps=np.arange(6.0))
        p = t.prefix(3)
        assert len(p) == 3
        np.testing.assert_allclose(p.points, t.points[:3])
        np.testing.assert_allclose(p.timestamps, [0, 1, 2])

    def test_prefix_is_a_copy(self, rng):
        t = Trajectory(rng.normal(size=(4, 2)))
        p = t.prefix(2)
        p.points[0] = 999
        assert t.points[0, 0] != 999

    def test_prefix_range(self, rng):
        t = Trajectory(rng.normal(size=(4, 2)))
        with pytest.raises(ValueError):
            t.prefix(0)
        with pytest.raises(ValueError):
            t.prefix(5)

    def test_bbox_and_centroid(self):
        t = Trajectory(np.array([[0.0, 0.0], [2.0, 4.0]]))
        assert t.bbox() == (0.0, 0.0, 2.0, 4.0)
        np.testing.assert_allclose(t.centroid(), [1.0, 2.0])

    def test_length_along(self):
        t = Trajectory(np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 4.0]]))
        assert t.length_along() == pytest.approx(5.0)
        assert Trajectory(np.zeros((1, 2))).length_along() == 0.0

    def test_iteration(self, rng):
        t = Trajectory(rng.normal(size=(3, 2)))
        assert len(list(t)) == 3


class TestDataset:
    def make(self, rng, n=10):
        return TrajectoryDataset(
            [Trajectory(rng.normal(size=(5, 2))) for _ in range(n)], name="x"
        )

    def test_auto_ids(self, rng):
        ds = self.make(rng)
        assert [t.traj_id for t in ds] == list(range(10))

    def test_indexing_variants(self, rng):
        ds = self.make(rng)
        assert isinstance(ds[0], Trajectory)
        assert len(ds[2:5]) == 3
        assert len(ds[[0, 3, 7]]) == 3
        assert len(ds[np.array([1, 2])]) == 2

    def test_lengths(self, rng):
        ds = self.make(rng)
        np.testing.assert_array_equal(ds.lengths(), np.full(10, 5))

    def test_split_sizes_and_disjoint(self, rng):
        ds = self.make(rng, n=20)
        train, test = ds.split(0.25, rng=rng)
        assert len(train) == 5
        assert len(test) == 15
        train_ids = {t.traj_id for t in train}
        test_ids = {t.traj_id for t in test}
        assert not train_ids & test_ids

    def test_split_validation(self, rng):
        ds = self.make(rng)
        with pytest.raises(ValueError):
            ds.split(0.0)
        with pytest.raises(ValueError):
            ds.split(1.0)

    def test_split_deterministic_without_rng(self, rng):
        ds = self.make(rng)
        train, _ = ds.split(0.5)
        assert [t.traj_id for t in train] == list(range(5))


class TestSynthetic:
    @pytest.mark.parametrize("maker,bbox", [(make_geolife_like, GEOLIFE_BBOX), (make_porto_like, PORTO_BBOX)])
    def test_within_bbox_roughly(self, maker, bbox, rng):
        ds = maker(30, rng=rng)
        assert len(ds) == 30
        x0, y0, x1, y1 = bbox
        margin = 0.01
        for t in ds:
            assert t.points[:, 0].min() >= x0 - margin
            assert t.points[:, 0].max() <= x1 + margin

    def test_lengths_in_range(self, rng):
        ds = make_geolife_like(25, rng=rng, min_len=15, max_len=20)
        lengths = ds.lengths()
        assert lengths.min() >= 15
        assert lengths.max() <= 20

    def test_deterministic_given_seed(self):
        a = make_porto_like(5, rng=np.random.default_rng(3))
        b = make_porto_like(5, rng=np.random.default_rng(3))
        for ta, tb in zip(a, b):
            np.testing.assert_allclose(ta.points, tb.points)

    def test_timestamps_monotone(self, rng):
        ds = make_geolife_like(5, rng=rng)
        for t in ds:
            assert np.all(np.diff(t.timestamps) > 0)

    def test_make_dataset_front_door(self):
        assert make_dataset("geolife", 5, seed=1).meta["kind"] == "geolife"
        assert make_dataset("porto", 5, seed=1).meta["kind"] == "porto"
        with pytest.raises(KeyError):
            make_dataset("tokyo", 5)

    def test_make_dataset_seed_determinism(self):
        a = make_dataset("porto", 4, seed=9)
        b = make_dataset("porto", 4, seed=9)
        np.testing.assert_allclose(a[0].points, b[0].points)


class TestPreprocess:
    def test_filter_min_length(self, rng):
        trajs = [Trajectory(rng.normal(size=(n, 2))) for n in (3, 10, 20)]
        ds = TrajectoryDataset(trajs)
        out = filter_min_length(ds, 10)
        assert len(out) == 2
        assert out.meta["min_points"] == 10

    def test_filter_center_keeps_central(self, rng):
        pts = [Trajectory(np.full((3, 2), v, dtype=float)) for v in np.linspace(0, 10, 11)]
        ds = TrajectoryDataset(pts)
        out = filter_center(ds, keep_fraction=0.5)
        centroids = np.array([t.centroid()[0] for t in out])
        assert centroids.min() >= 2.0
        assert centroids.max() <= 8.0

    def test_filter_center_validation(self, rng):
        ds = TrajectoryDataset([Trajectory(rng.normal(size=(3, 2)))])
        with pytest.raises(ValueError):
            filter_center(ds, keep_fraction=0.0)
        with pytest.raises(ValueError):
            filter_center(ds, keep_fraction=1.5)

    def test_normalize_stats(self, rng):
        ds = TrajectoryDataset([Trajectory(rng.normal(10, 3, size=(50, 2))) for _ in range(5)])
        out, stats = normalize(ds)
        all_points = np.concatenate([t.points for t in out])
        np.testing.assert_allclose(all_points.mean(axis=0), [0, 0], atol=1e-10)
        np.testing.assert_allclose(all_points.std(axis=0), [1, 1], atol=1e-10)

    def test_normalize_roundtrip(self, rng):
        pts = rng.normal(5, 2, size=(10, 2))
        stats = NormStats(mean=(5.0, 5.0), std=(2.0, 2.0))
        np.testing.assert_allclose(stats.inverse(stats.transform(pts)), pts)

    def test_normalize_with_existing_stats(self, rng):
        ds = TrajectoryDataset([Trajectory(rng.normal(size=(5, 2)))])
        stats = NormStats(mean=(1.0, 1.0), std=(2.0, 2.0))
        out, returned = normalize(ds, stats=stats)
        assert returned is stats
        np.testing.assert_allclose(
            out[0].points, (ds[0].points - 1.0) / 2.0
        )

    def test_prepare_pipeline(self, small_corpus):
        # small_corpus fixture already ran prepare(); re-running must work.
        assert len(small_corpus) > 10
        assert small_corpus.meta.get("normalized")

    def test_prepare_empty_raises(self, rng):
        ds = TrajectoryDataset([Trajectory(rng.normal(size=(2, 2)))])
        with pytest.raises(ValueError):
            prepare(ds, min_points=10)


class TestGridMapper:
    def test_cell_ids_in_range(self, rng):
        gm = GridMapper((0, 0, 1, 1), n_cells=8)
        pts = rng.random((100, 2))
        ids = gm.cell_ids(pts)
        assert ids.min() >= 0
        assert ids.max() < 64

    def test_out_of_bbox_clamped(self):
        gm = GridMapper((0, 0, 1, 1), n_cells=4)
        ids = gm.cell_ids(np.array([[-5.0, -5.0], [5.0, 5.0]]))
        assert ids[0] == 0
        assert ids[1] == 15

    def test_center_roundtrip(self):
        gm = GridMapper((0, 0, 1, 1), n_cells=5)
        for cell in (0, 7, 24):
            assert gm.cell_ids(gm.cell_center(cell)[None, :])[0] == cell

    def test_center_range_check(self):
        gm = GridMapper((0, 0, 1, 1), n_cells=2)
        with pytest.raises(ValueError):
            gm.cell_center(4)

    def test_neighbors_interior_and_corner(self):
        gm = GridMapper((0, 0, 1, 1), n_cells=4)
        interior = gm.neighbors(5)  # (1,1)
        assert len(interior) == 9
        corner = gm.neighbors(0)
        assert len(corner) == 4

    def test_fit_covers_points(self, rng):
        pts = rng.normal(size=(50, 2)) * 10
        gm = GridMapper.fit(pts, n_cells=6)
        ids = gm.cell_ids(pts)
        assert ids.min() >= 0 and ids.max() < 36

    def test_validation(self):
        with pytest.raises(ValueError):
            GridMapper((1, 0, 0, 1), n_cells=4)
        with pytest.raises(ValueError):
            GridMapper((0, 0, 1, 1), n_cells=0)


class TestBatching:
    def test_pad_batch_shapes(self, rng):
        trajs = [rng.normal(size=(n, 2)) for n in (3, 7, 5)]
        padded, lengths, mask = pad_batch(trajs)
        assert padded.shape == (3, 7, 2)
        np.testing.assert_array_equal(lengths, [3, 7, 5])
        assert mask.sum() == 15
        np.testing.assert_allclose(padded[0, 3:], 0.0)

    def test_pad_batch_accepts_trajectory_objects(self, rng):
        trajs = [Trajectory(rng.normal(size=(4, 2)))]
        padded, lengths, mask = pad_batch(trajs)
        assert padded.shape == (1, 4, 2)

    def test_pad_batch_validation(self, rng):
        with pytest.raises(ValueError):
            pad_batch([])
        with pytest.raises(ValueError):
            pad_batch([rng.normal(size=(4, 3))])

    def test_pair_batch_common_length(self, rng):
        a = [rng.normal(size=(3, 2)), rng.normal(size=(5, 2))]
        b = [rng.normal(size=(9, 2)), rng.normal(size=(2, 2))]
        pa, la, ma, pb, lb, mb = pair_batch(a, b)
        assert pa.shape == pb.shape == (2, 9, 2)
        np.testing.assert_array_equal(la, [3, 5])
        np.testing.assert_array_equal(lb, [9, 2])

    def test_pair_batch_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            pair_batch([rng.normal(size=(3, 2))], [])
