"""Tests for the training objectives."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import pair_loss, qerror_loss, weighted_mse_loss


class TestWeightedMSE:
    def test_hand_computed(self):
        pred = Tensor(np.array([0.5, 0.8]))
        true = np.array([0.4, 1.0])
        w = np.array([2.0, 1.0])
        # mean(2*(0.1)^2, 1*(0.2)^2) = (0.02 + 0.04)/2
        assert weighted_mse_loss(pred, true, w).item() == pytest.approx(0.03)

    def test_zero_when_exact(self):
        pred = Tensor(np.array([0.3, 0.7]))
        assert weighted_mse_loss(pred, pred.data.copy(), np.ones(2)).item() == 0.0

    def test_gradient_direction(self):
        pred = Tensor(np.array([0.9]), requires_grad=True)
        loss = weighted_mse_loss(pred, np.array([0.1]), np.ones(1))
        loss.backward()
        assert pred.grad[0] > 0  # prediction too high -> positive gradient

    def test_weight_scales_gradient(self):
        grads = []
        for w in (1.0, 5.0):
            pred = Tensor(np.array([0.9]), requires_grad=True)
            weighted_mse_loss(pred, np.array([0.1]), np.array([w])).backward()
            grads.append(pred.grad[0])
        assert grads[1] == pytest.approx(5 * grads[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            weighted_mse_loss(Tensor(np.ones(3)), np.ones(2), np.ones(3))


class TestQError:
    def test_perfect_prediction_is_one(self):
        pred = Tensor(np.array([0.5]))
        assert qerror_loss(pred, np.array([0.5]), np.ones(1)).item() == pytest.approx(1.0)

    def test_symmetric_in_ratio(self):
        over = qerror_loss(Tensor(np.array([0.8])), np.array([0.4]), np.ones(1)).item()
        under = qerror_loss(Tensor(np.array([0.4])), np.array([0.8]), np.ones(1)).item()
        assert over == pytest.approx(under)
        assert over == pytest.approx(2.0)

    def test_floor_prevents_explosion(self):
        loss = qerror_loss(
            Tensor(np.array([1e-12])), np.array([0.5]), np.ones(1), floor=1e-4
        ).item()
        assert loss <= 0.5 / 1e-4 + 1e-6

    def test_gradient_flows(self):
        pred = Tensor(np.array([0.3]), requires_grad=True)
        qerror_loss(pred, np.array([0.6]), np.ones(1)).backward()
        assert pred.grad is not None
        assert pred.grad[0] != 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            qerror_loss(Tensor(np.ones(2)), np.ones(3), np.ones(2))


class TestPairLossDispatch:
    def test_mse_dispatch(self):
        pred = Tensor(np.array([0.5]))
        assert pair_loss("mse", pred, np.array([0.5]), np.ones(1)).item() == 0.0

    def test_qerror_dispatch(self):
        pred = Tensor(np.array([0.5]))
        assert pair_loss("qerror", pred, np.array([0.5]), np.ones(1)).item() == pytest.approx(1.0)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            pair_loss("hinge", Tensor(np.ones(1)), np.ones(1), np.ones(1))
