"""Tests for lower-bound pruned exact DTW search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import dtw
from repro.metrics.pruning import lb_kim, lb_pointwise, pruned_dtw_topk


def random_pair(rng, max_len=12):
    a = rng.normal(size=(int(rng.integers(2, max_len)), 2))
    b = rng.normal(size=(int(rng.integers(2, max_len)), 2))
    return a, b


class TestLowerBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_lb_kim_admissible(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert lb_kim(a, b) <= dtw(a, b) + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_lb_pointwise_admissible(self, seed):
        a, b = random_pair(np.random.default_rng(seed))
        assert lb_pointwise(a, b) <= dtw(a, b) + 1e-9

    def test_lb_pointwise_tight_for_identical(self, rng):
        a = rng.normal(size=(6, 2))
        assert lb_pointwise(a, a) == pytest.approx(0.0)
        assert dtw(a, a) == pytest.approx(0.0)

    def test_single_point_pair(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert lb_kim(a, b) == pytest.approx(5.0)
        assert dtw(a, b) == pytest.approx(5.0)


class TestPrunedSearch:
    def make_db(self, rng, n=30):
        return [rng.normal(size=(int(rng.integers(4, 14)), 2)) for _ in range(n)]

    def brute_topk(self, query, db, k):
        dists = [dtw(query, t) for t in db]
        return sorted(range(len(db)), key=lambda i: dists[i])[:k]

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_brute_force(self, k, rng):
        db = self.make_db(rng)
        query = rng.normal(size=(8, 2))
        pruned, stats = pruned_dtw_topk(query, db, k)
        brute = self.brute_topk(query, db, k)
        # Compare by distance values (ties may reorder indices).
        got = sorted(dtw(query, db[i]) for i in pruned)
        want = sorted(dtw(query, db[i]) for i in brute)
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_pruning_happens_with_clusters(self, rng):
        """A query near one cluster must prune most of a far cluster."""
        near = [rng.normal(size=(8, 2)) * 0.2 for _ in range(15)]
        far = [rng.normal(size=(8, 2)) * 0.2 + 50.0 for _ in range(15)]
        query = rng.normal(size=(8, 2)) * 0.2
        _, stats = pruned_dtw_topk(query, near + far, k=5)
        assert stats.prune_rate > 0.3
        assert stats.pruned_by_kim + stats.pruned_by_pointwise > 0

    def test_stats_accounting(self, rng):
        db = self.make_db(rng, n=20)
        _, stats = pruned_dtw_topk(rng.normal(size=(6, 2)), db, k=3)
        assert stats.candidates == 20
        assert (
            stats.dtw_evaluations + stats.pruned_by_kim + stats.pruned_by_pointwise
            == 20
        )
        assert 0.0 <= stats.prune_rate <= 1.0

    def test_k_validation(self, rng):
        db = self.make_db(rng, n=5)
        with pytest.raises(ValueError):
            pruned_dtw_topk(db[0], db, k=0)
        with pytest.raises(ValueError):
            pruned_dtw_topk(db[0], db, k=6)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_bounds_admissible(seed):
    rng = np.random.default_rng(seed)
    a, b = random_pair(rng, max_len=8)
    exact = dtw(a, b)
    assert lb_kim(a, b) <= exact + 1e-9
    assert lb_pointwise(a, b) <= exact + 1e-9


class TestTieHandling:
    """Duplicate distances at the k-boundary must not change the answer.

    With exact duplicates in the database, several candidates share the
    k-th best distance; the pruned search may legitimately pick either of
    two tied indices, but the returned *distance multiset* must equal the
    brute-force one, and every index strictly better than the k-th
    distance must be present."""

    @staticmethod
    def brute_topk_distances(query, database, k):
        dists = np.array([dtw(query, t) for t in database])
        return dists, np.sort(dists)[:k]

    def _assert_tie_consistent(self, query, database, k):
        ids, stats = pruned_dtw_topk(query, database, k=k)
        assert len(ids) == k
        assert len(set(ids)) == k  # no index returned twice
        all_dists, expected = self.brute_topk_distances(query, database, k)
        got = np.sort(all_dists[list(ids)])
        np.testing.assert_allclose(got, expected, atol=1e-9)
        # Anything strictly inside the k-th distance must be included.
        kth = expected[-1]
        must_have = {i for i, d in enumerate(all_dists) if d < kth - 1e-9}
        assert must_have <= set(ids)
        assert stats.dtw_evaluations + stats.pruned_by_kim + stats.pruned_by_pointwise == len(database)

    def test_duplicates_straddling_the_boundary(self, rng):
        base = [rng.normal(size=(int(rng.integers(4, 9)), 2)) for _ in range(6)]
        # Three exact copies of one trajectory: its distance appears three
        # times; with k=4 the ties straddle the boundary.
        database = base + [base[2].copy(), base[2].copy()]
        query = rng.normal(size=(6, 2))
        self._assert_tie_consistent(query, database, k=4)

    def test_all_duplicates(self, rng):
        traj = rng.normal(size=(7, 2))
        database = [traj.copy() for _ in range(6)]
        query = rng.normal(size=(5, 2))
        self._assert_tie_consistent(query, database, k=3)

    def test_query_duplicated_in_database(self, rng):
        query = rng.normal(size=(6, 2))
        database = [rng.normal(size=(6, 2)) for _ in range(5)]
        database.insert(2, query.copy())
        database.insert(4, query.copy())
        ids, _ = pruned_dtw_topk(query, database, k=2)
        # Both zero-distance copies win (order between them is free).
        assert set(ids) == {2, 4}

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_randomised_with_injected_ties(self, seed, k):
        rng = np.random.default_rng(seed)
        base = [rng.normal(size=(int(rng.integers(3, 10)), 2)) for _ in range(7)]
        dup = base[int(rng.integers(0, len(base)))]
        database = base + [dup.copy(), dup.copy(), dup.copy()]
        query = rng.normal(size=(int(rng.integers(3, 10)), 2))
        self._assert_tie_consistent(query, database, k=k)
