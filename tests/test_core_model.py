"""Tests for the TMN model and the pair-model interface."""

import numpy as np
import pytest

from repro.core import TMN, TMNConfig, pair_cross_distance_matrix, pair_distance_matrix
from repro.data import pair_batch


@pytest.fixture
def cfg():
    return TMNConfig(hidden_dim=16, epochs=1, sampling_number=4, seed=0)


@pytest.fixture
def model(cfg):
    return TMN(cfg)


def toy_pair(rng, n=3, la=6, lb=4):
    a = [rng.normal(size=(la, 2)) for _ in range(n)]
    b = [rng.normal(size=(lb, 2)) for _ in range(n)]
    return a, b


class TestTMNForward:
    def test_output_shapes(self, model, rng):
        a, b = toy_pair(rng)
        pa, la, ma, pb, lb, mb = pair_batch(a, b)
        out_a, out_b = model.forward_pair(pa, la, ma, pb, lb, mb)
        assert out_a.shape == (3, 6, 16)
        assert out_b.shape == (3, 6, 16)

    def test_embed_pair_shapes(self, model, rng):
        a, b = toy_pair(rng)
        emb_a, emb_b = model.embed_pair(a, b)
        assert emb_a.shape == (3, 16)
        assert emb_b.shape == (3, 16)

    def test_symmetry_of_pair_roles(self, model, rng):
        """forward(a, b) and forward(b, a) must produce swapped outputs —
        both sides run the identical shared-weight pipeline."""
        a, b = toy_pair(rng, n=2)
        e1a, e1b = model.embed_pair(a, b)
        e2b, e2a = model.embed_pair(b, a)
        np.testing.assert_allclose(e1a.data, e2a.data, atol=1e-12)
        np.testing.assert_allclose(e1b.data, e2b.data, atol=1e-12)

    def test_padding_invariance(self, model, rng):
        """A pair evaluated alone must embed identically when batched with
        a longer pair (padding + masks must be inert)."""
        a = [rng.normal(size=(4, 2))]
        b = [rng.normal(size=(5, 2))]
        e_alone_a, e_alone_b = model.embed_pair(a, b)
        long_a = a + [rng.normal(size=(12, 2))]
        long_b = b + [rng.normal(size=(12, 2))]
        e_batch_a, e_batch_b = model.embed_pair(long_a, long_b)
        np.testing.assert_allclose(e_batch_a.data[0], e_alone_a.data[0], atol=1e-10)
        np.testing.assert_allclose(e_batch_b.data[0], e_alone_b.data[0], atol=1e-10)

    def test_match_patterns_exposed(self, model, rng):
        a, b = toy_pair(rng, n=2)
        model.embed_pair(a, b)
        p_ab, p_ba = model.last_match_patterns
        assert p_ab.shape == (2, 6, 6)
        # Valid rows are distributions over valid partner points.
        np.testing.assert_allclose(p_ab[:, :6, :].sum(-1)[:, :4], np.ones((2, 4)), atol=1e-9)

    def test_matching_changes_with_partner(self, model, rng):
        """The core property TMN adds: the same trajectory embeds
        differently depending on its partner."""
        t = [rng.normal(size=(5, 2))]
        p1 = [rng.normal(size=(5, 2))]
        p2 = [rng.normal(size=(5, 2)) + 3.0]
        e1, _ = model.embed_pair(t, p1)
        e2, _ = model.embed_pair(t, p2)
        assert not np.allclose(e1.data, e2.data)

    def test_no_matching_variant_ignores_partner(self, cfg, rng):
        model = TMN(cfg.with_updates(matching=False))
        t = [rng.normal(size=(5, 2))]
        e1, _ = model.embed_pair(t, [rng.normal(size=(5, 2))])
        e2, _ = model.embed_pair(t, [rng.normal(size=(5, 2)) + 10.0])
        np.testing.assert_allclose(e1.data, e2.data, atol=1e-12)
        assert model.last_match_patterns is None

    def test_requires_pair_interaction_property(self, cfg):
        assert TMN(cfg).requires_pair_interaction
        assert not TMN(cfg.with_updates(matching=False)).requires_pair_interaction

    def test_lstm_input_dim_depends_on_matching(self, cfg):
        assert TMN(cfg).lstm.input_size == cfg.embed_dim * 2
        assert TMN(cfg.with_updates(matching=False)).lstm.input_size == cfg.embed_dim

    def test_deterministic_by_seed(self, cfg, rng):
        a, b = toy_pair(rng, n=1)
        e1, _ = TMN(cfg).embed_pair(a, b)
        e2, _ = TMN(cfg).embed_pair(a, b)
        np.testing.assert_allclose(e1.data, e2.data)

    def test_gradients_reach_all_parameters(self, model, rng):
        a, b = toy_pair(rng, n=2)
        emb_a, emb_b = model.embed_pair(a, b)
        ((emb_a - emb_b) ** 2).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"


class TestEncode:
    def test_encode_shape(self, model, rng):
        trajs = [rng.normal(size=(int(rng.integers(3, 9)), 2)) for _ in range(7)]
        emb = model.encode(trajs, batch_size=3)
        assert emb.shape == (7, 16)

    def test_encode_batch_size_invariance(self, model, rng):
        trajs = [rng.normal(size=(5, 2)) for _ in range(6)]
        np.testing.assert_allclose(
            model.encode(trajs, batch_size=2), model.encode(trajs, batch_size=6), atol=1e-10
        )


class TestPairDistanceMatrix:
    def test_symmetric_zero_diagonal(self, model, rng):
        trajs = [rng.normal(size=(5, 2)) for _ in range(6)]
        mat = pair_distance_matrix(model, trajs, batch_pairs=5)
        assert mat.shape == (6, 6)
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), np.zeros(6))

    def test_siamese_path_equals_encode(self, cfg, rng):
        model = TMN(cfg.with_updates(matching=False))
        trajs = [rng.normal(size=(5, 2)) for _ in range(5)]
        mat = pair_distance_matrix(model, trajs)
        emb = model.encode(trajs)
        from repro.eval import embedding_distance_matrix

        np.testing.assert_allclose(mat, embedding_distance_matrix(emb), atol=1e-8)

    def test_batch_pairs_invariance(self, model, rng):
        trajs = [rng.normal(size=(4, 2)) for _ in range(5)]
        a = pair_distance_matrix(model, trajs, batch_pairs=2)
        b = pair_distance_matrix(model, trajs, batch_pairs=100)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_needs_two(self, model, rng):
        with pytest.raises(ValueError):
            pair_distance_matrix(model, [rng.normal(size=(4, 2))])

    def test_cross_matrix_shape(self, model, rng):
        q = [rng.normal(size=(4, 2)) for _ in range(3)]
        b = [rng.normal(size=(6, 2)) for _ in range(4)]
        mat = pair_cross_distance_matrix(model, q, b)
        assert mat.shape == (3, 4)
        assert np.all(mat >= 0)

    def test_cross_matrix_siamese_path(self, cfg, rng):
        model = TMN(cfg.with_updates(matching=False))
        q = [rng.normal(size=(4, 2)) for _ in range(3)]
        base = [rng.normal(size=(6, 2)) for _ in range(4)]
        mat = pair_cross_distance_matrix(model, q, base)
        from repro.eval import embedding_distance_matrix

        expected = embedding_distance_matrix(model.encode(q), model.encode(base))
        np.testing.assert_allclose(mat, expected, atol=1e-8)


class TestStatePersistence:
    def test_state_dict_roundtrip_preserves_outputs(self, cfg, rng):
        m1 = TMN(cfg)
        m2 = TMN(cfg.with_updates(seed=123))
        a, b = toy_pair(rng, n=1)
        m2.load_state_dict(m1.state_dict())
        e1, _ = m1.embed_pair(a, b)
        e2, _ = m2.embed_pair(a, b)
        np.testing.assert_allclose(e1.data, e2.data)
