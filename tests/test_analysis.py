"""Tier-1 gate for the repro.analysis static-analysis pass.

The headline test keeps the source tree at zero lint violations; the rest
pin each rule's behaviour on deliberately broken scratch trees, exercise
both suppression mechanisms (inline comments and the JSON baseline), the
symbolic shape checker, and the CLI entry points' exit codes.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    check_module_wiring,
    main as analysis_main,
    rule_catalogue,
    run_analysis,
    write_baseline,
)

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parents[1]


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestRepoIsClean:
    def test_source_tree_has_zero_violations(self):
        report = run_analysis([REPO / "src"], tests_dir=REPO / "tests", root=REPO)
        assert report.ok, "\n" + report.format_text()
        assert report.files_checked > 50

    def test_rule_catalogue_complete(self):
        assert set(RULES) >= {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009", "S001",
        }
        for rule in rule_catalogue():
            assert rule.title and rule.rationale
            assert rule.scope in ("file", "project", "dataflow")


class TestRNGRule:
    def test_flags_global_and_unseeded_rng(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            def f():
                a = np.random.rand(3)
                rng = np.random.default_rng()
                return a, rng
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R001"])
        assert [(v.rule, v.path, v.line) for v in report.violations] == [
            ("R001", "mod.py", 4),
            ("R001", "mod.py", 5),
        ]

    def test_seeded_generator_is_fine(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from numpy.random import default_rng

            def f(seed):
                return default_rng(seed).normal(size=3)
            """,
        )
        assert run_analysis([tmp_path], root=tmp_path, rules=["R001"]).ok


class TestMutationRule:
    def test_flags_inplace_data_mutation(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            def step(t, g):
                t.data += g
                t.data[0] = 0.0
                t.grad.fill(0.0)
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R002"])
        assert [(v.rule, v.path, v.line) for v in report.violations] == [
            ("R002", "mod.py", 2),
            ("R002", "mod.py", 3),
            ("R002", "mod.py", 4),
        ]

    def test_rebinding_is_fine(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            def step(t, lr):
                t.data = t.data - lr * t.grad
            """,
        )
        assert run_analysis([tmp_path], root=tmp_path, rules=["R002"]).ok

    def test_inline_allow_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            def step(t, g):
                t.data -= g  # lint: allow(R002)
            """,
        )
        assert run_analysis([tmp_path], root=tmp_path, rules=["R002"]).ok

    def test_baseline_suppresses_and_round_trips(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            def step(t, g):
                t.data += g
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R002"])
        assert not report.ok
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, report.violations)
        data = json.loads(baseline.read_text())
        assert data["suppress"][0]["rule"] == "R002"
        again = run_analysis(
            [tmp_path], root=tmp_path, rules=["R002"], baseline=baseline
        )
        assert again.ok


class TestCoverageRule:
    def test_flags_uncovered_op(self, tmp_path):
        _write(
            tmp_path,
            "src/pkg/autograd/ops.py",
            """\
            __all__ = ["covered", "uncovered"]

            def covered(x):
                return x

            def uncovered(x):
                return x
            """,
        )
        _write(
            tmp_path,
            "tests/test_ops.py",
            """\
            def test_covered_gradcheck(check_gradients, covered):
                check_gradients(covered, [1.0])
            """,
        )
        report = run_analysis(
            [tmp_path / "src"],
            tests_dir=tmp_path / "tests",
            root=tmp_path,
            rules=["R003"],
        )
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.rule == "R003"
        assert violation.path == "src/pkg/autograd/ops.py"
        assert "uncovered" in violation.message

    def test_value_only_test_does_not_count(self, tmp_path):
        """Per-function granularity: referencing the op in a test that never
        gradchecks must not mark it covered, even if another test in the
        same file does run gradchecks."""
        _write(
            tmp_path,
            "src/pkg/autograd/ops.py",
            """\
            __all__ = ["op_a", "op_b"]

            def op_a(x):
                return x

            def op_b(x):
                return x
            """,
        )
        _write(
            tmp_path,
            "tests/test_ops.py",
            """\
            def test_op_a_gradcheck(check_gradients, op_a):
                check_gradients(op_a, [1.0])

            def test_op_b_value(op_b):
                assert op_b(1.0) == 1.0
            """,
        )
        report = run_analysis(
            [tmp_path / "src"],
            tests_dir=tmp_path / "tests",
            root=tmp_path,
            rules=["R003"],
        )
        assert [v.rule for v in report.violations] == ["R003"]
        assert "op_b" in report.violations[0].message


class TestDtypeRule:
    def test_flags_narrow_dtypes(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            def f(x):
                a = np.zeros(3, dtype=np.float32)
                b = x.astype("float16")
                return a, b
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R004"])
        assert [(v.rule, v.line) for v in report.violations] == [
            ("R004", 4),
            ("R004", 5),
        ]


class TestApiRules:
    def test_flags_missing_and_phantom_all(self, tmp_path):
        _write(
            tmp_path,
            "no_all.py",
            """\
            def public():
                '''Doc.'''
            """,
        )
        _write(
            tmp_path,
            "phantom.py",
            """\
            __all__ = ["ghost"]
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R005"])
        found = {(v.path, v.line) for v in report.violations}
        assert ("no_all.py", 1) in found
        assert ("phantom.py", 1) in found

    def test_flags_missing_docstring(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            __all__ = ["Thing"]

            class Thing:
                '''Documented class.'''

                def undocumented(self):
                    return 1
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R006"])
        assert [(v.rule, v.line) for v in report.violations] == [("R006", 6)]
        assert "undocumented" in report.violations[0].message

    def test_flags_bare_print_in_library_code(self, tmp_path):
        _write(
            tmp_path,
            "trainer.py",
            """\
            def fit():
                print("epoch done")
                return 1
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R007"])
        assert [(v.rule, v.line) for v in report.violations] == [("R007", 2)]
        assert "print" in report.violations[0].message

    def test_front_ends_may_print(self, tmp_path):
        body = """\
            def main():
                print("result table")
            """
        _write(tmp_path, "cli.py", body)
        _write(tmp_path, "__main__.py", body)
        _write(tmp_path, "analysis/report.py", body)
        assert run_analysis([tmp_path], root=tmp_path, rules=["R007"]).ok

    def test_obs_logger_calls_are_fine(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from repro.obs import get_logger

            _log = get_logger(__name__)

            def fit():
                _log.info("epoch", loss=0.5)
            """,
        )
        assert run_analysis([tmp_path], root=tmp_path, rules=["R007"]).ok


class TestShapeChecker:
    def test_real_model_is_clean(self):
        tree = ast.parse((REPO / "src/repro/core/model.py").read_text())
        classes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
        assert classes, "model.py lost its classes?"
        for node in classes:
            assert list(check_module_wiring(node, "src/repro/core/model.py")) == []

    def test_flags_miswired_model(self):
        source = textwrap.dedent(
            """\
            import numpy as np
            from repro.nn import LSTM, MLP, LeakyReLU, Linear, Module, cross_match
            from repro.autograd import Tensor, concat

            class Bad(Module):
                def __init__(self, config=None):
                    super().__init__()
                    self.config = config
                    d = self.config.hidden_dim
                    d_hat = self.config.embed_dim
                    self.point_embed = Linear(2, d_hat)
                    self.act = LeakyReLU(0.1)
                    self.lstm = LSTM(d_hat, d)  # BUG: 2*d_hat when matching
                    self.mlp = MLP([d + 1, d, d])  # BUG: off-by-one head

                def forward_pair(self, pa, ma, pb, mb):
                    x_a = self.act(self.point_embed(Tensor(pa)))
                    x_b = self.act(self.point_embed(Tensor(pb)))
                    if self.config.matching:
                        m_ab, _ = cross_match(x_a, x_b, mask_a=ma, mask_b=mb)
                        in_a = concat([x_a, m_ab], axis=-1)
                    else:
                        in_a = x_a
                    z_a, _ = self.lstm(in_a, mask=ma)
                    return self.mlp(z_a)
            """
        )
        tree = ast.parse(source)
        cls = next(n for n in tree.body if isinstance(n, ast.ClassDef))
        violations = list(check_module_wiring(cls, "bad.py"))
        assert violations
        assert all(v.rule == "S001" for v in violations)
        # Both the matching-branch LSTM mismatch and the MLP head mismatch
        # must surface.
        text = " ".join(v.message for v in violations)
        assert "lstm" in text.lower() or "LSTM" in text
        assert "mlp" in text.lower() or "MLP" in text


class TestEntryPoints:
    def test_module_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        clean = tmp_path / "clean"
        _write(bad, "mod.py", "def f(t):\n    t.data += 1\n")
        _write(clean, "mod.py", "def f(t):\n    '''Doc.'''\n    return t\n")
        assert analysis_main([str(bad), "--rules", "R002"]) == 1
        assert analysis_main([str(clean), "--rules", "R002"]) == 0
        capsys.readouterr()

    def test_module_main_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad"
        _write(bad, "mod.py", "def f(t):\n    t.data += 1\n")
        assert analysis_main([str(bad), "--rules", "R002", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["violations"][0]["rule"] == "R002"
        assert data["violations"][0]["line"] == 2

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006", "R007", "S001"):
            assert rule_id in out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        """A typo'd target must not silently pass the gate."""
        assert analysis_main([str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err
        with pytest.raises(FileNotFoundError):
            run_analysis([tmp_path / "nope"], root=tmp_path)

    def test_unknown_rule_id_is_an_error(self, tmp_path, capsys):
        _write(tmp_path, "mod.py", "X = 1\n")
        assert analysis_main([str(tmp_path), "--rules", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unparseable_file_is_reported_not_crashed(self, tmp_path):
        _write(tmp_path, "syntax.py", "def broken(:\n")
        report = run_analysis([tmp_path], root=tmp_path, rules=["R001"])
        assert not report.ok
        assert report.violations[0].rule == "P000"
        assert report.violations[0].path == "syntax.py"

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad"
        clean = tmp_path / "clean"
        _write(bad, "mod.py", "import numpy as np\nx = np.random.rand(3)\n")
        _write(clean, "mod.py", "X = 1\n")
        assert cli_main(["lint", str(bad), "--rules", "R001"]) == 1
        assert cli_main(["lint", str(clean), "--rules", "R001"]) == 0
        capsys.readouterr()


class TestProfilingSessionRule:
    """R009: profiling sessions must be stopped via `with` or `finally`."""

    def test_flags_unmatched_start(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from repro.obs import StackSampler

            def profile():
                sampler = StackSampler(hz=50)
                sampler.start()
                return sampler
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R009"])
        assert [(v.rule, v.line) for v in report.violations] == [("R009", 5)]
        assert "sampler.stop()" in report.violations[0].message

    def test_flags_bare_tracemalloc_and_chained_start(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            import tracemalloc
            from repro.obs import StackSampler

            def leak():
                tracemalloc.start()
                StackSampler(hz=5).start()
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R009"])
        assert [(v.rule, v.line) for v in report.violations] == [
            ("R009", 5),
            ("R009", 6),
        ]
        assert "tracemalloc" in report.violations[0].message
        assert "chained" in report.violations[1].message

    def test_flags_enable_without_disable(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from repro.obs import MemoryTracker

            def leak():
                tracker = MemoryTracker()
                tracker.enable()
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R009"])
        assert len(report.violations) == 1
        assert "tracker.disable()" in report.violations[0].message

    def test_try_finally_and_with_are_fine(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            import tracemalloc
            from repro.obs import MemoryTracker, StackSampler

            def guarded():
                sampler = StackSampler(hz=50)
                tracker = MemoryTracker()
                try:
                    sampler.start()
                    tracker.enable()
                    tracemalloc.start()
                finally:
                    sampler.stop()
                    tracker.disable()
                    tracemalloc.stop()

            def managed():
                with StackSampler(hz=50) as sampler:
                    with MemoryTracker():
                        return sampler.samples
            """,
        )
        assert run_analysis([tmp_path], root=tmp_path, rules=["R009"]).ok

    def test_conditional_constructor_is_tracked(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from repro.obs import OpProfiler

            def maybe(flag):
                profiler = OpProfiler() if flag else None
                profiler.enable()
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R009"])
        assert len(report.violations) == 1

    def test_inline_allow_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            from repro.obs import StackSampler

            def owner():
                sampler = StackSampler(hz=50)
                sampler.start()  # lint: allow(R009)
                return sampler
            """,
        )
        report = run_analysis([tmp_path], root=tmp_path, rules=["R009"])
        assert report.ok
        assert report.suppressed_count == 1
