"""Tests for the ASCII figure renderers."""

import pytest

from repro.experiments.plots import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_contains_title_and_legend(self):
        out = ascii_line_chart("Fig", [1, 2, 3], {"HR-10": [0.1, 0.5, 0.9]})
        assert out.startswith("Fig")
        assert "HR-10" in out

    def test_extremes_annotated(self):
        out = ascii_line_chart("t", [1, 2], {"a": [0.25, 0.75]})
        assert "0.7500" in out
        assert "0.2500" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_line_chart("t", [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o = a" in out
        assert "x = b" in out

    def test_constant_series_no_crash(self):
        out = ascii_line_chart("t", [1, 2], {"a": [0.5, 0.5]})
        assert "0.5000" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart("t", [1, 2], {})
        with pytest.raises(ValueError):
            ascii_line_chart("t", [1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_line_chart("t", [1], {"a": [1.0]})


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = ascii_bar_chart("t", ["small", "large"], [0.1, 1.0])
        lines = out.splitlines()
        assert lines[2].count("█") > lines[1].count("█")

    def test_values_printed(self):
        out = ascii_bar_chart("t", ["a"], [0.4321])
        assert "0.4321" in out

    def test_zero_value(self):
        out = ascii_bar_chart("t", ["z"], [0.0])
        assert "0.0000" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart("t", ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart("t", [], [])
