"""Validation of the fused LSTM step against the composed reference."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import LSTM, LSTMCell, gather_last
from repro.nn.fused import fused_lstm_step


@pytest.fixture
def cell(rng):
    return LSTMCell(3, 4, rng=rng)


def make_state(rng, batch=2, hidden=4):
    return (
        Tensor(rng.normal(size=(batch, 3))),
        Tensor(rng.normal(size=(batch, hidden))),
        Tensor(rng.normal(size=(batch, hidden))),
    )


class TestFusedMatchesComposed:
    def test_forward_values(self, cell, rng):
        x, h, c = make_state(rng)
        h_fused, c_fused = cell(x, (h, c))
        h_ref, c_ref = cell.forward_composed(x, (h, c))
        np.testing.assert_allclose(h_fused.data, h_ref.data, atol=1e-12)
        np.testing.assert_allclose(c_fused.data, c_ref.data, atol=1e-12)

    def test_gradients_match_composed(self, cell, rng):
        x_raw = rng.normal(size=(2, 3))
        h_raw = rng.normal(size=(2, 4))
        c_raw = rng.normal(size=(2, 4))
        # Deterministic downstream weighting mixing both outputs.
        w_h = rng.normal(size=(2, 4))
        w_c = rng.normal(size=(2, 4))

        def run(step_fn):
            cell.zero_grad()
            x = Tensor(x_raw, requires_grad=True)
            h = Tensor(h_raw, requires_grad=True)
            c = Tensor(c_raw, requires_grad=True)
            h2, c2 = step_fn(x, (h, c))
            loss = (h2 * Tensor(w_h)).sum() + (c2 * Tensor(w_c) * h2).sum()
            loss.backward()
            return (
                x.grad.copy(),
                h.grad.copy(),
                c.grad.copy(),
                cell.weight_ih.grad.copy(),
                cell.weight_hh.grad.copy(),
                cell.bias.grad.copy(),
            )

        fused = run(cell)
        composed = run(cell.forward_composed)
        for a, b in zip(fused, composed):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_gradcheck_all_inputs(self, rng):
        x = rng.normal(size=(2, 3))
        h = rng.normal(size=(2, 4))
        c = rng.normal(size=(2, 4))
        w_ih = rng.normal(size=(3, 16)) * 0.3
        w_hh = rng.normal(size=(4, 16)) * 0.3
        b = rng.normal(size=16) * 0.1

        def fn(xt, ht, ct, wi, wh, bt):
            h2, c2 = fused_lstm_step(xt, ht, ct, wi, wh, bt)
            return h2 * h2 + c2
        check_gradients(fn, [x, h, c, w_ih, w_hh, b], atol=1e-4)

    def test_full_lstm_uses_fused_and_trains(self, rng):
        lstm = LSTM(2, 4, rng=rng)
        x = Tensor(rng.normal(size=(3, 5, 2)))
        mask = np.ones((3, 5), bool)
        out, _ = lstm(x, mask=mask)
        gather_last(out, np.array([5, 5, 5])).sum().backward()
        for name, p in lstm.named_parameters():
            assert p.grad is not None, name
