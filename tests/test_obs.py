"""Tests for repro.obs: metrics registry, spans, op profiler, run records
and the observability-facing CLI surface (train --log-json / report)."""

import json

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concat, softmax
from repro.autograd import tensor as tensor_mod
from repro.cli import main
from repro.nn.fused import fused_lstm_step
from repro.obs import (
    MetricsRegistry,
    OpProfiler,
    RunWriter,
    SpanRecorder,
    diff_totals,
    format_op_table,
    format_run,
    format_spans,
    read_run,
)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("load")
        assert g.value is None
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["min"] == 1.0 and d["max"] == 4.0
        assert d["mean"] == 2.5
        assert h.percentile(50) == 2.5

    def test_snapshot_and_reset_keep_references_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(7)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(2.0)
        snap = reg.snapshot()
        assert snap["a"] == {"type": "counter", "value": 7.0}
        assert snap["b"]["value"] == 1.0
        assert snap["c"]["count"] == 1
        reg.reset()
        assert c.value == 0.0  # same object, cleared in place
        c.inc()
        assert reg.snapshot()["a"]["value"] == 1.0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_paths_and_parent_covers_children(self):
        rec = SpanRecorder()
        for _ in range(3):
            with rec.span("epoch"):
                with rec.span("batch"):
                    with rec.span("forward"):
                        pass
                    with rec.span("backward"):
                        pass
        totals = rec.totals()
        assert set(totals) == {
            "epoch",
            "epoch/batch",
            "epoch/batch/forward",
            "epoch/batch/backward",
        }
        assert totals["epoch"]["count"] == 3
        child_sum = (
            totals["epoch/batch/forward"]["seconds"]
            + totals["epoch/batch/backward"]["seconds"]
        )
        assert totals["epoch/batch"]["seconds"] >= child_sum
        assert totals["epoch"]["seconds"] >= totals["epoch/batch"]["seconds"]

    def test_diff_totals_gives_interval_breakdown(self):
        rec = SpanRecorder()
        with rec.span("a"):
            pass
        before = rec.totals()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        delta = diff_totals(rec.totals(), before)
        assert delta["a"]["count"] == 1
        assert delta["b"]["count"] == 1

    def test_timed_decorator_and_reset(self):
        rec = SpanRecorder()

        @rec.timed("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert rec.totals()["work"]["count"] == 1
        rec.reset()
        assert rec.totals() == {}

    def test_slash_in_name_rejected_and_format(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            rec.span("a/b")
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        text = format_spans(rec.totals())
        assert "outer" in text and "inner" in text


# ----------------------------------------------------------------------
# Op profiler
# ----------------------------------------------------------------------
class TestOpProfiler:
    def test_counts_methods_and_free_functions(self):
        with OpProfiler() as prof:
            a = Tensor(np.ones((3, 4)), requires_grad=True)
            b = Tensor(np.ones((4, 2)), requires_grad=True)
            out = softmax(a @ b, axis=-1)
            cat = concat([out, out], axis=-1)
            cat.sum().backward()
        snap = prof.snapshot()
        assert snap["__matmul__"]["calls"] == 1
        assert snap["softmax"]["calls"] == 1
        assert snap["concat"]["calls"] == 1
        assert snap["sum"]["calls"] >= 1
        # Backward closures ran and were timed.
        assert snap["__matmul__"]["backward_calls"] == 1
        assert snap["__matmul__"]["backward_s"] >= 0.0
        table = format_op_table(snap)
        assert "__matmul__" in table and "forward_s" in table

    def test_disable_restores_pristine_class(self):
        before = {"__add__": Tensor.__add__, "sum": Tensor.sum}
        prof = OpProfiler()
        prof.enable()
        assert Tensor.__add__ is not before["__add__"]
        prof.disable()
        assert Tensor.__add__ is before["__add__"]
        assert Tensor.sum is before["sum"]
        assert tensor_mod._PROFILER is None

    def test_two_live_profilers_rejected(self):
        with OpProfiler():
            with pytest.raises(RuntimeError):
                OpProfiler().enable()

    def test_gradcheck_results_unchanged_under_profiler(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 3))

        def fn(a, b):
            return softmax(a * b, axis=-1).sum() + (a @ b.T).mean()

        def grads():
            a = Tensor(x, requires_grad=True)
            b = Tensor(y, requires_grad=True)
            fn(a, b).backward()
            return a.grad.copy(), b.grad.copy()

        ga_plain, gb_plain = grads()
        with OpProfiler():
            assert check_gradients(fn, [x, y])
            ga_prof, gb_prof = grads()
        np.testing.assert_array_equal(ga_plain, ga_prof)
        np.testing.assert_array_equal(gb_plain, gb_prof)

    def test_profiles_fused_lstm_step(self):
        rng = np.random.default_rng(1)
        hidden = 4
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(np.zeros((2, hidden)))
        c = Tensor(np.zeros((2, hidden)))
        w_ih = Tensor(rng.normal(size=(3, 4 * hidden)), requires_grad=True)
        w_hh = Tensor(rng.normal(size=(hidden, 4 * hidden)), requires_grad=True)
        bias = Tensor(np.zeros(4 * hidden), requires_grad=True)
        with OpProfiler() as prof:
            h2, c2 = fused_lstm_step(x, h, c, w_ih, w_hh, bias)
            (h2.sum() + c2.sum()).backward()
        snap = prof.snapshot()
        assert snap["fused_lstm_step"]["calls"] == 1
        assert snap["fused_lstm_step"]["backward_calls"] == 2  # h and c closures


# ----------------------------------------------------------------------
# Run records
# ----------------------------------------------------------------------
class TestRunRecords:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunWriter(
            path, name="demo", config={"hidden_dim": 8}, seed=3, metric="dtw"
        ) as writer:
            writer.write_epoch(
                {
                    "epoch": 1,
                    "loss": 0.5,
                    "grad_norm": 2.0,
                    "seconds": 0.1,
                    "lr": 0.005,
                    "spans": {"epoch": {"seconds": 0.1, "count": 1}},
                }
            )
            writer.write_epoch({"epoch": 2, "loss": 0.25, "grad_norm": 1.0, "seconds": 0.1})
            writer.finish(final_loss=0.25, eval_scores={"HR-5": 0.8})

        record = read_run(path)
        assert record.name == "demo"
        assert record.seed == 3
        assert record.metric == "dtw"
        assert record.config == {"hidden_dim": 8}
        assert [e["loss"] for e in record.epochs] == [0.5, 0.25]
        assert record.epochs[0]["spans"]["epoch"]["count"] == 1
        assert record.final_loss == 0.25
        assert record.final["eval"] == {"HR-5": 0.8}
        # Every line is valid JSON (the "machine-readable" contract).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_reader_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "epoch", "epoch": 1}\n')
        with pytest.raises(ValueError):
            read_run(path)
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_run(path)

    def test_format_run_renders_fields(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = RunWriter(path, name="demo", config={"epochs": 2}, seed=0, metric="dtw")
        writer.write_epoch({"epoch": 1, "loss": 0.5, "grad_norm": 2.0, "seconds": 0.1})
        writer.finish(final_loss=0.5)
        text = format_run(read_run(path))
        assert "run: demo" in text
        assert "epochs = 2" in text
        assert "grad_norm" in text


# ----------------------------------------------------------------------
# Trainer wiring + CLI surface
# ----------------------------------------------------------------------
class TestCliReport:
    def test_train_log_json_profile_then_report(self, tmp_path, capsys):
        run_path = tmp_path / "demo.jsonl"
        ckpt = tmp_path / "model"
        code = main(
            [
                "train",
                "--kind",
                "porto",
                "--metric",
                "hausdorff",
                "--model",
                "SRN",
                "--fast",
                "--epochs",
                "1",
                "--profile",
                "--log-json",
                str(run_path),
                "--out",
                str(ckpt),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final loss" in out
        assert "forward_s" in out  # the op table was printed

        record = read_run(run_path)
        assert record.seed == 0
        assert record.config["epochs"] == 1
        assert len(record.epochs) == 1
        epoch = record.epochs[0]
        for key in ("loss", "grad_norm", "seconds", "spans"):
            assert key in epoch
        assert "epoch/batch/forward" in epoch["spans"]
        assert record.final["op_profile"]  # profiler snapshot persisted

        assert main(["report", str(run_path)]) == 0
        report_out = capsys.readouterr().out
        assert "grad_norm" in report_out
        assert "op profile:" in report_out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
