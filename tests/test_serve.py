"""Unit tests for `repro.serve`: cache, micro-batcher, query engine.

Fault paths live in ``test_serve_faults.py``; this file covers the sunny
day contracts — content-hash keys, LRU eviction, request coalescing,
top-k correctness against brute force in embedding space, and the
serving counters.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import (
    EmbeddingCache,
    MicroBatcher,
    SimilarityServer,
    run_serve_bench,
    trajectory_key,
)

DIM = 3


def _embed(trajs):
    """Deterministic toy encoder: 3 arithmetic features per trajectory."""
    out = np.zeros((len(trajs), DIM))
    for i, t in enumerate(trajs):
        p = np.asarray(t, dtype=np.float64)
        out[i] = [p[:, 0].mean(), p[:, 1].mean(), float(len(p))]
    return out


def _trajs(n, seed=0, length=5):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(length, 2)) for _ in range(n)]


# ---------------------------------------------------------------------------
# trajectory_key
# ---------------------------------------------------------------------------


class TestTrajectoryKey:
    def test_identical_content_same_key(self):
        a = np.arange(10.0).reshape(5, 2)
        assert trajectory_key(a) == trajectory_key(a.copy())

    def test_any_coordinate_change_changes_key(self):
        a = np.arange(10.0).reshape(5, 2)
        b = a.copy()
        b[3, 1] += 1e-15
        assert trajectory_key(a) != trajectory_key(b)

    def test_shape_disambiguates_same_bytes(self):
        """(4, 2) and (2, 4) views of the same buffer share bytes but not
        shape — the key must include the shape."""
        flat = np.arange(8.0)
        assert trajectory_key(flat.reshape(4, 2)) != trajectory_key(flat.reshape(2, 4))

    def test_accepts_trajectory_objects(self):
        class Wrapper:
            def __init__(self, points):
                self.points = points

        a = np.arange(6.0).reshape(3, 2)
        assert trajectory_key(Wrapper(a)) == trajectory_key(a)

    def test_non_contiguous_input(self):
        base = np.arange(20.0).reshape(5, 4)
        view = base[:, :2]  # non-contiguous view
        assert not view.flags["C_CONTIGUOUS"]
        assert trajectory_key(view) == trajectory_key(np.ascontiguousarray(view))


# ---------------------------------------------------------------------------
# EmbeddingCache
# ---------------------------------------------------------------------------


class TestEmbeddingCache:
    def test_put_get_roundtrip(self):
        cache = EmbeddingCache(capacity=4)
        emb = np.array([1.0, 2.0])
        cache.put("k", emb)
        np.testing.assert_array_equal(cache.get("k"), emb)
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = EmbeddingCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh 'a' -> 'b' is now least recent
        cache.put("c", np.full(1, 2.0))
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.put("a", np.zeros(1))  # re-put refreshes
        cache.put("c", np.full(1, 2.0))
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EmbeddingCache(capacity=0)

    def test_clear_keeps_totals(self):
        cache = EmbeddingCache(capacity=4)
        cache.put("a", np.zeros(1))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_rate(self):
        cache = EmbeddingCache(capacity=4)
        cache.put("a", np.zeros(1))
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_thread_safety_smoke(self):
        cache = EmbeddingCache(capacity=32)
        errors = []

        def worker(wid):
            try:
                for i in range(200):
                    key = f"k{(wid * 7 + i) % 48}"
                    if cache.get(key) is None:
                        cache.put(key, np.full(2, float(i)))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32


# ---------------------------------------------------------------------------
# MicroBatcher coalescing
# ---------------------------------------------------------------------------


class TestMicroBatcher:
    def test_coalesces_concurrent_requests(self):
        sizes = []

        def encode(trajs):
            sizes.append(len(trajs))
            time.sleep(0.01)  # give later submitters time to queue up
            return _embed(trajs)

        trajs = _trajs(12, seed=1)
        with MicroBatcher(encode, max_batch_size=8, max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(t) for t in trajs]
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 12
        assert max(sizes) > 1  # something actually coalesced
        assert sum(sizes) == 12

    def test_results_map_to_their_requests(self):
        trajs = _trajs(9, seed=2)
        with MicroBatcher(_embed, max_batch_size=4, max_wait_ms=5.0) as batcher:
            futures = [batcher.submit(t) for t in trajs]
            for traj, future in zip(trajs, futures):
                np.testing.assert_allclose(future.result(timeout=10), _embed([traj])[0])

    def test_max_batch_size_respected(self):
        sizes = []

        def encode(trajs):
            sizes.append(len(trajs))
            return _embed(trajs)

        with MicroBatcher(encode, max_batch_size=3, max_wait_ms=50.0) as batcher:
            futures = [batcher.submit(t) for t in _trajs(10, seed=3)]
            for f in futures:
                f.result(timeout=10)
        assert max(sizes) <= 3

    def test_single_request_flushes_by_deadline(self):
        with MicroBatcher(_embed, max_batch_size=64, max_wait_ms=10.0) as batcher:
            start = time.perf_counter()
            batcher.submit(_trajs(1)[0]).result(timeout=10)
            # idle grace flushes well before a 64-deep batch could fill.
            assert time.perf_counter() - start < 5.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(_embed, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(_embed, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(_embed, idle_grace_ms=-0.1)

    def test_custom_name_prefixes_metrics(self):
        before = get_registry().counter("custom.requests").value
        with MicroBatcher(_embed, max_batch_size=2, name="custom") as batcher:
            batcher.submit(_trajs(1)[0]).result(timeout=10)
        assert get_registry().counter("custom.requests").value == before + 1


# ---------------------------------------------------------------------------
# SimilarityServer query engine
# ---------------------------------------------------------------------------


class TestSimilarityServer:
    @pytest.fixture
    def server(self):
        with SimilarityServer(_embed, dim=DIM, max_wait_ms=1.0) as srv:
            yield srv

    def test_add_returns_sequential_ids(self, server):
        ids = server.add_batch(_trajs(5, seed=4))
        assert ids == [0, 1, 2, 3, 4]
        assert len(server) == 5

    def test_topk_matches_brute_force_in_embedding_space(self, server):
        db = _trajs(20, seed=5)
        server.add_batch(db)
        query = _trajs(1, seed=6)[0]
        result = server.topk(query, k=4)
        assert not result.degraded
        db_emb = _embed(db)
        q_emb = _embed([query])[0]
        dists = np.sqrt(((db_emb - q_emb) ** 2).sum(axis=1))
        expected = np.argsort(dists, kind="stable")[:4]
        np.testing.assert_array_equal(np.sort(result.ids), np.sort(expected))
        np.testing.assert_allclose(
            np.sort(result.distances), np.sort(dists[expected]), atol=1e-9
        )

    def test_k_clamped_to_database_size(self, server):
        server.add_batch(_trajs(3, seed=7))
        result = server.topk(_trajs(1, seed=8)[0], k=10)
        assert len(result.ids) == 3
        assert result.k == 10  # the request is echoed, the answer clamped

    def test_repeat_query_hits_cache(self, server):
        server.add_batch(_trajs(6, seed=9))
        query = _trajs(1, seed=10)[0]
        first = server.topk(query, k=2)
        second = server.topk(query, k=2)
        assert not first.cache_hit
        assert second.cache_hit
        np.testing.assert_array_equal(first.ids, second.ids)

    def test_indexed_trajectory_is_cache_hit(self, server):
        db = _trajs(4, seed=11)
        server.add_batch(db)
        result = server.topk(db[2], k=1)
        assert result.cache_hit
        assert result.ids[0] == 2
        assert result.distances[0] == pytest.approx(0.0, abs=1e-12)

    def test_topk_on_empty_database(self, server):
        result = server.topk(_trajs(1, seed=12)[0], k=3)
        assert result.ids.size == 0 and result.distances.size == 0
        assert not result.degraded

    def test_hnsw_path_beyond_brute_threshold(self):
        db = _trajs(30, seed=13)
        with SimilarityServer(_embed, dim=DIM, brute_threshold=8) as server:
            server.add_batch(db)
            result = server.topk(_trajs(1, seed=14)[0], k=2)
        assert result.source == "hnsw"
        assert not result.degraded
        assert np.all(result.ids < 30)

    def test_encode_raises_unlike_topk(self, server):
        """encode() is the raising building block (no degradation)."""
        server.batcher._encode_fn = lambda trajs: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        with pytest.raises(RuntimeError):
            server.encode(_trajs(1, seed=15)[0])

    def test_stats_snapshot(self, server):
        server.add_batch(_trajs(3, seed=16))
        server.topk(_trajs(1, seed=17)[0], k=1)
        stats = server.stats()
        assert stats["db_size"] == 3
        assert stats["cache_size"] >= 3
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_rejects_non_encoder(self):
        with pytest.raises(TypeError):
            SimilarityServer(42, dim=DIM)

    def test_model_encode_attribute_is_preferred(self):
        """Objects exposing .encode are used via that method even if callable."""

        class Model:
            def __call__(self, trajs):  # pragma: no cover - must NOT be used
                raise AssertionError("called __call__ instead of .encode")

            def encode(self, trajs):
                return _embed(trajs)

        with SimilarityServer(Model(), dim=DIM) as server:
            server.add(_trajs(1, seed=18)[0])
            assert len(server) == 1

    def test_serving_counters_advance(self, server):
        registry = get_registry()
        requests_before = registry.counter("serve.query.requests").value
        answered_before = registry.counter("serve.query.answered").value
        server.add_batch(_trajs(4, seed=19))
        server.topk(_trajs(1, seed=20)[0], k=1)
        assert registry.counter("serve.query.requests").value == requests_before + 1
        assert registry.counter("serve.query.answered").value == answered_before + 1


# ---------------------------------------------------------------------------
# Bench harness plumbing (scaled down: seconds, not the acceptance scale)
# ---------------------------------------------------------------------------


def test_run_serve_bench_smoke():
    result = run_serve_bench(
        n_db=8, n_queries=12, workers=2, batch_size=8, hidden_dim=8, naive_queries=4
    )
    assert result.completed == 12
    assert result.dropped == 0
    payload = result.to_dict()
    assert payload["speedup"] == pytest.approx(result.speedup)
    assert payload["completed"] == 12
    assert all(np.isfinite(v) for v in payload.values())
