"""Tier-1 tests for the concurrency rule family C001–C006.

Each rule gets at least one positive fixture (a deliberately racy scratch
tree where the finding is exact) and one negative fixture (the disciplined
version that must stay clean).  The scope/severity plumbing (``--scope
concurrency``, ``--fail-on``) and the SARIF severity levels are covered at
the end.  The model internals (guard inference, the entry-lock fixpoint,
the lock-order graph) are exercised through the rules, the way the lint
pass uses them.
"""

import json
import textwrap

import pytest

from repro.analysis import run_analysis
from repro.analysis.registry import SCOPE_FAMILIES, rules_in_family

pytestmark = pytest.mark.lint


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _report(tmp_path, files, rules=None, scope=None):
    for rel, source in files.items():
        _write(tmp_path, "src/" + rel, source)
    return run_analysis(
        [tmp_path / "src"], root=tmp_path, rules=rules, scope=scope
    )


# ---------------------------------------------------------------------------
# C001 — shared mutable state written outside its lock
# ---------------------------------------------------------------------------


class TestC001UnguardedWrites:
    def test_bare_write_of_guarded_attr_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "box.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add_item(self, x):
                        with self._lock:
                            self._items.append(x)

                    def rogue_reset(self):
                        self._items = []
                """
            },
            rules=["C001"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.rule == "C001"
        assert "_items" in v.message
        assert v.severity == "error"

    def test_all_writes_under_lock_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "box.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add_item(self, x):
                        with self._lock:
                            self._items.append(x)

                    def drain(self):
                        with self._lock:
                            self._items = []
                """
            },
            rules=["C001"],
        )
        assert report.ok, report.format_text()

    def test_bare_assign_in_lock_owning_class_is_flagged(self, tmp_path):
        # No inferred guard for _state at all, but the class owns a lock,
        # so it is thread-shared and the bare assign races.
        report = _report(
            tmp_path,
            {
                "box.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._state = 0

                    def poke(self):
                        self._state = 1
                """
            },
            rules=["C001"],
        )
        assert [v.rule for v in report.violations] == ["C001"]
        assert "thread-shared" in report.violations[0].message

    def test_thread_closure_write_without_lock_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "pool.py": """\
                import threading

                def run_workers(n):
                    results = []

                    def worker():
                        results.append(1)

                    threads = [
                        threading.Thread(target=worker, daemon=True)
                        for _ in range(n)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                    return results
                """
            },
            rules=["C001"],
        )
        assert len(report.violations) == 1
        assert "worker" in report.violations[0].message

    def test_thread_closure_write_under_local_lock_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "pool.py": """\
                import threading

                def run_workers(n):
                    lock = threading.Lock()
                    results = []

                    def worker():
                        with lock:
                            results.append(1)

                    threads = [
                        threading.Thread(target=worker, daemon=True)
                        for _ in range(n)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                    return results
                """
            },
            rules=["C001"],
        )
        assert report.ok, report.format_text()

    def test_private_helper_called_under_lock_is_clean(self, tmp_path):
        # The entry-lock fixpoint: _append_locked is only ever called with
        # the lock held, so its writes are guarded even though no `with`
        # appears in its own body.
        report = _report(
            tmp_path,
            {
                "box.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add_item(self, x):
                        with self._lock:
                            self._append_locked(x)

                    def add_pair(self, x, y):
                        with self._lock:
                            self._append_locked(x)
                            self._append_locked(y)

                    def _append_locked(self, x):
                        self._items.append(x)
                """
            },
            rules=["C001"],
        )
        assert report.ok, report.format_text()

    def test_inline_allow_suppresses(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "box.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add_item(self, x):
                        with self._lock:
                            self._items.append(x)

                    def rogue_reset(self):
                        self._items = []  # lint: allow(C001)
                """
            },
            rules=["C001"],
        )
        assert report.ok
        assert report.suppressed_count == 1


# ---------------------------------------------------------------------------
# C002 — inconsistent guard (bare read of a guarded attribute)
# ---------------------------------------------------------------------------


class TestC002InconsistentGuard:
    FILES = {
        "stat.py": """\
        import threading

        class Stat:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def peek(self):
                return self._count
        """
    }

    def test_bare_read_is_flagged_as_warning(self, tmp_path):
        report = _report(tmp_path, self.FILES, rules=["C002"])
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.rule == "C002"
        assert v.severity == "warning"
        assert "_count" in v.message

    def test_read_under_lock_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "stat.py": """\
                import threading

                class Stat:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def peek(self):
                        with self._lock:
                            return self._count
                """
            },
            rules=["C002"],
        )
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# C003 — lock-order cycles and self-deadlocks
# ---------------------------------------------------------------------------


class TestC003LockOrder:
    def test_opposite_nesting_orders_are_a_cycle(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "orders.py": """\
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def forward_path():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def reverse_path():
                    with LOCK_B:
                        with LOCK_A:
                            pass
                """
            },
            rules=["C003"],
        )
        assert len(report.violations) == 1
        assert "cycle" in report.violations[0].message
        assert "LOCK_A" in report.violations[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "orders.py": """\
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def forward_path():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def also_forward():
                    with LOCK_A:
                        with LOCK_B:
                            pass
                """
            },
            rules=["C003"],
        )
        assert report.ok, report.format_text()

    def test_cross_module_cycle_via_imported_lock(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                import threading

                LOCK_A = threading.Lock()

                def take_a_then_b():
                    from .b import LOCK_B
                    with LOCK_A:
                        with LOCK_B:
                            pass
                """,
                "pkg/b.py": """\
                import threading

                from .a import LOCK_A

                LOCK_B = threading.Lock()

                def take_b_then_a():
                    with LOCK_B:
                        with LOCK_A:
                            pass
                """,
            },
            rules=["C003"],
        )
        assert any("cycle" in v.message for v in report.violations)

    def test_nested_reacquire_of_plain_lock_is_self_deadlock(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "orders.py": """\
                import threading

                LOCK = threading.Lock()

                def reenter():
                    with LOCK:
                        with LOCK:
                            pass
                """
            },
            rules=["C003"],
        )
        assert len(report.violations) == 1
        assert "self-deadlock" in report.violations[0].message

    def test_rlock_reentry_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "orders.py": """\
                import threading

                GUARD = threading.RLock()

                def reenter():
                    with GUARD:
                        with GUARD:
                            pass
                """
            },
            rules=["C003"],
        )
        assert report.ok, report.format_text()

    def test_interprocedural_same_lock_call_is_self_deadlock(self, tmp_path):
        # query_all holds the class lock and calls a helper that takes the
        # same (non-reentrant) lock again — deadlock through the call graph.
        report = _report(
            tmp_path,
            {
                "engine.py": """\
                import threading

                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = []

                    def snapshot_rows(self):
                        with self._lock:
                            return list(self._rows)

                    def query_all(self):
                        with self._lock:
                            return self.snapshot_rows()
                """
            },
            rules=["C003"],
        )
        assert len(report.violations) == 1
        assert "self-deadlock" in report.violations[0].message


# ---------------------------------------------------------------------------
# C004 — blocking call while holding a lock
# ---------------------------------------------------------------------------


class TestC004BlockingUnderLock:
    def test_sleep_under_lock_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "slow.py": """\
                import threading
                import time

                PACE_LOCK = threading.Lock()

                def paced():
                    with PACE_LOCK:
                        time.sleep(0.1)
                """
            },
            rules=["C004"],
        )
        assert len(report.violations) == 1
        assert "time.sleep" in report.violations[0].message

    def test_future_result_under_lock_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "slow.py": """\
                import threading

                STATE_LOCK = threading.Lock()

                def wait_under_lock(future):
                    with STATE_LOCK:
                        return future.result()
                """
            },
            rules=["C004"],
        )
        assert len(report.violations) == 1
        assert "future wait" in report.violations[0].message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "slow.py": """\
                import threading
                import time

                PACE_LOCK = threading.Lock()

                def paced():
                    with PACE_LOCK:
                        n = 1
                    time.sleep(0.1)
                    return n
                """
            },
            rules=["C004"],
        )
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# C005 — non-atomic check-then-act
# ---------------------------------------------------------------------------


class TestC005CheckThenAct:
    def test_bare_check_then_act_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "cache.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}

                    def put_locked(self, k, v):
                        with self._lock:
                            self._data[k] = v

                    def racy_lookup(self, k):
                        if k in self._data:
                            return self._data[k]
                        return None
                """
            },
            rules=["C005"],
        )
        assert len(report.violations) == 1
        assert "check-then-act" in report.violations[0].message
        assert "_data" in report.violations[0].message

    def test_check_then_act_inside_lock_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "cache.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}

                    def put_locked(self, k, v):
                        with self._lock:
                            self._data[k] = v

                    def atomic_lookup(self, k):
                        with self._lock:
                            if k in self._data:
                                return self._data[k]
                        return None
                """
            },
            rules=["C005"],
        )
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# C006 — thread lifecycle discipline
# ---------------------------------------------------------------------------


class TestC006ThreadDiscipline:
    def test_loose_thread_is_flagged_as_warning(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "spawn.py": """\
                import threading

                def tick():
                    return None

                def spawn_loose():
                    t = threading.Thread(target=tick)
                    t.start()
                    return t
                """
            },
            rules=["C006"],
        )
        assert len(report.violations) == 1
        assert report.violations[0].severity == "warning"

    def test_daemon_thread_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "spawn.py": """\
                import threading

                def tick():
                    return None

                def spawn_daemon():
                    t = threading.Thread(target=tick, daemon=True)
                    t.start()
                    return t
                """
            },
            rules=["C006"],
        )
        assert report.ok, report.format_text()

    def test_joined_thread_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "spawn.py": """\
                import threading

                def tick():
                    return None

                def spawn_and_join():
                    t = threading.Thread(target=tick)
                    t.start()
                    t.join()
                """
            },
            rules=["C006"],
        )
        assert report.ok, report.format_text()

    def test_attr_thread_joined_in_close_is_clean(self, tmp_path):
        # MicroBatcher shape: the worker is stored on the instance and
        # joined on the owner's close path, in another method.
        report = _report(
            tmp_path,
            {
                "owner.py": """\
                import threading

                class Owner:
                    def __init__(self):
                        self._worker = threading.Thread(target=self._run)
                        self._worker.start()

                    def _run(self):
                        return None

                    def shutdown(self):
                        self._worker.join()
                """
            },
            rules=["C006"],
        )
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# Scope / severity plumbing
# ---------------------------------------------------------------------------

RACY = {
    "stat.py": TestC002InconsistentGuard.FILES["stat.py"],
}


class TestScopeAndSeverity:
    def test_scope_concurrency_runs_only_c_rules(self, tmp_path):
        # The fixture has missing docstrings and a bare read; only the
        # C-family finding may appear under --scope concurrency.
        report = _report(tmp_path, RACY, scope="concurrency")
        assert report.violations
        assert all(v.rule.startswith("C") for v in report.violations)

    def test_scope_families_cover_every_family(self):
        assert set(SCOPE_FAMILIES) >= {
            "all",
            "style",
            "shapes",
            "differentiability",
            "stability",
            "concurrency",
        }
        assert all(r.startswith("C") for r in rules_in_family("concurrency"))
        with pytest.raises(ValueError):
            rules_in_family("nonsense")

    def test_fail_on_error_ignores_warnings(self, tmp_path):
        report = _report(tmp_path, RACY, rules=["C002"])
        assert report.warning_count == 1
        assert report.error_count == 0
        assert report.failing("warning")
        assert not report.failing("error")
        with pytest.raises(ValueError):
            report.failing("pedantic")

    def test_text_report_marks_warnings(self, tmp_path):
        report = _report(tmp_path, RACY, rules=["C002"])
        text = report.format_text()
        assert "[warning]" in text
        assert "1 warning(s)" in text

    def test_json_report_carries_severity_counts(self, tmp_path):
        report = _report(tmp_path, RACY, rules=["C002"])
        data = json.loads(report.to_json())
        assert data["error_count"] == 0
        assert data["warning_count"] == 1
        assert data["violations"][0]["severity"] == "warning"

    def test_sarif_level_follows_severity(self, tmp_path):
        report = _report(tmp_path, RACY, rules=["C002"])
        sarif = json.loads(report.to_sarif())
        results = sarif["runs"][0]["results"]
        assert results and all(r["level"] == "warning" for r in results)
