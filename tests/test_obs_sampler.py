"""Tests for the wall-clock stack sampler (`repro.obs.sampler`).

Aggregation and the export formats are pinned deterministically through
the injectable ``frames_fn``/``clock``/``tracer`` hooks (no live thread
needed); the live-thread tests cover lifecycle, per-thread isolation
under real concurrency, phase attribution through the tracer, and the
sampler's headline contract: ≤5% overhead at 50 hz.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs.sampler import (
    StackSampler,
    format_top_frames,
    merge_stacks,
    top_frames,
)
from repro.obs.trace import get_tracer


class _Frame:
    """Stand-in for a real interpreter frame (label + f_back chain)."""

    class _Code:
        def __init__(self, co_name):
            self.co_name = co_name
            self.co_filename = "<fake>"

    def __init__(self, name, module="fake.mod", back=None):
        self.f_globals = {"__name__": module}
        self.f_code = self._Code(name)
        self.f_back = back


def _stack(*names, module="fake.mod"):
    """Build a frame chain; ``names`` are root-first, the leaf is returned."""
    frame = None
    for name in names:
        frame = _Frame(name, module=module, back=frame)
    return frame


class _FakeTracer:
    def __init__(self, phases=None):
        self._phases = dict(phases or {})

    def active_phases(self):
        return dict(self._phases)


def _fixed_sampler(frames, phases=None, **kwargs):
    """A sampler fed a constant frames dict, never started as a thread."""
    return StackSampler(
        hz=kwargs.pop("hz", 10.0),
        clock=kwargs.pop("clock", lambda: 0.0),
        frames_fn=lambda: dict(frames),
        tracer=_FakeTracer(phases),
        **kwargs,
    )


class TestAggregation:
    def test_deterministic_folded_snapshot(self):
        sampler = _fixed_sampler({1: _stack("root", "mid", "leaf")})
        for _ in range(3):
            assert sampler.sample_once() == 1
        assert sampler.samples == 3
        assert sampler.folded() == "fake.mod.root;fake.mod.mid;fake.mod.leaf 3"
        # Byte-identical on a second identical sampler: no hidden state.
        other = _fixed_sampler({1: _stack("root", "mid", "leaf")})
        for _ in range(3):
            other.sample_once()
        assert other.folded() == sampler.folded()

    def test_threads_aggregate_separately(self):
        frames = {
            1: _stack("root", "alpha"),
            2: _stack("root", "beta"),
        }
        sampler = _fixed_sampler(frames)
        sampler.sample_once()
        sampler.sample_once()
        counts = sampler.counts()
        assert set(counts) == {1, 2}
        assert counts[1] == {("fake.mod.root", "fake.mod.alpha"): 2}
        assert counts[2] == {("fake.mod.root", "fake.mod.beta"): 2}
        # Merged view keeps the two call paths distinct — never interleaved.
        merged = sampler.merged_stacks()
        assert set(merged) == {
            "fake.mod.root;fake.mod.alpha",
            "fake.mod.root;fake.mod.beta",
        }

    def test_phase_becomes_synthetic_root(self):
        sampler = _fixed_sampler(
            {1: _stack("handler"), 2: _stack("other")},
            phases={1: "serve.topk"},
        )
        sampler.sample_once()
        merged = sampler.merged_stacks()
        assert "serve.topk;fake.mod.handler" in merged
        assert "fake.mod.other" in merged  # no phase -> no synthetic root

    def test_deep_stacks_truncate_leafward(self):
        deep = _stack(*[f"f{i}" for i in range(10)])
        sampler = _fixed_sampler({1: deep}, max_depth=4)
        sampler.sample_once()
        (fold,) = sampler.merged_stacks()
        parts = fold.split(";")
        assert parts[0] == "<truncated>"
        # The leaf-most frames survive; the leaf is the last caller built.
        assert parts[-1] == "fake.mod.f9"
        assert len(parts) == 5  # <truncated> + max_depth frames
        assert sampler.snapshot()["truncated"] == 1

    def test_reset_clears_everything(self):
        sampler = _fixed_sampler({1: _stack("a")})
        sampler.sample_once()
        sampler.reset()
        assert sampler.samples == 0
        assert sampler.merged_stacks() == {}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)
        with pytest.raises(ValueError):
            StackSampler(hz=-5)
        with pytest.raises(ValueError):
            StackSampler(max_depth=0)


class TestExports:
    def test_snapshot_is_json_ready(self):
        sampler = _fixed_sampler({1: _stack("a", "b")})
        sampler.sample_once()
        snap = json.loads(json.dumps(sampler.snapshot()))
        assert snap["hz"] == 10.0
        assert snap["samples"] == 1
        assert snap["stacks"] == {"fake.mod.a;fake.mod.b": 1}
        # A persisted snapshot feeds straight back into the hot-frame table.
        assert "fake.mod.b" in format_top_frames(snap["stacks"])

    def test_speedscope_document_shape(self):
        frames = {1: _stack("root", "alpha"), 2: _stack("root", "beta")}
        sampler = _fixed_sampler(frames)
        for _ in range(4):
            sampler.sample_once()
        doc = sampler.to_speedscope(name="unit test")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["name"] == "unit test"
        labels = [f["name"] for f in doc["shared"]["frames"]]
        assert set(labels) == {"fake.mod.root", "fake.mod.alpha", "fake.mod.beta"}
        assert len(doc["profiles"]) == 2
        for profile in doc["profiles"]:
            assert profile["type"] == "sampled"
            assert sum(profile["weights"]) == 4
            assert profile["endValue"] == 4
            for sample in profile["samples"]:
                assert all(0 <= i < len(labels) for i in sample)

    def test_write_speedscope_and_folded(self, tmp_path):
        sampler = _fixed_sampler({1: _stack("a", "b")})
        sampler.sample_once()
        ss = sampler.write_speedscope(tmp_path / "out" / "p.speedscope.json")
        folded = sampler.write_folded(tmp_path / "out" / "p.folded")
        doc = json.loads(ss.read_text())
        assert doc["profiles"] and doc["shared"]["frames"]
        assert folded.read_text() == "fake.mod.a;fake.mod.b 1\n"


class TestTopFrames:
    def test_self_and_total_counts(self):
        stacks = {"a;b;c": 3, "a;b": 2, "a;a;c": 1}  # recursion counted once
        rows = {r["frame"]: r for r in top_frames(stacks)}
        assert rows["c"]["self"] == 4 and rows["c"]["total"] == 4
        assert rows["b"]["self"] == 2 and rows["b"]["total"] == 5
        assert rows["a"]["self"] == 0 and rows["a"]["total"] == 6
        # Hottest self-time first.
        assert [r["frame"] for r in top_frames(stacks, n=2)] == ["c", "b"]

    def test_merge_stacks_sums(self):
        merged = merge_stacks({"a;b": 2}, {"a;b": 3, "c": 1})
        assert merged == {"a;b": 5, "c": 1}

    def test_format_handles_empty(self):
        assert format_top_frames({}) == "(no samples recorded)"
        table = format_top_frames({"a;b": 4})
        assert "self%" in table and "b" in table


def _spin_marker_alpha(stop):
    while not stop.is_set():
        sum(i * i for i in range(200))


def _spin_marker_beta(stop):
    while not stop.is_set():
        sum(i * i for i in range(200))


class TestLiveSampling:
    def test_lifecycle(self):
        sampler = StackSampler(hz=200.0)
        assert not sampler.running
        with sampler as s:
            assert s is sampler
            assert sampler.running
            with pytest.raises(RuntimeError):
                sampler.start()
            deadline = time.perf_counter() + 2.0
            while sampler.samples == 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
        assert not sampler.running
        sampler.stop()  # idempotent
        assert sampler.samples > 0
        assert sampler.seconds > 0
        # The sampler never samples its own loop.
        assert not any(
            "sampler._loop" in fold for fold in sampler.merged_stacks()
        )

    def test_per_thread_stacks_never_interleave(self):
        """Two live worker stacks must never merge into one call path."""
        stop = threading.Event()
        workers = [
            threading.Thread(target=_spin_marker_alpha, args=(stop,), daemon=True),
            threading.Thread(target=_spin_marker_beta, args=(stop,), daemon=True),
        ]
        sampler = StackSampler(hz=400.0)
        try:
            with sampler:
                for w in workers:
                    w.start()
                deadline = time.perf_counter() + 3.0
                while time.perf_counter() < deadline:
                    merged = sampler.merged_stacks()
                    if (
                        any("_spin_marker_alpha" in f for f in merged)
                        and any("_spin_marker_beta" in f for f in merged)
                    ):
                        break
                    time.sleep(0.01)
        finally:
            stop.set()
            for w in workers:
                w.join()
        counts = sampler.counts()
        hits = {"alpha": 0, "beta": 0}
        for stacks in counts.values():
            for stack in stacks:
                fold = ";".join(stack)
                has_a = "_spin_marker_alpha" in fold
                has_b = "_spin_marker_beta" in fold
                assert not (has_a and has_b), f"interleaved stack: {fold}"
                hits["alpha"] += has_a
                hits["beta"] += has_b
        assert hits["alpha"] and hits["beta"], "both workers must be sampled"
        # And per thread ident: one worker's marker never shows up under
        # the other worker's aggregation bucket.
        for stacks in counts.values():
            markers = {
                marker
                for stack in stacks
                for marker in ("_spin_marker_alpha", "_spin_marker_beta")
                if any(marker in frame for frame in stack)
            }
            assert len(markers) <= 1

    def test_live_phase_attribution(self):
        """Samples taken inside an open root trace carry its name as root."""
        tracer = get_tracer()
        sampler = StackSampler(hz=500.0)
        with sampler:
            deadline = time.perf_counter() + 3.0
            attributed = False
            while time.perf_counter() < deadline and not attributed:
                with tracer.trace("train.epoch"):
                    t0 = time.perf_counter()
                    while time.perf_counter() - t0 < 0.05:
                        sum(i * i for i in range(500))
                attributed = any(
                    fold.startswith("train.epoch;")
                    for fold in sampler.merged_stacks()
                )
        assert attributed


def _overhead_workload():
    rng = np.random.default_rng(0)
    acc = 0.0
    for _ in range(30):
        x = rng.normal(size=(120, 120))
        acc += float(np.linalg.eigvalsh(x @ x.T)[0])
    return acc


class TestOverhead:
    def test_sampling_overhead_within_budget_at_50hz(self):
        """The headline contract: ≤5% wall-clock overhead at 50 hz.

        Min-of-N on both sides de-noises scheduler jitter (the *minimum*
        is the run with the least interference, which is what overhead
        must be measured against); a small absolute slack keeps the
        assertion meaningful but unflaky on loaded CI machines.
        """
        repeats = 3
        _overhead_workload()  # warm numpy/BLAS before timing anything

        plain = min(
            _timed(_overhead_workload) for _ in range(repeats)
        )
        sampled_times = []
        sampler = StackSampler(hz=50.0)
        with sampler:
            for _ in range(repeats):
                sampled_times.append(_timed(_overhead_workload))
        assert sampler.samples > 0, "sampler must actually run during the workload"
        sampled = min(sampled_times)
        assert sampled <= plain * 1.05 + 0.030, (
            f"sampling overhead over budget: plain {plain:.4f}s, "
            f"sampled {sampled:.4f}s"
        )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
