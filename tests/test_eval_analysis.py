"""Tests for the approximation-quality analysis."""

import numpy as np
import pytest

from repro.eval.analysis import ApproximationReport, approximation_report, spearman_per_query


def symmetric(rng, n=10):
    m = rng.random((n, n))
    m = m + m.T
    np.fill_diagonal(m, 0.0)
    return m


class TestApproximationReport:
    def test_perfect_prediction(self, rng):
        gt = symmetric(rng)
        report = approximation_report(gt, gt.copy())
        assert report.mae == pytest.approx(0.0)
        assert report.spearman == pytest.approx(1.0)
        assert report.mean_query_spearman == pytest.approx(1.0)

    def test_scale_invariance(self, rng):
        """Scaling the predicted matrix must not change the report —
        embedding distances have arbitrary scale."""
        gt = symmetric(rng)
        a = approximation_report(gt, gt * 7.3)
        assert a.mae == pytest.approx(0.0, abs=1e-12)
        assert a.spearman == pytest.approx(1.0)

    def test_reversed_ranking_negative_correlation(self, rng):
        gt = symmetric(rng)
        report = approximation_report(gt, gt.max() - gt)
        assert report.spearman < -0.9

    def test_random_prediction_worse_than_perfect(self, rng):
        gt = symmetric(rng, 20)
        noise = symmetric(rng, 20)
        good = approximation_report(gt, gt + 0.01 * noise)
        bad = approximation_report(gt, noise)
        assert good.spearman > bad.spearman
        assert good.mae < bad.mae

    def test_as_dict(self, rng):
        gt = symmetric(rng)
        d = approximation_report(gt, gt).as_dict()
        assert set(d) == {"MAE", "MRE", "Spearman", "QuerySpearman"}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            approximation_report(rng.random((3, 3)), rng.random((4, 4)))
        with pytest.raises(ValueError):
            approximation_report(rng.random((3, 4)), rng.random((3, 4)))

    def test_constant_matrix_handled(self):
        gt = np.zeros((5, 5))
        report = approximation_report(gt, gt)
        assert report.mae == 0.0


class TestSpearmanPerQuery:
    def test_perfect(self, rng):
        gt = symmetric(rng)
        assert spearman_per_query(gt, gt * 2) == pytest.approx(1.0)

    def test_needs_three(self, rng):
        with pytest.raises(ValueError):
            spearman_per_query(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_model_integration(self, rng):
        """A trained model's per-query correlation must beat noise."""
        from repro.core import TMN, TMNConfig, Trainer, pair_distance_matrix
        from repro.metrics import pairwise_distance_matrix

        trajs = [rng.normal(size=(int(rng.integers(8, 14)), 2)) for _ in range(14)]
        gt = pairwise_distance_matrix(trajs, "hausdorff")
        cfg = TMNConfig(hidden_dim=8, epochs=4, sampling_number=4, seed=0)
        model = TMN(cfg)
        Trainer(model, cfg, metric="hausdorff").fit(trajs, distances=gt)
        pred = pair_distance_matrix(model, trajs)
        noise = symmetric(rng, len(trajs))
        assert spearman_per_query(gt, pred) > spearman_per_query(gt, noise)
