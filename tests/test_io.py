"""Tests for model and dataset persistence."""

import numpy as np
import pytest

from repro.baselines import SRN, NeuTraj, T3S, Traj2SimVec
from repro.core import TMN, TMNConfig
from repro.data import Trajectory, TrajectoryDataset, make_dataset
from repro.io import load_dataset, load_model, save_dataset, save_model


def small_config(**overrides):
    defaults = dict(hidden_dim=8, epochs=1, sampling_number=4, seed=3)
    defaults.update(overrides)
    return TMNConfig(**defaults)


class TestModelRoundtrip:
    @pytest.mark.parametrize("cls", [TMN, SRN, T3S, Traj2SimVec])
    def test_roundtrip_preserves_outputs(self, cls, tmp_path, rng):
        model = cls(small_config())
        save_model(model, tmp_path / "ckpt")
        restored = load_model(tmp_path / "ckpt")
        trajs = [rng.normal(size=(5, 2))]
        model.eval()
        restored.eval()
        a, _ = model.embed_pair(trajs, trajs)
        b, _ = restored.embed_pair(trajs, trajs)
        np.testing.assert_allclose(a.data, b.data)

    def test_neutraj_roundtrip_weights(self, tmp_path, rng):
        model = NeuTraj(small_config())
        save_model(model, tmp_path / "nt")
        restored = load_model(tmp_path / "nt")
        for (na, pa), (nb, pb) in zip(
            model.named_parameters(), restored.named_parameters()
        ):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data)

    def test_config_restored(self, tmp_path):
        cfg = small_config(matching=False, loss="qerror")
        save_model(TMN(cfg), tmp_path / "m")
        restored = load_model(tmp_path / "m")
        assert restored.config == cfg

    def test_unknown_class_rejected(self, tmp_path):
        class Fake(TMN):
            pass

        with pytest.raises(KeyError):
            save_model(Fake(small_config()), tmp_path / "x")

    def test_load_unknown_class_rejected(self, tmp_path):
        save_model(TMN(small_config()), tmp_path / "m")
        meta = (tmp_path / "m.json").read_text().replace("TMN", "Unknown")
        (tmp_path / "m.json").write_text(meta)
        with pytest.raises(KeyError):
            load_model(tmp_path / "m")


class TestDatasetRoundtrip:
    def test_roundtrip(self, tmp_path):
        ds = make_dataset("porto", 6, seed=2)
        save_dataset(ds, tmp_path / "porto")
        restored = load_dataset(tmp_path / "porto")
        assert len(restored) == len(ds)
        assert restored.name == ds.name
        for a, b in zip(ds, restored):
            np.testing.assert_allclose(a.points, b.points)
            np.testing.assert_allclose(a.timestamps, b.timestamps)
            assert a.traj_id == b.traj_id

    def test_roundtrip_without_timestamps(self, tmp_path, rng):
        ds = TrajectoryDataset([Trajectory(rng.normal(size=(4, 2)))], name="raw")
        restored = load_dataset(save_dataset(ds, tmp_path / "raw"))
        assert restored[0].timestamps is None

    def test_meta_preserved(self, tmp_path):
        ds = make_dataset("geolife", 3, seed=1)
        restored = load_dataset(save_dataset(ds, tmp_path / "g"))
        assert restored.meta["kind"] == "geolife"
