"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_geolife_like, make_porto_like, prepare


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_corpus():
    """A tiny preprocessed Porto-like corpus shared by integration tests."""
    ds = make_porto_like(120, rng=np.random.default_rng(5))
    ds, _ = prepare(ds)
    return ds


@pytest.fixture(scope="session")
def small_geolife():
    ds = make_geolife_like(120, rng=np.random.default_rng(6))
    ds, _ = prepare(ds)
    return ds


@pytest.fixture
def toy_trajectories(rng):
    """A handful of random raw trajectories (arrays)."""
    return [rng.normal(size=(int(rng.integers(5, 20)), 2)) for _ in range(12)]
