"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_geolife_like, make_porto_like, prepare


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run with the runtime lock sanitizer: new_lock()/new_rlock() "
        "hand out order-checked, metric-reporting lock shims",
    )


def pytest_configure(config):
    if config.getoption("--sanitize"):
        # Enable before any test module constructs its locks: the
        # factories consult the flag at construction time.
        from repro.obs import lockstats

        lockstats.enable()


def pytest_collection_modifyitems(config, items):
    if config.getoption("--sanitize"):
        # Spawned shard workers start fresh interpreters that do not
        # inherit the in-process lock shims, so the sanitizer cannot
        # observe them — and its timing overhead in the coordinator makes
        # the spawn/deadline tests flaky.  Deterministically skip instead.
        skip_shard = pytest.mark.skip(
            reason="process-pool tests are outside the lock sanitizer's scope"
        )
        for item in items:
            if "shard" in item.keywords:
                item.add_marker(skip_shard)


def pytest_sessionfinish(session, exitstatus):
    if session.config.getoption("--sanitize"):
        from repro.obs import lockstats

        cycles = lockstats.get_lockstats().cycles()
        if cycles and exitstatus == 0:
            raise pytest.UsageError(
                f"lock sanitizer observed order cycles: {cycles}"
            )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_corpus():
    """A tiny preprocessed Porto-like corpus shared by integration tests."""
    ds = make_porto_like(120, rng=np.random.default_rng(5))
    ds, _ = prepare(ds)
    return ds


@pytest.fixture(scope="session")
def small_geolife():
    ds = make_geolife_like(120, rng=np.random.default_rng(6))
    ds, _ = prepare(ds)
    return ds


@pytest.fixture
def toy_trajectories(rng):
    """A handful of random raw trajectories (arrays)."""
    return [rng.normal(size=(int(rng.integers(5, 20)), 2)) for _ in range(12)]
