"""Property tests for the exact metrics: batch/scalar agreement + axioms.

Two families, both over seeded random *ragged* batches (mixed lengths, so
the padding/masking paths of the anti-diagonal DP engines are exercised):

1. **Batch == scalar.**  For every registered metric, the vectorised
   ``MetricSpec.batch`` over padded stacks must match the scalar
   ``MetricSpec.scalar`` pairwise to 1e-9.  This is the contract that lets
   `repro.metrics.matrix` (and the serving degraded path) use the batched
   engines as ground truth.
2. **Metric axioms.**  Symmetry, identity (d(a, a) = 0) and
   non-negativity for all metrics; the triangle inequality for the two
   that are genuine metrics on point sets/curves (discrete Fréchet and
   Hausdorff — DTW/ERP/EDR/LCSS famously violate it, so it is *not*
   asserted for them).

Everything is seeded: failures reproduce exactly.
"""

import numpy as np
import pytest

from repro.metrics import METRIC_NAMES, get_metric, pad_trajectories

ATOL = 1e-9

#: Metrics for which the triangle inequality d(a,c) <= d(a,b) + d(b,c)
#: actually holds (discrete Fréchet and Hausdorff are true metrics on
#: curves / point sets; the DP edit-style distances are not).
TRIANGLE_METRICS = ("frechet", "hausdorff")


def _ragged_batch(seed, n, min_len=2, max_len=17, scale=1.0):
    """``n`` trajectories with independently drawn lengths (seeded)."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(min_len, max_len + 1, size=n)
    return [rng.normal(scale=scale, size=(int(L), 2)) for L in lengths]


def _pair_stacks(trajs_a, trajs_b):
    """Pad two trajectory lists into aligned (P, L, 2) stacks + lengths."""
    pa, la = pad_trajectories(trajs_a)
    pb, lb = pad_trajectories(trajs_b)
    longest = max(pa.shape[1], pb.shape[1])

    def widen(points):
        if points.shape[1] == longest:
            return points
        out = np.zeros((points.shape[0], longest, 2))
        out[:, : points.shape[1]] = points
        return out

    return widen(pa), widen(pb), la, lb


# ---------------------------------------------------------------------------
# 1. Batched DP engines match the scalar reference pairwise.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("metric", METRIC_NAMES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_matches_scalar_on_ragged_pairs(metric, seed):
    spec = get_metric(metric)
    trajs_a = _ragged_batch(seed, 12)
    trajs_b = _ragged_batch(seed + 100, 12)
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    batched = spec.batch(pa, pb, la, lb)
    assert batched.shape == (12,)
    expected = np.array([spec.scalar(a, b) for a, b in zip(trajs_a, trajs_b)])
    np.testing.assert_allclose(batched, expected, rtol=0.0, atol=ATOL)


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_batch_matches_scalar_extreme_length_mismatch(metric):
    """One point vs a long trajectory — the masking corner of the DP."""
    spec = get_metric(metric)
    rng = np.random.default_rng(7)
    trajs_a = [rng.normal(size=(1, 2)) for _ in range(4)]
    trajs_b = [rng.normal(size=(int(L), 2)) for L in (25, 1, 13, 2)]
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    batched = spec.batch(pa, pb, la, lb)
    expected = np.array([spec.scalar(a, b) for a, b in zip(trajs_a, trajs_b)])
    np.testing.assert_allclose(batched, expected, rtol=0.0, atol=ATOL)


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_batch_matches_scalar_large_coordinates(metric):
    """Raw lon/lat-scale coordinates (the paper's regime, not unit noise)."""
    spec = get_metric(metric)
    trajs_a = [t * 50.0 + 100.0 for t in _ragged_batch(11, 8)]
    trajs_b = [t * 50.0 + 100.0 for t in _ragged_batch(12, 8)]
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    batched = spec.batch(pa, pb, la, lb)
    expected = np.array([spec.scalar(a, b) for a, b in zip(trajs_a, trajs_b)])
    # 1e-9 absolute is too tight at coordinate scale ~100; the contract
    # here is relative agreement of the same float64 recurrences.
    np.testing.assert_allclose(batched, expected, rtol=1e-12, atol=1e-9)


# ---------------------------------------------------------------------------
# 2. Metric axioms.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("metric", METRIC_NAMES)
@pytest.mark.parametrize("seed", [3, 4])
def test_symmetry(metric, seed):
    spec = get_metric(metric)
    trajs_a = _ragged_batch(seed, 10)
    trajs_b = _ragged_batch(seed + 50, 10)
    for a, b in zip(trajs_a, trajs_b):
        assert spec.scalar(a, b) == pytest.approx(spec.scalar(b, a), abs=ATOL)


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_symmetry_batched(metric):
    spec = get_metric(metric)
    trajs_a = _ragged_batch(21, 10)
    trajs_b = _ragged_batch(22, 10)
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    forward = spec.batch(pa, pb, la, lb)
    backward = spec.batch(pb, pa, lb, la)
    np.testing.assert_allclose(forward, backward, rtol=0.0, atol=ATOL)


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_identity(metric):
    spec = get_metric(metric)
    for seed in range(5):
        (traj,) = _ragged_batch(seed + 30, 1)
        assert spec.scalar(traj, traj) == pytest.approx(0.0, abs=ATOL)


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_non_negativity(metric):
    spec = get_metric(metric)
    trajs_a = _ragged_batch(41, 16)
    trajs_b = _ragged_batch(42, 16)
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    batched = spec.batch(pa, pb, la, lb)
    assert np.all(batched >= -ATOL)
    assert np.all(np.isfinite(batched))


@pytest.mark.parametrize("metric", TRIANGLE_METRICS)
@pytest.mark.parametrize("seed", [5, 6, 7])
def test_triangle_inequality(metric, seed):
    spec = get_metric(metric)
    trajs = _ragged_batch(seed, 9)
    for i in range(0, 9, 3):
        a, b, c = trajs[i], trajs[i + 1], trajs[i + 2]
        d_ac = spec.scalar(a, c)
        d_ab = spec.scalar(a, b)
        d_bc = spec.scalar(b, c)
        assert d_ac <= d_ab + d_bc + ATOL


@pytest.mark.parametrize("metric", ("edr", "lcss"))
def test_edit_metrics_bounded(metric):
    """EDR and LCSS (as normalised here) stay within their known ranges."""
    spec = get_metric(metric)
    trajs_a = _ragged_batch(51, 12)
    trajs_b = _ragged_batch(52, 12)
    pa, pb, la, lb = _pair_stacks(trajs_a, trajs_b)
    batched = spec.batch(pa, pb, la, lb)
    if metric == "lcss":
        assert np.all(batched <= 1.0 + ATOL)
    else:
        assert np.all(batched <= np.maximum(la, lb) + ATOL)
