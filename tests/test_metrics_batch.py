"""Tests for the batched DP engines and distance-matrix builders."""

import numpy as np
import pytest

from repro.metrics import (
    METRIC_NAMES,
    MetricSpec,
    cross_distance_matrix,
    get_metric,
    pad_trajectories,
    pairwise_distance_matrix,
)
from repro.metrics._dp import dtw_batch, edr_batch, erp_batch, frechet_batch, lcss_batch
from repro.metrics.point import cross_dist


def make_trajs(rng, n, max_len=14):
    return [rng.normal(size=(int(rng.integers(2, max_len)), 2)) for _ in range(n)]


class TestBatchEngines:
    def test_batch_matches_scalar_for_every_metric(self, rng):
        trajs = make_trajs(rng, 8)
        stacked, lengths = pad_trajectories(trajs)
        idx_a = np.array([0, 1, 2, 3])
        idx_b = np.array([4, 5, 6, 7])
        for name in METRIC_NAMES:
            spec = get_metric(name)
            batch = spec.batch(stacked[idx_a], stacked[idx_b], lengths[idx_a], lengths[idx_b])
            for row, (i, j) in enumerate(zip(idx_a, idx_b)):
                assert batch[row] == pytest.approx(spec(trajs[i], trajs[j])), name

    def test_padding_values_are_irrelevant(self, rng):
        """The DP read-out must not depend on what lies beyond the true
        lengths — the core guarantee that makes shared padding sound."""
        a = rng.normal(size=(5, 2))
        b = rng.normal(size=(4, 2))
        for pad_value in (0.0, 123.0, -7.5):
            pa = np.full((1, 9, 2), pad_value)
            pb = np.full((1, 9, 2), pad_value)
            pa[0, :5] = a
            pb[0, :4] = b
            cost = np.sqrt(((pa[:, :, None, :] - pb[:, None, :, :]) ** 2).sum(-1))
            got = dtw_batch(cost, np.array([5]), np.array([4]))[0]
            expected = dtw_batch(
                cross_dist(a, b)[None], np.array([5]), np.array([4])
            )[0]
            assert got == pytest.approx(expected)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((2, 3)), np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 3, 3)), np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 3, 3)), np.array([4]), np.array([1]))
        with pytest.raises(ValueError):
            dtw_batch(np.zeros((1, 3, 3)), np.array([1, 2]), np.array([1]))

    def test_erp_gap_shape_validation(self):
        cost = np.zeros((1, 3, 3))
        with pytest.raises(ValueError):
            erp_batch(cost, np.zeros((1, 4)), np.zeros((1, 3)), np.array([3]), np.array([3]))

    def test_single_point_trajectories(self, rng):
        a = rng.normal(size=(1, 2))
        b = rng.normal(size=(1, 2))
        cost = cross_dist(a, b)[None]
        ones = np.array([1])
        gap = np.linalg.norm
        assert dtw_batch(cost, ones, ones)[0] == pytest.approx(np.linalg.norm(a[0] - b[0]))
        assert frechet_batch(cost, ones, ones)[0] == pytest.approx(np.linalg.norm(a[0] - b[0]))
        match = cost <= 0.5
        assert edr_batch(match, ones, ones)[0] in (0.0, 1.0)
        assert lcss_batch(match, ones, ones)[0] in (0.0, 1.0)

    def test_mixed_lengths_in_one_batch(self, rng):
        trajs = [rng.normal(size=(k, 2)) for k in (1, 3, 9, 9, 2)]
        stacked, lengths = pad_trajectories(trajs)
        spec = get_metric("dtw")
        ia = np.array([0, 1, 2])
        ib = np.array([3, 4, 0])
        out = spec.batch(stacked[ia], stacked[ib], lengths[ia], lengths[ib])
        for row, (i, j) in enumerate(zip(ia, ib)):
            assert out[row] == pytest.approx(spec(trajs[i], trajs[j]))


class TestPadTrajectories:
    def test_shapes_and_lengths(self, rng):
        trajs = make_trajs(rng, 5)
        stacked, lengths = pad_trajectories(trajs)
        assert stacked.shape == (5, lengths.max(), 2)
        for i, t in enumerate(trajs):
            np.testing.assert_allclose(stacked[i, : len(t)], t)
            np.testing.assert_allclose(stacked[i, len(t) :], 0.0)

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            pad_trajectories([])


class TestPairwiseMatrix:
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_matrix_properties(self, name, rng):
        trajs = make_trajs(rng, 10)
        mat = pairwise_distance_matrix(trajs, name)
        assert mat.shape == (10, 10)
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), np.zeros(10))
        spec = get_metric(name)
        assert mat[2, 7] == pytest.approx(spec(trajs[2], trajs[7]))

    def test_chunking_invariance(self, rng):
        trajs = make_trajs(rng, 9)
        a = pairwise_distance_matrix(trajs, "dtw", chunk_size=3)
        b = pairwise_distance_matrix(trajs, "dtw", chunk_size=1000)
        np.testing.assert_allclose(a, b)

    def test_accepts_metric_spec(self, rng):
        trajs = make_trajs(rng, 4)
        spec = get_metric("edr", eps=0.7)
        mat = pairwise_distance_matrix(trajs, spec)
        assert mat[0, 1] == pytest.approx(spec(trajs[0], trajs[1]))

    def test_eps_parameter_forwarded(self, rng):
        trajs = make_trajs(rng, 4)
        loose = pairwise_distance_matrix(trajs, "edr", eps=10.0)
        tight = pairwise_distance_matrix(trajs, "edr", eps=1e-6)
        assert loose.sum() <= tight.sum()


class TestCrossMatrix:
    def test_values_match_scalar(self, rng):
        queries = make_trajs(rng, 3)
        base = make_trajs(rng, 5)
        mat = cross_distance_matrix(queries, base, "frechet")
        spec = get_metric("frechet")
        assert mat.shape == (3, 5)
        assert mat[1, 4] == pytest.approx(spec(queries[1], base[4]))

    def test_chunking_invariance(self, rng):
        queries = make_trajs(rng, 4)
        base = make_trajs(rng, 4)
        a = cross_distance_matrix(queries, base, "dtw", chunk_size=2)
        b = cross_distance_matrix(queries, base, "dtw", chunk_size=100)
        np.testing.assert_allclose(a, b)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in METRIC_NAMES:
            spec = get_metric(name)
            assert isinstance(spec, MetricSpec)
            assert spec.name == name

    def test_case_insensitive(self):
        assert get_metric("DTW").name == "dtw"

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_metric("manhattan")

    def test_spec_is_callable(self, rng):
        spec = get_metric("hausdorff")
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        assert spec(a, b) == pytest.approx(spec.scalar(a, b))

    def test_params_recorded(self):
        assert get_metric("edr", eps=0.9).params["eps"] == 0.9
        assert get_metric("erp", gap=(1.0, 2.0)).params["gap"] == (1.0, 2.0)
        assert get_metric("lcss").params["eps"] > 0
