"""Tests for the training-pair sampling strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KDTreeSampler, RankSampler, rank_weights, simplify_trajectory
from repro.metrics import pairwise_distance_matrix


@pytest.fixture
def distances(rng):
    pts = rng.normal(size=(30, 2))
    diff = pts[:, None] - pts[None, :]
    return np.sqrt((diff**2).sum(-1))


class TestRankWeights:
    def test_paper_formula(self):
        n = 4
        w = rank_weights(n)
        expected = np.array([2 * 4, 2 * 3, 2 * 2, 2 * 1]) / (16 + 4)
        np.testing.assert_allclose(w, expected)

    def test_sums_to_one(self):
        for n in (1, 2, 5, 50):
            assert rank_weights(n).sum() == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        w = rank_weights(10)
        assert np.all(np.diff(w) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_weights(0)


class TestRankSampler:
    def test_sample_counts(self, distances, rng):
        sampler = RankSampler(distances, sampling_number=10)
        samples = sampler.sample(3, rng)
        assert len(samples) == 10
        assert sum(s.is_near for s in samples) == 5
        assert sum(not s.is_near for s in samples) == 5

    def test_never_samples_anchor(self, distances, rng):
        sampler = RankSampler(distances, sampling_number=10)
        for anchor in range(10):
            assert all(s.sample != anchor for s in sampler.sample(anchor, rng))

    def test_near_closer_than_far(self, distances, rng):
        """The paper's guarantee: every near sample is at most as distant
        as every far sample in the mini-batch."""
        sampler = RankSampler(distances, sampling_number=12)
        for anchor in range(5):
            samples = sampler.sample(anchor, rng)
            near_d = [distances[anchor, s.sample] for s in samples if s.is_near]
            far_d = [distances[anchor, s.sample] for s in samples if not s.is_near]
            assert max(near_d) <= min(far_d) + 1e-12

    def test_weights_decrease_with_rank(self, distances, rng):
        sampler = RankSampler(distances, sampling_number=8)
        samples = sampler.sample(0, rng)
        near = [s for s in samples if s.is_near]
        near_sorted = sorted(near, key=lambda s: distances[0, s.sample])
        weights = [s.weight for s in near_sorted]
        assert weights == sorted(weights, reverse=True)

    def test_no_duplicate_samples(self, distances, rng):
        sampler = RankSampler(distances, sampling_number=20)
        samples = sampler.sample(0, rng)
        ids = [s.sample for s in samples]
        assert len(set(ids)) == len(ids)

    def test_validation(self, distances):
        with pytest.raises(ValueError):
            RankSampler(distances[:3], sampling_number=4)  # non-square
        with pytest.raises(ValueError):
            RankSampler(distances, sampling_number=3)  # odd
        with pytest.raises(ValueError):
            RankSampler(distances, sampling_number=30)  # too large


class TestSimplify:
    def test_preserves_endpoints(self, rng):
        pts = rng.normal(size=(37, 2))
        v = simplify_trajectory(pts, n_segments=10)
        np.testing.assert_allclose(v[:2], pts[0])
        np.testing.assert_allclose(v[-2:], pts[-1])

    def test_output_length(self, rng):
        assert simplify_trajectory(rng.normal(size=(20, 2)), n_segments=7).shape == (14,)

    def test_short_trajectory_interpolates(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        v = simplify_trajectory(pts, n_segments=3).reshape(3, 2)
        np.testing.assert_allclose(v[1], [0.5, 0.5])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simplify_trajectory(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError):
            simplify_trajectory(rng.normal(size=(5, 2)), n_segments=1)


class TestKDTreeSampler:
    def make(self, rng, n=25, k=4):
        trajs = [rng.normal(size=(int(rng.integers(5, 15)), 2)) for _ in range(n)]
        distances = pairwise_distance_matrix(trajs, "hausdorff")
        return KDTreeSampler(trajs, distances, k_neighbors=k), trajs, distances

    def test_sample_counts(self, rng):
        sampler, _, _ = self.make(rng, k=4)
        samples = sampler.sample(0, rng)
        assert sum(s.is_near for s in samples) == 4
        assert sum(not s.is_near for s in samples) == 4

    def test_near_are_tree_neighbors(self, rng):
        sampler, _, _ = self.make(rng, k=3)
        _, idx = sampler.tree.query(sampler.vectors[5], k=4)
        tree_neighbors = {int(i) for i in idx if i != 5}
        samples = sampler.sample(5, rng)
        near = {s.sample for s in samples if s.is_near}
        assert near <= tree_neighbors | near  # near from tree neighborhood
        assert near.issubset(tree_neighbors)

    def test_far_excludes_near_and_anchor(self, rng):
        sampler, _, _ = self.make(rng)
        samples = sampler.sample(2, rng)
        near = {s.sample for s in samples if s.is_near}
        far = {s.sample for s in samples if not s.is_near}
        assert 2 not in far
        assert not near & far

    def test_validation(self, rng):
        trajs = [rng.normal(size=(5, 2)) for _ in range(3)]
        d = np.zeros((3, 3))
        with pytest.raises(ValueError):
            KDTreeSampler(trajs, d, k_neighbors=0)
        with pytest.raises(ValueError):
            KDTreeSampler(trajs, d, k_neighbors=5)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 60))
def test_property_rank_weights_distribution(n):
    w = rank_weights(n)
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w > 0)
