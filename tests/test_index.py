"""Tests for the k-d tree and brute-force indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BruteForceIndex, KDTree, knn_brute


class TestKnnBrute:
    def test_exactness_small(self, rng):
        base = rng.normal(size=(20, 3))
        queries = rng.normal(size=(5, 3))
        dists, idx = knn_brute(base, queries, k=4)
        for q in range(5):
            full = np.linalg.norm(base - queries[q], axis=1)
            expected = np.sort(full)[:4]
            np.testing.assert_allclose(dists[q], expected, atol=1e-9)

    def test_sorted_ascending(self, rng):
        base = rng.normal(size=(30, 2))
        dists, _ = knn_brute(base, rng.normal(size=(3, 2)), k=10)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_k_validation(self, rng):
        base = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            knn_brute(base, base, k=0)
        with pytest.raises(ValueError):
            knn_brute(base, base, k=6)


class TestKDTree:
    def test_matches_brute_force(self, rng):
        pts = rng.normal(size=(200, 5))
        tree = KDTree(pts, leaf_size=8)
        queries = rng.normal(size=(10, 5))
        td, ti = tree.query_batch(queries, k=7)
        bd, bi = knn_brute(pts, queries, k=7)
        np.testing.assert_allclose(td, bd, atol=1e-9)

    def test_self_query_returns_self_first(self, rng):
        pts = rng.normal(size=(50, 3))
        tree = KDTree(pts)
        d, i = tree.query(pts[17], k=1)
        assert i[0] == 17
        assert d[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("leaf_size", [1, 2, 16, 100])
    def test_leaf_size_does_not_change_results(self, leaf_size, rng):
        pts = rng.normal(size=(60, 2))
        tree = KDTree(pts, leaf_size=leaf_size)
        d, _ = tree.query(np.zeros(2), k=5)
        ref, _ = knn_brute(pts, np.zeros((1, 2)), k=5)
        np.testing.assert_allclose(d, ref[0], atol=1e-9)

    def test_duplicate_points(self):
        pts = np.zeros((10, 2))
        tree = KDTree(pts)
        d, i = tree.query(np.zeros(2), k=3)
        np.testing.assert_allclose(d, np.zeros(3))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KDTree(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)), leaf_size=0)
        tree = KDTree(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            tree.query(np.zeros(3), k=1)
        with pytest.raises(ValueError):
            tree.query(np.zeros(2), k=6)


class TestBruteForceIndex:
    def test_query_matches_function(self, rng):
        base = rng.normal(size=(30, 4))
        index = BruteForceIndex(base)
        q = rng.normal(size=4)
        d, i = index.query(q, k=3)
        ref_d, ref_i = knn_brute(base, q[None], 3)
        np.testing.assert_allclose(d, ref_d[0])
        np.testing.assert_array_equal(i, ref_i[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            BruteForceIndex(np.zeros((0, 3)))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000), st.integers(1, 8))
def test_property_kdtree_equals_brute(seed, k):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(40, 3))
    q = rng.normal(size=(1, 3))
    tree_d, _ = KDTree(pts, leaf_size=4).query(q[0], k=k)
    brute_d, _ = knn_brute(pts, q, k=k)
    np.testing.assert_allclose(tree_d, brute_d[0], atol=1e-9)
