"""Fault-injection tests for the serving layer.

The serving contract under failure (DESIGN.md §11):

- an exception inside one batched forward fails exactly that batch's
  futures; the flusher thread and every later request stay serviceable;
- a per-request deadline shorter than the encode time yields a
  *degraded-but-exact* answer (true metric over the stored subset),
  never an exception to the caller;
- ``close()`` fails pending futures cleanly instead of hanging callers.

Encoders here are deterministic stubs (cheap arithmetic features), so
every test is fast and reproducible; faults are injected by call count.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import MicroBatcher, SimilarityServer

DIM = 4


def _embed(trajs):
    """Deterministic stand-in encoder: 4 cheap per-trajectory features."""
    out = np.zeros((len(trajs), DIM))
    for i, t in enumerate(trajs):
        p = np.asarray(t, dtype=np.float64)
        out[i] = [p[:, 0].mean(), p[:, 1].mean(), float(len(p)), p.sum()]
    return out


class FlakyEncoder:
    """Encoder raising on selected (1-based) forward calls."""

    def __init__(self, fail_on=(), exc_factory=None, delay_s=0.0):
        self.fail_on = set(fail_on)
        self.exc_factory = exc_factory or (lambda: RuntimeError("poisoned batch"))
        self.delay_s = delay_s
        self.calls = 0
        self.batch_sizes = []

    def __call__(self, trajs):
        self.calls += 1
        self.batch_sizes.append(len(trajs))
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.calls in self.fail_on:
            raise self.exc_factory()
        return _embed(trajs)


def _trajs(n, seed=0, length=6):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(length, 2)) for _ in range(n)]


def _counter(name):
    return get_registry().counter(name).value


# ---------------------------------------------------------------------------
# MicroBatcher fault isolation
# ---------------------------------------------------------------------------


def test_poisoned_batch_fails_only_its_own_futures():
    encoder = FlakyEncoder(fail_on=(2,))
    errors_before = _counter("serve.batch.errors")
    with MicroBatcher(encoder, max_batch_size=1, max_wait_ms=0.0) as batcher:
        t1, t2, t3 = _trajs(3)
        f1 = batcher.submit(t1)
        np.testing.assert_allclose(f1.result(timeout=5), _embed([t1])[0])
        f2 = batcher.submit(t2)
        with pytest.raises(RuntimeError, match="poisoned batch"):
            f2.result(timeout=5)
        # Queue stays alive: the very next request succeeds.
        f3 = batcher.submit(t3)
        np.testing.assert_allclose(f3.result(timeout=5), _embed([t3])[0])
    assert _counter("serve.batch.errors") == errors_before + 1


def test_whole_batch_gets_the_same_exception():
    encoder = FlakyEncoder(fail_on=(1,))
    failed_before = _counter("serve.batch.failed_requests")
    with MicroBatcher(encoder, max_batch_size=8, max_wait_ms=50.0) as batcher:
        futures = [batcher.submit(t) for t in _trajs(8)]
        excs = []
        for future in futures:
            with pytest.raises(RuntimeError, match="poisoned batch"):
                future.result(timeout=5)
            excs.append(future.exception())
        # One forward failed; all 8 futures carry that same exception object.
        assert encoder.calls == 1
        assert len({id(e) for e in excs}) == 1
    assert _counter("serve.batch.failed_requests") == failed_before + 8


def test_base_exception_is_contained():
    """Even a BaseException subclass must not kill the flusher thread."""

    class Poison(BaseException):
        pass

    encoder = FlakyEncoder(fail_on=(1,), exc_factory=Poison)
    with MicroBatcher(encoder, max_batch_size=1, max_wait_ms=0.0) as batcher:
        first = batcher.submit(_trajs(1)[0])
        with pytest.raises(Poison):
            first.result(timeout=5)
        follow_up = batcher.submit(_trajs(1, seed=9)[0])
        assert follow_up.result(timeout=5).shape == (DIM,)


def test_wrong_output_shape_is_a_batch_fault():
    """An encoder returning the wrong shape fails the batch, not the queue."""

    calls = []

    def bad_then_good(trajs):
        calls.append(len(trajs))
        if len(calls) == 1:
            return np.zeros((len(trajs) + 1, DIM))  # row-count mismatch
        return _embed(trajs)

    with MicroBatcher(bad_then_good, max_batch_size=1, max_wait_ms=0.0) as batcher:
        with pytest.raises(ValueError, match="encode_fn returned shape"):
            batcher.submit(_trajs(1)[0]).result(timeout=5)
        assert batcher.submit(_trajs(1)[0]).result(timeout=5).shape == (DIM,)


def test_close_fails_pending_futures_and_rejects_new_submits():
    release = threading.Event()

    def slow(trajs):
        release.wait(timeout=5)
        return _embed(trajs)

    batcher = MicroBatcher(slow, max_batch_size=1, max_wait_ms=0.0)
    inflight = batcher.submit(_trajs(1)[0])
    time.sleep(0.05)  # let the flusher pick it up
    # Queue a second request that will still be queued at close time.
    pending = batcher.submit(_trajs(1, seed=3)[0])
    release.set()
    batcher.close()
    assert inflight.result(timeout=5).shape == (DIM,)
    # The still-queued request is failed, not leaked.
    if not pending.done():
        with pytest.raises(RuntimeError):
            pending.result(timeout=5)
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(_trajs(1)[0])


def test_concurrent_submitters_all_get_answers():
    encoder = FlakyEncoder()
    trajs = _trajs(40, seed=11)
    results = {}
    with MicroBatcher(encoder, max_batch_size=8, max_wait_ms=5.0) as batcher:

        def worker(wid):
            for i in range(wid, len(trajs), 4):
                results[i] = batcher.submit(trajs[i]).result(timeout=10)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(results) == 40
    for i, traj in enumerate(trajs):
        np.testing.assert_allclose(results[i], _embed([traj])[0])
    # Coalescing happened: fewer forwards than requests.
    assert encoder.calls < 40


# ---------------------------------------------------------------------------
# SimilarityServer degradation: deadlines and poisoned encodes
# ---------------------------------------------------------------------------


@pytest.fixture
def stocked_server():
    """A server with a deterministic encoder and 10 stored trajectories."""
    with SimilarityServer(_embed, dim=DIM, max_wait_ms=1.0) as server:
        server.add_batch(_trajs(10, seed=5))
        yield server


def test_deadline_shorter_than_encode_returns_degraded(stocked_server):
    missed_before = _counter("serve.query.deadline_missed")
    query = _trajs(1, seed=99)[0]
    # Patch in a slow encode so any sane deadline is missed.
    stocked_server.batcher._encode_fn = FlakyEncoder(delay_s=0.2)
    result = stocked_server.topk(query, k=3, deadline_s=0.01)
    assert result.degraded
    assert result.source == "degraded-exact"
    assert len(result.ids) == 3
    assert not result.cache_hit
    assert _counter("serve.query.deadline_missed") == missed_before + 1


def test_degraded_answer_is_exact_on_the_subset(stocked_server):
    query = _trajs(1, seed=100)[0]
    result = stocked_server.topk(query, k=4, deadline_s=0.0)  # instant miss
    assert result.degraded
    spec = stocked_server.fallback_metric
    with stocked_server._trajs_lock:
        stored = list(stocked_server._trajs)
    exact = np.array([spec.scalar(query, s) for s in stored])
    expected = np.argsort(exact, kind="stable")[:4]
    np.testing.assert_array_equal(result.ids, expected)
    np.testing.assert_allclose(result.distances, exact[expected], atol=1e-9)
    # Distances are sorted ascending (it is a ranking, not a bag).
    assert np.all(np.diff(result.distances) >= 0)


def test_poisoned_forward_degrades_instead_of_raising():
    encoder = FlakyEncoder(fail_on=(2,))  # add_batch is call 1
    degraded_before = _counter("serve.query.degraded")
    with SimilarityServer(encoder, dim=DIM, max_wait_ms=1.0) as server:
        server.add_batch(_trajs(6, seed=21))
        bad = server.topk(_trajs(1, seed=22)[0], k=2)
        assert bad.degraded and bad.source == "degraded-exact"
        assert len(bad.ids) == 2
        # Next cache-miss query (call 3) encodes fine again.
        good = server.topk(_trajs(1, seed=23)[0], k=2)
        assert not good.degraded
        assert good.source in ("brute", "hnsw")
    assert _counter("serve.query.degraded") >= degraded_before + 1


def test_degraded_on_empty_database_returns_empty_result():
    with SimilarityServer(_embed, dim=DIM) as server:
        result = server.topk(_trajs(1, seed=31)[0], k=5, deadline_s=0.0)
    assert result.degraded
    assert result.ids.size == 0
    assert result.distances.size == 0


def test_cache_hit_bypasses_deadline(stocked_server):
    """A cached embedding answers normally even with a 0 deadline."""
    query = _trajs(1, seed=41)[0]
    warm = stocked_server.topk(query, k=2)  # populates the cache
    assert not warm.degraded
    hit = stocked_server.topk(query, k=2, deadline_s=0.0)
    assert hit.cache_hit
    assert not hit.degraded
    np.testing.assert_array_equal(hit.ids, warm.ids)


def test_topk_never_raises_even_on_unexpected_errors(stocked_server):
    """The last-resort guard: corrupt internals still yield an answer."""
    unexpected_before = _counter("serve.query.unexpected_errors")
    stocked_server.cache.get = None  # type: ignore[assignment]  # sabotage
    result = stocked_server.topk(_trajs(1, seed=51)[0], k=2)
    assert result.degraded
    assert len(result.ids) == 2
    assert _counter("serve.query.unexpected_errors") == unexpected_before + 1


def test_degraded_scan_limit_bounds_the_subset():
    with SimilarityServer(
        _embed, dim=DIM, degraded_scan_limit=4, fallback_metric="hausdorff"
    ) as server:
        server.add_batch(_trajs(9, seed=61))
        result = server.topk(_trajs(1, seed=62)[0], k=9, deadline_s=0.0)
    assert result.degraded
    # Only the first 4 stored trajectories are eligible.
    assert len(result.ids) == 4
    assert set(result.ids.tolist()) <= {0, 1, 2, 3}


def test_failed_batch_blast_radius_under_concurrency():
    """With several worker threads and one poisoned forward, every request
    still completes — some degraded, none dropped, none raising."""
    encoder = FlakyEncoder(fail_on=(3,), delay_s=0.002)
    trajs = _trajs(24, seed=71)
    results = {}
    with SimilarityServer(encoder, dim=DIM, max_batch_size=4, max_wait_ms=2.0) as server:
        server.add_batch(_trajs(8, seed=72))

        def worker(wid):
            for i in range(wid, len(trajs), 4):
                results[i] = server.topk(trajs[i], k=2)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(results) == 24
    assert all(isinstance(r.ids, np.ndarray) for r in results.values())
    degraded = sum(r.degraded for r in results.values())
    ok = sum(not r.degraded for r in results.values())
    assert degraded + ok == 24
    assert ok > 0  # the fault did not take down the whole stream


def test_server_close_is_idempotent(stocked_server):
    stocked_server.close()
    stocked_server.close()  # second close is a no-op, not an error
    with pytest.raises(RuntimeError):
        stocked_server.batcher.submit(_trajs(1)[0])


def test_future_contract_smoke():
    """submit() returns a live concurrent.futures.Future."""
    with MicroBatcher(_embed, max_batch_size=2, max_wait_ms=1.0) as batcher:
        future = batcher.submit(_trajs(1)[0])
        assert isinstance(future, Future)
        assert future.result(timeout=5).shape == (DIM,)
