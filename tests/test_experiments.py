"""Tests for the experiment harness (corpus loading, runners, formatting)."""

import numpy as np
import pytest

from repro.experiments import (
    BENCH,
    MODEL_NAMES,
    PAPER,
    SMOKE,
    Scale,
    build_model,
    effectiveness_table,
    efficiency_table,
    format_effectiveness,
    format_efficiency,
    format_sweep,
    load_corpus,
    run_model,
)


class TestScale:
    def test_presets_exist(self):
        for scale in (SMOKE, BENCH, PAPER):
            assert scale.train_size > 0
            assert scale.hidden_dim % 2 == 0

    def test_base_config_overrides(self):
        cfg = SMOKE.base_config(epochs=99)
        assert cfg["epochs"] == 99
        assert cfg["hidden_dim"] == SMOKE.hidden_dim


class TestBuildModel:
    @pytest.mark.parametrize("name", MODEL_NAMES + ("TMN-kd", "TMN-noSub", "TMN-qerror"))
    def test_all_names_build(self, name):
        model, config = build_model(name, SMOKE, seed=1)
        assert model.output_dim == SMOKE.hidden_dim
        assert config.hidden_dim == SMOKE.hidden_dim

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("GPT", SMOKE)

    def test_variant_flags(self):
        _, nm = build_model("TMN-NM", SMOKE)
        assert not nm.matching
        _, kd = build_model("TMN-kd", SMOKE)
        assert kd.sampler == "kdtree"
        _, nosub = build_model("TMN-noSub", SMOKE)
        assert not nosub.sub_loss
        _, qe = build_model("TMN-qerror", SMOKE)
        assert qe.loss == "qerror"


class TestCorpus:
    def test_load_corpus_sizes(self):
        corpus = load_corpus("porto", SMOKE, seed=0)
        assert len(corpus.train_points) == SMOKE.train_size
        assert len(corpus.test_points) == SMOKE.test_size

    def test_load_corpus_deterministic(self):
        a = load_corpus("porto", SMOKE, seed=3)
        b = load_corpus("porto", SMOKE, seed=3)
        np.testing.assert_allclose(a.train_points[0], b.train_points[0])

    def test_distance_caching(self):
        corpus = load_corpus("porto", SMOKE, seed=0)
        d1 = corpus.train_distances("hausdorff")
        d2 = corpus.train_distances("hausdorff")
        assert d1 is d2  # cached object, not recomputed

    def test_geolife_kind(self):
        corpus = load_corpus("geolife", SMOKE, seed=0)
        assert corpus.kind == "geolife"


class TestRunners:
    @pytest.fixture(scope="class")
    def corpus(self):
        return load_corpus("porto", SMOKE, seed=0)

    def test_run_model_scores(self, corpus):
        result = run_model("SRN", corpus, "hausdorff", SMOKE)
        assert set(result.scores) == {"HR-5", "HR-10", "R5@10"}
        assert all(0 <= v <= 1 for v in result.scores.values())
        assert result.train_seconds_per_epoch > 0

    def test_run_model_with_overrides(self, corpus):
        result = run_model(
            "SRN", corpus, "hausdorff", SMOKE, config_overrides={"epochs": 1}
        )
        assert result.model_name == "SRN"

    def test_effectiveness_table_rows(self, corpus):
        results = effectiveness_table(
            corpus, ["hausdorff"], SMOKE, models=("SRN", "TMN")
        )
        assert [r.model_name for r in results] == ["SRN", "TMN"]

    def test_efficiency_table_structure(self, corpus):
        rows = efficiency_table(
            corpus, SMOKE, exact_metrics=("hausdorff",), model_names=("SRN",)
        )
        assert rows[0]["method"] == "hausdorff"
        assert rows[0]["training_s"] is None
        assert rows[1]["method"] == "SRN"
        assert rows[1]["training_s"] > 0


class TestFormatting:
    def test_format_effectiveness(self):
        from repro.experiments import RunResult

        results = [
            RunResult("SRN", "dtw", "porto", {"HR-5": 0.5, "HR-10": 0.6, "R5@10": 0.7}, 1.0, 0.1),
            RunResult("TMN", "dtw", "porto", {"HR-5": 0.9, "HR-10": 0.8, "R5@10": 0.9}, 1.0, 0.1),
        ]
        text = format_effectiveness(results, ["dtw"])
        assert "DTW" in text
        assert "TMN" in text
        assert "0.9000*" in text  # best marker

    def test_format_effectiveness_empty(self):
        assert "no results" in format_effectiveness([], ["dtw"])

    def test_format_efficiency(self):
        rows = [
            {"method": "dtw", "training_s": None, "inference_s": None, "computation_s": 1.5},
            {"method": "SRN", "training_s": 2.0, "inference_s": 0.001, "computation_s": 1e-6},
        ]
        text = format_efficiency(rows)
        assert "/" in text
        assert "SRN" in text

    def test_format_sweep(self):
        text = format_sweep("dim sweep", [16, 32], [{"HR-5": 0.4}, {"HR-5": 0.6}])
        assert "dim sweep" in text
        assert "16" in text

    def test_format_sweep_validation(self):
        with pytest.raises(ValueError):
            format_sweep("x", [1, 2], [{"a": 1.0}])
