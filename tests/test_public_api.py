"""Sanity checks on the public API surface: exports resolve, __all__ is
accurate, the linter's static view agrees with the imported one, and the
package-level quickstart from the docstring runs."""

import ast
import importlib
from pathlib import Path

import pytest

from repro.analysis.rules.api import declared_all, public_surface

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.autograd",
    "repro.obs",
    "repro.nn",
    "repro.optim",
    "repro.metrics",
    "repro.data",
    "repro.index",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} in __all__ but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_static_all_matches_runtime(name):
    """The linter's parsed view of __all__ must equal the imported one.

    This is what lets rule R005 reason about the API without importing:
    if the two ever diverge (e.g. __all__ mutated at import time), the
    static guarantees stop meaning anything.
    """
    module = importlib.import_module(name)
    tree = ast.parse(Path(module.__file__).read_text())
    static = declared_all(tree)
    assert static is not None, f"{name}: __all__ is not a literal list"
    assert sorted(static) == sorted(module.__all__), name


@pytest.mark.parametrize("name", PACKAGES)
def test_public_surface_is_exported(name):
    """Every public top-level def/class must appear in __all__ (R005)."""
    module = importlib.import_module(name)
    tree = ast.parse(Path(module.__file__).read_text())
    for node in public_surface(tree):
        assert node.name in module.__all__, f"{name}.{node.name} unexported"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_smoke():
    """The snippet advertised in repro.__doc__ must actually run."""
    import numpy as np

    from repro import TMN, TMNConfig, Trainer, make_dataset, prepare

    corpus, _ = prepare(make_dataset("porto", 80, seed=0))
    train, test = corpus.split(0.5, rng=np.random.default_rng(0))
    config = TMNConfig(hidden_dim=8, epochs=1, sampling_number=4)
    model = TMN(config)
    Trainer(model, config, metric="dtw").fit(train.points_list)
    embeddings = model.encode(test.points_list)
    assert embeddings.shape == (len(test), 8)
