"""Additional coverage: positional encodings, JSON meta coercion, combined
config variants, dataset metadata propagation."""

import json

import numpy as np
import pytest

from repro.baselines.t3s import _sinusoidal_table
from repro.core import TMN, TMNConfig, Trainer
from repro.data import TrajectoryDataset, Trajectory, make_dataset
from repro.io import _json_safe, save_dataset


class TestSinusoidalTable:
    def test_shape(self):
        assert _sinusoidal_table(10, 8).shape == (10, 8)

    def test_first_row_is_sin_cos_of_zero(self):
        table = _sinusoidal_table(4, 6)
        np.testing.assert_allclose(table[0, 0::2], 0.0)  # sin(0)
        np.testing.assert_allclose(table[0, 1::2], 1.0)  # cos(0)

    def test_values_bounded(self):
        table = _sinusoidal_table(50, 16)
        assert np.all(np.abs(table) <= 1.0)

    def test_rows_distinct(self):
        table = _sinusoidal_table(20, 8)
        assert not np.allclose(table[1], table[2])

    def test_odd_dimension(self):
        table = _sinusoidal_table(5, 7)
        assert table.shape == (5, 7)


class TestJsonSafe:
    def test_numpy_scalars_coerced(self):
        out = _json_safe({"a": np.float64(1.5), "b": np.int64(2)})
        json.dumps(out)  # must not raise
        assert out == {"a": 1.5, "b": 2}

    def test_nested_containers(self):
        out = _json_safe({"l": [np.int32(1), (np.float32(2.0),)]})
        json.dumps(out)
        assert out["l"][0] == 1

    def test_passthrough_plain_types(self):
        assert _json_safe({"x": "y", "z": 3}) == {"x": "y", "z": 3}

    def test_dataset_meta_with_numpy_values_saves(self, tmp_path, rng):
        ds = TrajectoryDataset(
            [Trajectory(rng.normal(size=(3, 2)))],
            meta={"scale": np.float64(2.0)},
        )
        save_dataset(ds, tmp_path / "d")  # must not raise on json.dumps


class TestCombinedConfigVariants:
    def test_gru_kdtree_qerror_all_together(self, rng):
        """The exotic corner: every non-default option at once."""
        trajs = [rng.normal(size=(int(rng.integers(8, 14)), 2)) for _ in range(10)]
        cfg = TMNConfig(
            hidden_dim=8,
            epochs=1,
            sampling_number=4,
            backbone="gru",
            sampler="kdtree",
            kd_neighbors=2,
            loss="qerror",
            sub_loss=True,
            sub_stride=5,
            patience=5,
            seed=0,
        )
        history = Trainer(TMN(cfg), cfg, metric="lcss").fit(trajs)
        assert np.isfinite(history.final_loss)

    def test_matching_off_with_gru(self, rng):
        cfg = TMNConfig(
            hidden_dim=8, sampling_number=4, matching=False, backbone="gru", seed=0
        )
        model = TMN(cfg)
        trajs = [rng.normal(size=(5, 2))]
        emb, _ = model.embed_pair(trajs, trajs)
        assert emb.shape == (1, 8)
        assert not model.requires_pair_interaction


class TestDatasetMetadata:
    def test_split_preserves_meta_and_names(self):
        ds = make_dataset("porto", 20, seed=0)
        train, test = ds.split(0.5, rng=np.random.default_rng(0))
        assert train.meta["kind"] == "porto"
        assert train.name.endswith("-train")
        assert test.name.endswith("-test")

    def test_indexing_preserves_meta(self):
        ds = make_dataset("geolife", 10, seed=0)
        subset = ds[:4]
        assert subset.meta["kind"] == "geolife"
