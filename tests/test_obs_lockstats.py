"""Tier-1 tests for the runtime lock sanitizer (``repro.obs.lockstats``).

Covers the factory gating (plain locks when disabled, shims when
enabled), the per-thread held stacks, the runtime lock-order graph with
cycle detection that raises *before* blocking, self-deadlock detection
on non-reentrant re-acquire, RLock depth semantics, and the hold / wait
/ contention metrics reported through the process registry.
"""

import threading

import pytest

from repro.obs import get_registry
from repro.obs.lockstats import (
    LockOrderError,
    LockStats,
    SanitizedLock,
    SanitizedRLock,
    disable,
    enable,
    get_lockstats,
    held_lock_names,
    is_enabled,
    new_lock,
    new_rlock,
)


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test; restore state and graph after."""
    was_enabled = is_enabled()
    enable()
    get_lockstats().reset()
    try:
        yield get_lockstats()
    finally:
        get_lockstats().reset()
        if not was_enabled:
            disable()


class TestFactories:
    def test_disabled_factories_return_plain_locks(self):
        was_enabled = is_enabled()
        disable()
        try:
            lock = new_lock("t.plain")
            rlock = new_rlock("t.plain_r")
            assert not isinstance(lock, SanitizedLock)
            assert not isinstance(rlock, SanitizedRLock)
            # Plain lock contract still works.
            with lock, rlock:
                pass
        finally:
            if was_enabled:
                enable()

    def test_enabled_factories_return_shims(self, sanitized):
        assert isinstance(new_lock("t.shim"), SanitizedLock)
        assert isinstance(new_rlock("t.shim_r"), SanitizedRLock)


class TestHeldStacks:
    def test_held_names_track_acquisition_order(self, sanitized):
        a = new_lock("t.a")
        b = new_lock("t.b")
        with a:
            with b:
                assert held_lock_names() == ["t.a", "t.b"]
            assert held_lock_names() == ["t.a"]
        assert held_lock_names() == []

    def test_stacks_are_per_thread(self, sanitized):
        lock = new_lock("t.mine")
        seen = {}

        def other():
            seen["held"] = held_lock_names()

        with lock:
            t = threading.Thread(target=other, daemon=True)
            t.start()
            t.join()
        assert seen["held"] == []

    def test_release_without_acquire_raises(self, sanitized):
        lock = new_lock("t.never")
        with pytest.raises(RuntimeError, match="not held"):
            lock.release()


class TestOrderChecking:
    def test_reversed_order_raises_before_blocking(self, sanitized):
        a = new_lock("t.first")
        b = new_lock("t.second")
        with a:
            with b:
                pass
        # Nothing is actually held, so a real deadlock is impossible —
        # the graph alone must reject the reversed order.
        with b:
            with pytest.raises(LockOrderError, match="cycle"):
                a.acquire()
        assert held_lock_names() == []

    def test_consistent_order_is_fine(self, sanitized):
        a = new_lock("t.outer")
        b = new_lock("t.inner")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitized.cycles() == []
        assert "t.inner" in sanitized.order_graph()["t.outer"]

    def test_nonreentrant_reacquire_raises(self, sanitized):
        lock = new_lock("t.once")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()

    def test_rlock_reentry_counts_depth(self, sanitized):
        lock = new_rlock("t.deep")
        with lock:
            with lock:
                assert held_lock_names() == ["t.deep"]
            # Inner release must not drop the outer hold.
            assert held_lock_names() == ["t.deep"]
        assert held_lock_names() == []

    def test_transitive_cycle_detected(self, sanitized):
        a = new_lock("t.x")
        b = new_lock("t.y")
        c = new_lock("t.z")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError, match="t.x"):
                a.acquire()


class TestMetrics:
    def test_acquisitions_and_hold_time_reported(self, sanitized):
        registry = get_registry()
        registry.counter("lock.t.counted.acquisitions").reset()
        lock = new_lock("t.counted")
        with lock:
            pass
        with lock:
            pass
        assert registry.counter("lock.t.counted.acquisitions").value == 2
        hold = registry.histogram("lock.t.counted.hold_seconds")
        assert hold.count >= 2

    def test_contention_counted_and_wait_timed(self, sanitized):
        registry = get_registry()
        registry.counter("lock.t.busy.contended").reset()
        lock = new_lock("t.busy")
        ready = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                ready.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert ready.wait(timeout=5.0)
        # This acquire must block until the holder lets go.
        got = {"ok": False}

        def contender():
            with lock:
                got["ok"] = True

        c = threading.Thread(target=contender, daemon=True)
        c.start()
        release.set()
        c.join(timeout=5.0)
        t.join(timeout=5.0)
        assert got["ok"]
        assert registry.counter("lock.t.busy.contended").value >= 1
        assert registry.histogram("lock.t.busy.wait_seconds").count >= 1

    def test_nonblocking_acquire_fails_fast_without_contention_count(
        self, sanitized
    ):
        registry = get_registry()
        registry.counter("lock.t.try.contended").reset()
        lock = new_lock("t.try")
        ready = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                ready.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert ready.wait(timeout=5.0)
        assert lock.acquire(blocking=False) is False
        release.set()
        t.join(timeout=5.0)
        assert registry.counter("lock.t.try.contended").value == 0


class TestLockStatsGraph:
    def test_reset_clears_edges(self):
        stats = LockStats()
        stats.check_and_add(["a"], "b")
        assert stats.order_graph() == {"a": {"b"}, "b": set()}
        stats.reset()
        assert stats.order_graph() == {}

    def test_same_name_edges_are_skipped(self):
        # Two instances may share a display name; ordering between them
        # is unknowable, so no self-edge is recorded or raised on.
        stats = LockStats()
        stats.check_and_add(["dup"], "dup")
        assert stats.order_graph().get("dup", set()) == set()

    def test_cycles_lists_observed_cycle(self):
        stats = LockStats()
        stats.check_and_add(["a"], "b")
        # Force the reverse edge in directly: check_and_add would raise.
        stats._edges.setdefault("b", set()).add("a")
        assert stats.cycles() == [["a", "b"]]

    def test_error_names_the_chain_and_threads(self):
        stats = LockStats()
        stats.check_and_add(["a"], "b")
        with pytest.raises(LockOrderError) as err:
            stats.check_and_add(["b"], "a")
        message = str(err.value)
        assert "b" in message and "a" in message
        assert "first seen on thread" in message
