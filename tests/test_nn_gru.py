"""Tests for the GRU backbone and the backbone ablation plumbing."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.core import TMN, TMNConfig, Trainer
from repro.nn import GRU, GRUCell, gather_last


class TestGRUCell:
    def test_step_shape(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            GRUCell(0, 5)

    def test_gate_weights_gradcheck(self, rng):
        """Finite-difference check of every gate parameter through the cell.

        The input/state gradients are exercised by the full-GRU gradcheck;
        this pins the reset/update/candidate weight and bias gradients.
        """
        cell = GRUCell(2, 3, rng=rng)
        x = Tensor(rng.normal(size=(2, 2)))
        h = Tensor(rng.normal(size=(2, 3)))

        def run(w_ih, w_hh, bias, w_in, w_hn, bias_n):
            cell.weight_ih = w_ih
            cell.weight_hh = w_hh
            cell.bias = bias
            cell.weight_in = w_in
            cell.weight_hn = w_hn
            cell.bias_n = bias_n
            return cell(x, h)

        check_gradients(
            run,
            [
                rng.normal(size=(2, 6)) * 0.5,
                rng.normal(size=(3, 6)) * 0.5,
                rng.normal(size=(6,)) * 0.1,
                rng.normal(size=(2, 3)) * 0.5,
                rng.normal(size=(3, 3)) * 0.5,
                rng.normal(size=(3,)) * 0.1,
            ],
            atol=1e-4,
        )

    def test_update_gate_interpolates(self, rng):
        """With z forced to 1 the state must be carried unchanged."""
        cell = GRUCell(2, 3, rng=rng)
        cell.bias.data[3:] = 100.0  # saturate update gate towards h_prev
        h_prev = Tensor(rng.normal(size=(1, 3)))
        h = cell(Tensor(rng.normal(size=(1, 2))), h_prev)
        np.testing.assert_allclose(h.data, h_prev.data, atol=1e-3)


class TestGRU:
    def test_output_shapes(self, rng):
        gru = GRU(3, 4, rng=rng)
        out, h = gru(Tensor(rng.normal(size=(2, 6, 3))))
        assert out.shape == (2, 6, 4)
        assert h.shape == (2, 4)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            GRU(3, 4, rng=rng)(Tensor(np.ones((4, 3))))

    def test_mask_carries_state(self, rng):
        gru = GRU(3, 4, rng=rng)
        x = rng.normal(size=(1, 5, 3))
        mask = np.array([[True, True, False, False, False]])
        out, h = gru(Tensor(x), mask=mask)
        np.testing.assert_allclose(out.data[0, 4], out.data[0, 1])
        np.testing.assert_allclose(h.data[0], out.data[0, 1])

    def test_gradcheck(self, rng):
        gru = GRU(2, 3, rng=rng)
        x = rng.normal(size=(2, 3, 2))
        mask = np.array([[1, 1, 0], [1, 1, 1]], bool)

        def run(t):
            out, _ = gru(t, mask=mask)
            return gather_last(out, np.array([2, 3]))

        check_gradients(run, [x], atol=1e-4)

    def test_parameters_trainable(self, rng):
        gru = GRU(2, 3, rng=rng)
        out, _ = gru(Tensor(rng.normal(size=(2, 4, 2))))
        out.sum().backward()
        for name, p in gru.named_parameters():
            assert p.grad is not None, name


class TestBackboneAblation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TMNConfig(backbone="rnn")

    def test_tmn_with_gru_trains(self, rng):
        trajs = [rng.normal(size=(int(rng.integers(8, 14)), 2)) for _ in range(10)]
        cfg = TMNConfig(
            hidden_dim=8, epochs=1, sampling_number=4, backbone="gru", seed=0
        )
        model = TMN(cfg)
        history = Trainer(model, cfg, metric="hausdorff").fit(trajs)
        assert np.isfinite(history.final_loss)

    def test_gru_and_lstm_differ(self, rng):
        trajs = [rng.normal(size=(6, 2))]
        base = dict(hidden_dim=8, sampling_number=4, seed=0)
        lstm_model = TMN(TMNConfig(backbone="lstm", **base))
        gru_model = TMN(TMNConfig(backbone="gru", **base))
        a, _ = lstm_model.embed_pair(trajs, trajs)
        b, _ = gru_model.embed_pair(trajs, trajs)
        assert not np.allclose(a.data, b.data)

    def test_neutraj_rejects_gru(self):
        from repro.baselines import NeuTraj

        with pytest.raises(ValueError, match="LSTM backbone"):
            NeuTraj(TMNConfig(hidden_dim=8, sampling_number=4, backbone="gru"))

    def test_srn_with_gru(self, rng):
        from repro.baselines import SRN

        model = SRN(TMNConfig(hidden_dim=8, sampling_number=4, backbone="gru"))
        trajs = [rng.normal(size=(5, 2))]
        emb, _ = model.embed_pair(trajs, trajs)
        assert emb.shape == (1, 8)
