"""Merge-correctness tests for the sharded serving tier (DESIGN.md §16).

The load-bearing invariant: the scatter-gather merge over ANY shard
assignment must equal the single-index brute-force top-k EXACTLY — same
ids, same order, same distances bit for bit, including ties at the k
boundary (tie rule: lowest global id wins, the order a stable argsort
over one flat index produces).  The property tests exercise the merge in
pure numpy over random assignments at shard counts 1, 2, 4 and 7; the
``@pytest.mark.shard`` tests drive real spawned worker processes through
the same contract.
"""

import numpy as np
import pytest

from repro.serve import (
    FeatureEncoder,
    ShardedSimilarityServer,
    assign_shard,
    merge_topk,
    trajectory_key,
)

DIM = 8


def _brute_topk(emb, q, k):
    """Single flat index ground truth: squared L2, stable argsort."""
    sq = ((emb - q[None, :]) ** 2).sum(axis=1)
    order = np.argsort(sq, kind="stable")[:k]
    return sq[order], order


def _shard_parts(emb, q, assign, n_shards):
    """Per-shard (squared dists ascending, global ids) — what workers send."""
    parts = []
    for s in range(n_shards):
        gids = np.flatnonzero(assign == s)
        if not len(gids):
            parts.append((np.zeros(0), np.zeros(0, dtype=int)))
            continue
        sq = ((emb[gids] - q[None, :]) ** 2).sum(axis=1)
        order = np.argsort(sq, kind="stable")
        parts.append((sq[order], gids[order]))
    return parts


def _trajs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(int(rng.integers(6, 16)), 2)).cumsum(axis=0)
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Shard assignment
# ---------------------------------------------------------------------------


class TestAssignShard:
    def test_round_robin_covers_all_shards_evenly(self):
        shards = [assign_shard(gid, 4) for gid in range(40)]
        assert sorted(set(shards)) == [0, 1, 2, 3]
        assert all(shards.count(s) == 10 for s in range(4))

    def test_hash_strategy_is_deterministic_and_in_range(self):
        key = trajectory_key(np.ones((5, 2)))
        a = assign_shard(0, 7, strategy="hash", key=key)
        b = assign_shard(99, 7, strategy="hash", key=key)
        assert a == b  # depends only on content, not gid
        assert 0 <= a < 7

    def test_hash_strategy_requires_a_key(self):
        with pytest.raises(ValueError):
            assign_shard(0, 4, strategy="hash")

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            assign_shard(0, 4, strategy="alphabetical")


# ---------------------------------------------------------------------------
# The merge property, pure numpy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
def test_merge_matches_single_index_over_random_assignments(n_shards):
    rng = np.random.default_rng(100 + n_shards)
    n, k = 200, 12
    emb = rng.normal(size=(n, DIM))
    # Exact duplicate rows force bit-identical distances: the merge must
    # reproduce the single-index tie order, not just the same set.
    emb[50] = emb[10]
    emb[120] = emb[10]
    emb[33] = emb[77]
    for trial in range(6):
        # Half the queries ARE database rows, so distance zero (and its
        # duplicates) sits inside the top-k.
        q = emb[int(rng.integers(0, n))] if trial % 2 else rng.normal(size=DIM)
        assign = rng.integers(0, n_shards, size=n)
        dists, gids = merge_topk(_shard_parts(emb, q, assign, n_shards), k)
        exp_sq, exp_ids = _brute_topk(emb, q, k)
        assert np.array_equal(gids, exp_ids)
        assert np.array_equal(dists, exp_sq)


@pytest.mark.parametrize("n_shards", [2, 4, 7])
def test_merge_breaks_k_boundary_ties_by_lowest_gid(n_shards):
    """A tie group straddling the k boundary must resolve by global id."""
    rng = np.random.default_rng(7)
    n, k = 60, 8
    emb = rng.normal(size=(n, DIM))
    q = rng.normal(size=DIM)
    # Rows 5, 17, 29, 41, 53 are identical: five equidistant candidates.
    for gid in (17, 29, 41, 53):
        emb[gid] = emb[5]
    # Make the tie group the nearest candidates so it spans positions
    # 0..4; with k=8 the group is fully inside, shrink k to cut it.
    emb[5] = q + 1e-9
    for gid in (17, 29, 41, 53):
        emb[gid] = emb[5]
    assign = rng.integers(0, n_shards, size=n)
    for k_cut in (3, 5, 8):
        dists, gids = merge_topk(_shard_parts(emb, q, assign, n_shards), k_cut)
        exp_sq, exp_ids = _brute_topk(emb, q, k_cut)
        assert np.array_equal(gids, exp_ids), (k_cut, gids, exp_ids)
        assert np.array_equal(dists, exp_sq)
        # The tie group members selected are exactly the lowest gids.
        tie = [g for g in gids if g in (5, 17, 29, 41, 53)]
        assert tie == sorted((5, 17, 29, 41, 53))[: len(tie)]


def test_merge_handles_empty_parts_and_small_k():
    dists, gids = merge_topk([(np.zeros(0), np.zeros(0, dtype=int))], 5)
    assert len(dists) == 0 and len(gids) == 0
    parts = [(np.array([2.0, 3.0]), np.array([4, 1])), (np.array([1.0]), np.array([9]))]
    dists, gids = merge_topk(parts, 2)
    assert list(gids) == [9, 4]
    assert list(dists) == [1.0, 2.0]
    dists, gids = merge_topk(parts, 0)
    assert len(gids) == 0


# ---------------------------------------------------------------------------
# End to end through real worker processes
# ---------------------------------------------------------------------------


@pytest.mark.shard
@pytest.mark.parametrize("n_shards,strategy", [(1, "round-robin"), (3, "hash")])
def test_sharded_topk_is_exact_over_processes(n_shards, strategy):
    """Process-pool answers match the flat brute force bit for bit."""
    trajs = _trajs(36, seed=3)
    enc = FeatureEncoder(dim=DIM, seed=0)
    emb = np.asarray(enc(trajs), dtype=np.float64)
    srv = ShardedSimilarityServer(
        enc,
        dim=DIM,
        n_shards=n_shards,
        strategy=strategy,
        brute_threshold=10**9,  # exact path in every worker
        shard_deadline_s=30.0,
    )
    try:
        srv.add_batch(trajs)
        rng = np.random.default_rng(11)
        for _ in range(4):
            q = rng.normal(size=(9, 2)).cumsum(axis=0)
            qe = np.asarray(enc([q]), dtype=np.float64)[0]
            exp_sq, exp_ids = _brute_topk(emb, qe, 5)
            result = srv.topk(q, k=5)
            assert not result.degraded
            assert result.source == "sharded"
            assert np.array_equal(result.ids, exp_ids)
            assert np.array_equal(result.distances, np.sqrt(exp_sq))
        # Cache hit path returns the identical answer.
        again = srv.topk(q, k=5)
        assert again.cache_hit
        assert np.array_equal(again.ids, exp_ids)
    finally:
        srv.close()


@pytest.mark.shard
def test_hnsw_path_matches_in_process_replica():
    """Worker HNSW answers equal a replica rebuilt from its state dump."""
    from repro.index.hnsw import HNSWIndex
    from repro.serve.shard import _shard_search

    trajs = _trajs(48, seed=5)
    enc = FeatureEncoder(dim=DIM, seed=0)
    srv = ShardedSimilarityServer(
        enc,
        dim=DIM,
        n_shards=2,
        brute_threshold=0,  # force the HNSW path in every worker
        shard_deadline_s=30.0,
    )
    try:
        srv.add_batch(trajs)
        replicas = []
        for i in range(2):
            dump = srv.dump_shard(i)
            replicas.append(
                (HNSWIndex.from_state(dump["state"]), np.asarray(dump["gids"]))
            )
        q = np.linspace(0, 1, 16).reshape(8, 2)
        result = srv.topk(q, k=4)
        assert not result.degraded
        qe = srv.cache.get(trajectory_key(q))
        assert qe is not None
        parts = [
            _shard_search(index, gids, qe, 4, srv._spec)
            for index, gids in replicas
        ]
        exp_sq, exp_ids = merge_topk(parts, 4)
        assert np.array_equal(result.ids, exp_ids)
        assert np.array_equal(result.distances, np.sqrt(exp_sq))
    finally:
        srv.close()


@pytest.mark.shard
def test_add_after_serving_is_visible():
    trajs = _trajs(20, seed=9)
    enc = FeatureEncoder(dim=DIM, seed=0)
    srv = ShardedSimilarityServer(
        enc, dim=DIM, n_shards=2, brute_threshold=10**9, shard_deadline_s=30.0
    )
    try:
        srv.add_batch(trajs[:12])
        probe = trajs[15]
        first = srv.topk(probe, k=1)
        assert first.ids[0] < 12
        gid = srv.add(probe)
        assert gid == 12
        hit = srv.topk(np.asarray(probe) + 0.0, k=1)
        assert hit.ids[0] == 12  # the trajectory itself is now nearest
        assert hit.distances[0] == 0.0
    finally:
        srv.close()
