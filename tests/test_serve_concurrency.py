"""Concurrency-discipline tests for the serve tier.

The static C-rules prove lock discipline lexically; these tests exercise
it dynamically: the cache's atomic hit/miss accounting under a
multi-thread get/put race, MicroBatcher shutdown semantics (idempotent
close, submit-after-close, barrier-synchronised interleavings), the
bench harness restoring ``sys.setswitchinterval`` on the SLO-violation
exit path, and a full server workload under the runtime lock sanitizer
with an asserted-empty lock-order cycle set.
"""

import sys
import threading

import numpy as np
import pytest

from repro.obs import SLO, SLOViolation, get_registry
from repro.obs.lockstats import disable, enable, get_lockstats, is_enabled
from repro.serve import (
    EmbeddingCache,
    MicroBatcher,
    SimilarityServer,
    run_serve_bench,
    trajectory_key,
)

DIM = 3


def _embed(trajs):
    out = np.zeros((len(trajs), DIM))
    for i, t in enumerate(trajs):
        p = np.asarray(t, dtype=np.float64)
        out[i] = [p[:, 0].mean(), p[:, 1].mean(), float(len(p))]
    return out


def _trajs(n, seed=0, length=5):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(length, 2)) for _ in range(n)]


@pytest.fixture
def sanitizer():
    """Run one test under the lock sanitizer; restore state afterwards."""
    was_enabled = is_enabled()
    enable()
    get_lockstats().reset()
    try:
        yield get_lockstats()
    finally:
        get_lockstats().reset()
        if not was_enabled:
            disable()


# ---------------------------------------------------------------------------
# EmbeddingCache: atomic hit/miss accounting under racing threads
# ---------------------------------------------------------------------------


class TestCacheRace:
    def test_counters_stay_exact_under_get_put_race(self):
        """The C005 regression: probe + tally are one critical section.

        Several threads hammer overlapping get/put cycles; whatever the
        interleaving, every get is counted exactly once, so hits + misses
        must equal the number of get calls exactly — a torn read-modify-
        write of the counters would lose increments under this load.
        """
        cache = EmbeddingCache(capacity=8)
        keys = [trajectory_key(t) for t in _trajs(16, seed=3)]
        gets_per_thread = 400
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        embedding = np.zeros(DIM)

        def worker(tid):
            barrier.wait()
            rng = np.random.default_rng(tid)
            for _ in range(gets_per_thread):
                key = keys[int(rng.integers(len(keys)))]
                if cache.get(key) is None:
                    cache.put(key, embedding)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert cache.hits + cache.misses == n_threads * gets_per_thread
        assert cache.hit_rate == cache.hits / (cache.hits + cache.misses)
        assert len(cache) <= 8

    def test_hit_rate_is_consistent_snapshot(self):
        cache = EmbeddingCache(capacity=4)
        key = trajectory_key(_trajs(1)[0])
        assert cache.get(key) is None
        cache.put(key, np.zeros(DIM))
        assert cache.get(key) is not None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5


# ---------------------------------------------------------------------------
# MicroBatcher shutdown discipline
# ---------------------------------------------------------------------------


class TestBatcherShutdown:
    def test_close_is_idempotent(self):
        batcher = MicroBatcher(_embed, max_batch_size=4, max_wait_ms=1.0)
        batcher.close()
        batcher.close()  # second close must be a no-op, not an error
        batcher.close(timeout=0.0)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(_embed, max_batch_size=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(_trajs(1)[0])

    def test_concurrent_close_and_submit_never_strand_a_future(self):
        """Every accepted future resolves: with a result, or with the
        close error — no future may hang after close() returns."""
        for round_ in range(5):
            batcher = MicroBatcher(
                _embed, max_batch_size=4, max_wait_ms=1.0, name=f"t{round_}"
            )
            barrier = threading.Barrier(2)
            futures = []
            rejected = []

            def submitter():
                barrier.wait()
                for traj in _trajs(50, seed=round_):
                    try:
                        futures.append(batcher.submit(traj))
                    except RuntimeError:
                        rejected.append(traj)
                        break

            def closer():
                barrier.wait()
                batcher.close()

            threads = [
                threading.Thread(target=submitter, daemon=True),
                threading.Thread(target=closer, daemon=True),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            batcher.close()
            for future in futures:
                # Accepted before close finished: must be resolved either
                # way, within a bounded wait.
                exc = future.exception(timeout=5.0)
                if exc is not None:
                    assert "closed" in str(exc)

    def test_barrier_interleaving_under_sanitizer_is_cycle_free(
        self, sanitizer
    ):
        """Two threads drive batcher + cache + server concurrently with a
        barrier start; the sanitizer must observe zero order cycles."""
        with SimilarityServer(
            _embed, dim=DIM, max_batch_size=4, max_wait_ms=1.0
        ) as server:
            server.add_batch(_trajs(12, seed=1))
            queries = _trajs(8, seed=2, length=6)
            barrier = threading.Barrier(2)
            results = [None, None]

            def worker(tid):
                barrier.wait()
                out = []
                for q in queries:
                    out.append(server.topk(q, k=3))
                results[tid] = out

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)

        assert all(r is not None and len(r) == len(queries) for r in results)
        assert sanitizer.cycles() == []
        # The named serve locks actually went through the shims: every
        # cache probe acquires the instrumented serve.cache lock.
        acquisitions = get_registry().counter("lock.serve.cache.acquisitions")
        assert acquisitions.value > 0


# ---------------------------------------------------------------------------
# Bench harness: switch-interval restoration on the failure path
# ---------------------------------------------------------------------------


class TestBenchSwitchInterval:
    def test_interval_restored_when_slo_enforcement_raises(self):
        before = sys.getswitchinterval()
        impossible = [
            SLO(name="p99-0s", kind="latency", threshold=0.0, percentile=99.0)
        ]
        with pytest.raises(SLOViolation):
            run_serve_bench(
                n_db=4,
                n_queries=6,
                workers=2,
                naive_queries=1,
                hidden_dim=4,
                slos=impossible,
                enforce_slos=True,
            )
        assert sys.getswitchinterval() == before

    def test_interval_restored_on_success(self):
        before = sys.getswitchinterval()
        run_serve_bench(
            n_db=4,
            n_queries=6,
            workers=2,
            naive_queries=1,
            hidden_dim=4,
            enforce_slos=False,
        )
        assert sys.getswitchinterval() == before
