"""Tests for the gradient-checking utilities themselves."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numeric_gradient


def test_numeric_gradient_of_square():
    x = np.array([1.0, 2.0, 3.0])
    grad = numeric_gradient(lambda t: t * t, [x], index=0)
    np.testing.assert_allclose(grad, 2 * x, atol=1e-5)


def test_numeric_gradient_two_inputs():
    a = np.array([2.0])
    b = np.array([5.0])
    grad_b = numeric_gradient(lambda x, y: x * y, [a, b], index=1)
    np.testing.assert_allclose(grad_b, a, atol=1e-5)


def test_check_gradients_passes_for_correct_op():
    assert check_gradients(lambda t: (t * 3).tanh(), [np.array([0.2, -0.4])])


def test_check_gradients_detects_wrong_gradient():
    # A deliberately broken op: forward x^2 but gradient of identity.
    def broken(t: Tensor) -> Tensor:
        out_data = t.data**2

        def backward(grad, a=t):
            out._send(a, grad)  # wrong: should be grad * 2x

        out = Tensor._make(out_data, (t,), backward)
        return out

    with pytest.raises(AssertionError, match="gradient mismatch"):
        check_gradients(broken, [np.array([1.0, 2.0])])


def test_check_gradients_handles_unused_input():
    # Second input does not influence the output: gradient must be zero.
    assert check_gradients(lambda x, y: x.sum() + 0.0 * y.sum(), [np.ones(2), np.ones(3)])


def test_subtraction_gradient():
    a = np.array([0.5, -1.5, 2.0])
    b = np.array([1.0, 0.25, -0.75])
    assert check_gradients(lambda x, y: x - y, [a, b])


def test_division_gradient():
    # Denominator kept away from zero so finite differences stay accurate.
    a = np.array([0.5, -1.5, 2.0])
    b = np.array([1.0, 2.5, -1.75])
    assert check_gradients(lambda x, y: x / y, [a, b])
