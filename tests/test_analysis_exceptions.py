"""Tier-1 tests for the exception-flow rule family E001–E006.

Each rule gets at least one positive fixture (a scratch tree where the
finding is exact) and one negative fixture (the disciplined version that
must stay clean).  The end of the file covers the scope/severity
plumbing (``--scope exception``, ``--fail-on``, ``--list-rules``) and
the never-raises serving contract end-to-end: the source tree is clean,
the model proves :meth:`SimilarityServer.topk` has an empty escape set,
and mutated copies of the tree (catch narrowed, allow stripped) fail the
pass with the full propagation chain — the static side of the dynamic
fault-injection suite.
"""

import functools
import shutil
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import run_analysis
from repro.analysis import rules as _rules  # noqa: F401  (populates the registry)
from repro.analysis.registry import SCOPE_FAMILIES, format_rule_table, rules_in_family

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parents[1]


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _report(tmp_path, files, rules=None, scope=None):
    for rel, source in files.items():
        _write(tmp_path, "src/" + rel, source)
    return run_analysis(
        [tmp_path / "src"], root=tmp_path, rules=rules, scope=scope
    )


# ---------------------------------------------------------------------------
# E001 — never-raises contract
# ---------------------------------------------------------------------------


class TestE001NeverRaises:
    def test_direct_raise_escaping_contract_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def boom():
                    raise ValueError("bad input")

                # contract: never-raises
                def entry():
                    return boom()
                """
            },
            rules=["E001"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.rule == "E001"
        assert v.severity == "error"
        assert v.path == "src/mod.py"
        assert v.line == 2  # reported at the raise origin
        assert "ValueError" in v.message
        assert "entry -> boom" in v.message  # full propagation chain

    def test_cross_module_chain_is_reported(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "deep.py": """\
                def inner():
                    raise RuntimeError("deep fault")

                def middle():
                    return inner()
                """,
                "top.py": """\
                from deep import middle

                def entry():  # contract: never-raises
                    return middle()
                """,
            },
            rules=["E001"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.path == "src/deep.py"
        assert "entry -> middle -> inner" in v.message
        assert "RuntimeError" in v.message

    def test_builtin_raiser_catalogue_is_tracked(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def entry(d):  # contract: never-raises
                    return d["key"]
                """
            },
            rules=["E001"],
        )
        raised = {v.message.split(" can escape")[0].split()[-1] for v in report.violations}
        assert raised == {"IndexError", "KeyError"}
        assert any("subscript" in v.message for v in report.violations)

    def test_handled_exception_does_not_escape(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def boom():
                    raise ValueError("bad input")

                def entry():  # contract: never-raises
                    try:
                        return boom()
                    except Exception:
                        return None
                """
            },
            rules=["E001"],
        )
        assert report.ok

    def test_handler_subclass_hierarchy_is_honoured(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def entry(d):  # contract: never-raises
                    try:
                        return d["key"]
                    except LookupError:
                        return None
                """
            },
            rules=["E001"],
        )
        assert report.ok  # KeyError/IndexError are LookupErrors

    def test_bare_reraise_escapes_the_handler(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def boom():
                    raise ValueError("bad input")

                def entry():  # contract: never-raises
                    try:
                        return boom()
                    except ValueError:
                        raise
                """
            },
            rules=["E001"],
        )
        assert len(report.violations) == 1
        assert "ValueError" in report.violations[0].message

    def test_project_exception_classes_resolve_through_bases(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                class ServeFault(RuntimeError):
                    pass

                def boom():
                    raise ServeFault("degraded")

                def entry():  # contract: never-raises
                    try:
                        return boom()
                    except RuntimeError:
                        return None

                def leaky():  # contract: never-raises
                    try:
                        return boom()
                    except ValueError:
                        return None
                """
            },
            rules=["E001"],
        )
        assert len(report.violations) == 1
        assert "leaky" in report.violations[0].message
        assert "ServeFault" in report.violations[0].message


# ---------------------------------------------------------------------------
# E002 — over-broad / dead handlers
# ---------------------------------------------------------------------------


class TestE002OverbroadHandlers:
    def test_bare_except_without_reraise_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except:
                        return None
                """
            },
            rules=["E002"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.severity == "warning"
        assert "BaseException" in v.message

    def test_dead_narrow_handler_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except ZeroDivisionError:
                        return None
                """
            },
            rules=["E002"],
        )
        assert len(report.violations) == 1
        assert "dead" in report.violations[0].message
        assert "KeyError" in report.violations[0].message

    def test_baseexception_with_reraise_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except BaseException:
                        raise
                """
            },
            rules=["E002"],
        )
        assert report.ok

    def test_matching_narrow_handler_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except LookupError:
                        return None
                """
            },
            rules=["E002"],
        )
        assert report.ok

    def test_unresolved_body_suppresses_dead_claim(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(path):
                    try:
                        return open(path).read()
                    except OSError:
                        return None
                """
            },
            rules=["E002"],
        )
        assert report.ok  # open() is outside the model: no dead-handler claim


# ---------------------------------------------------------------------------
# E003 — swallowed exceptions
# ---------------------------------------------------------------------------


class TestE003SwallowedExceptions:
    def test_broad_pass_handler_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except Exception:
                        pass
                """
            },
            rules=["E003"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.severity == "warning"
        assert "swallows" in v.message

    def test_logging_handler_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                from repro.obs.log import get_logger

                log = get_logger("mod")

                def f(d):
                    try:
                        return d["k"]
                    except Exception as exc:
                        log.warning("lookup-failed", error=type(exc).__name__)
                        return None
                """
            },
            rules=["E003"],
        )
        assert report.ok

    def test_sentinel_return_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except Exception:
                        return None
                """
            },
            rules=["E003"],
        )
        assert report.ok

    def test_reraise_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except Exception as exc:
                        raise RuntimeError("wrapped") from exc
                """
            },
            rules=["E003"],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# E004 — raise inside cleanup
# ---------------------------------------------------------------------------


class TestE004RaiseInCleanup:
    def test_raise_in_finally_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(resource):
                    try:
                        return resource.read()
                    finally:
                        raise ValueError("cleanup failed")
                """
            },
            rules=["E004"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.severity == "error"
        assert "finally" in v.message

    def test_raise_in_exit_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                class Guard:
                    def __enter__(self):
                        return self

                    def __exit__(self, exc_type, exc, tb):
                        raise RuntimeError("bad cleanup")
                """
            },
            rules=["E004"],
        )
        assert len(report.violations) == 1
        assert "__exit__" in report.violations[0].message

    def test_plain_raise_and_bare_reraise_are_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                class Guard:
                    def close(self):
                        raise ValueError("not cleanup: a normal method")

                    def __exit__(self, exc_type, exc, tb):
                        try:
                            self.close()
                        except Exception:
                            raise
                """
            },
            rules=["E004"],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# E005 — exception constructed but never raised
# ---------------------------------------------------------------------------


class TestE005UnraisedException:
    def test_bare_construction_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(x):
                    if x < 0:
                        ValueError("negative input")
                    return x
                """
            },
            rules=["E005"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.severity == "error"
        assert "ValueError" in v.message
        assert "raise" in v.message

    def test_raised_and_assigned_constructions_are_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(x):
                    if x < 0:
                        raise ValueError("negative input")
                    err = ValueError("kept for later")
                    return err
                """
            },
            rules=["E005"],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# E006 — exception-unsafe lock release
# ---------------------------------------------------------------------------


class TestE006UnsafeLockRelease:
    def test_release_outside_finally_is_flagged(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                import threading

                LOCK = threading.Lock()

                def f(d):
                    LOCK.acquire()
                    value = d["k"]
                    LOCK.release()
                    return value
                """
            },
            rules=["E006"],
        )
        assert len(report.violations) == 1
        v = report.violations[0]
        assert v.severity == "error"
        assert "LOCK" in v.message
        assert "finally" in v.message

    def test_release_in_finally_is_clean(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                import threading

                LOCK = threading.Lock()

                def f(d):
                    LOCK.acquire()
                    try:
                        return d["k"]
                    finally:
                        LOCK.release()
                """
            },
            rules=["E006"],
        )
        assert report.ok

    def test_self_attribute_lock_is_resolved(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def bad_take(self, d):
                        self._lock.acquire()
                        item = d["k"]
                        self._lock.release()
                        return item
                """
            },
            rules=["E006"],
        )
        assert len(report.violations) == 1
        assert "self._lock" in report.violations[0].message


# ---------------------------------------------------------------------------
# Scope, severity and --list-rules plumbing
# ---------------------------------------------------------------------------


class TestExceptionScopePlumbing:
    def test_exception_scope_selects_the_e_family(self):
        assert "exception" in SCOPE_FAMILIES
        assert rules_in_family("exception") == [
            "E001", "E002", "E003", "E004", "E005", "E006",
        ]

    def test_fail_on_error_lets_warnings_through(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except Exception:
                        pass
                """
            },
            scope="exception",
        )
        assert [v.rule for v in report.violations] == ["E003"]
        assert report.failing("error") == []
        assert len(report.failing("warning")) == 1

    def test_inline_allow_suppresses_e_findings(self, tmp_path):
        report = _report(
            tmp_path,
            {
                "mod.py": """\
                def f(d):
                    try:
                        return d["k"]
                    except Exception:  # lint: allow(E003)
                        pass
                """
            },
            scope="exception",
        )
        assert report.ok
        assert report.suppressed_count == 1

    def test_list_rules_prints_the_generated_table(self, capsys):
        from repro.analysis import main as analysis_main

        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rules_in_family("all"):
            assert rule_id in out
        # id / family / severity columns are present.
        assert "exception" in out
        assert "warning" in out
        assert "E001" in out

    def test_cli_lint_list_rules(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "E006" in out
        assert "concurrency" in out

    def test_readme_rule_table_matches_the_registry(self):
        from repro.analysis import rules as _rules  # noqa: F401

        readme = (REPO / "README.md").read_text()
        for rule_id in rules_in_family("all"):
            assert rule_id in readme, f"README.md rule table is missing {rule_id}"
        # And the generated table itself lists every registered rule.
        table = format_rule_table()
        for rule_id in rules_in_family("all"):
            assert rule_id in table


# ---------------------------------------------------------------------------
# The never-raises serving contract, end to end
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=1)
def _real_model():
    """The exception model over the real source tree (built once)."""
    from repro.analysis import rules as _rules  # noqa: F401
    from repro.analysis.dataflow import ProjectDataflow
    from repro.analysis.engine import FileContext, ProjectContext
    from repro.analysis.exceptions import build_exception_model

    files = []
    for path in sorted((REPO / "src").rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(REPO).as_posix()
        files.append(FileContext.parse(path, rel))
    project = ProjectContext(root=REPO, files=files)
    return build_exception_model(ProjectDataflow.build(project))


def _copy_src(tmp_path):
    shutil.copytree(
        REPO / "src", tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return tmp_path / "src"


class TestNeverRaisesContract:
    def test_source_tree_is_clean_under_exception_scope(self):
        report = run_analysis([REPO / "src"], root=REPO, scope="exception")
        assert report.ok, report.format_text()

    def test_model_proves_topk_and_worker_never_raise(self):
        model = _real_model()
        contracted = {fn.key for fn in model.contracts}
        topk = "src/repro/serve/engine.py::SimilarityServer.topk"
        worker = "src/repro/serve/bench.py::run_serve_bench.worker"
        assert topk in contracted
        assert worker in contracted
        assert model.escapes[topk] == set()
        assert model.escapes[worker] == set()
        # The proof is not vacuous: the pipeline behind the guard has a
        # rich may-raise set the outer catch must discharge.
        impl = "src/repro/serve/engine.py::SimilarityServer._topk_impl"
        assert model.escapes[impl], "expected _topk_impl to have escapes"
        assert any(
            "hnsw" in esc.origin_module for esc in model.escapes[impl]
        )

    def test_model_proves_sharded_topk_never_raises(self):
        """The sharded coordinator carries the same contract as the engine.

        ``ShardedSimilarityServer.topk`` must be proven raise-free even
        though the scatter-gather path behind it can time out, lose
        workers mid-request (``ShardDeadError``) and fail remote
        encodes — the whole may-raise set has to be discharged by the
        same last-resort structure the single-process engine uses.
        """
        model = _real_model()
        contracted = {fn.key for fn in model.contracts}
        topk = "src/repro/serve/shard.py::ShardedSimilarityServer.topk"
        assert topk in contracted
        assert model.escapes[topk] == set()
        impl = "src/repro/serve/shard.py::ShardedSimilarityServer._topk_impl"
        assert model.escapes[impl], "expected sharded _topk_impl to have escapes"

    def test_narrowed_catch_fails_with_the_propagation_chain(self, tmp_path):
        """Static/dynamic agreement, static side: un-guard topk -> E001.

        Narrowing the last-resort catch makes every raise on the index
        path escape again; the pass must fail and name the same
        HNSWIndex.query path the dynamic fault test exercises.
        """
        src = _copy_src(tmp_path)
        engine = src / "repro/serve/engine.py"
        text = engine.read_text()
        needle = "        except Exception as exc:\n            # Last-resort guard"
        assert needle in text, "topk outer catch moved: update this test"
        engine.write_text(
            text.replace(
                needle,
                "        except FutureTimeoutError as exc:\n"
                "            # Last-resort guard",
            )
        )
        report = run_analysis([src], root=tmp_path, scope="exception")
        e001 = [v for v in report.violations if v.rule == "E001"]
        assert e001, "narrowed catch must void the never-raises proof"
        assert report.failing("error"), "E001 findings must gate the build"
        hnsw_hits = [v for v in e001 if v.path.endswith("index/hnsw.py")]
        assert hnsw_hits, "expected escapes rooted in HNSWIndex"
        assert any(
            "SimilarityServer.topk" in v.message
            and "HNSWIndex.query" in v.message
            for v in hnsw_hits
        ), "finding must carry the full propagation chain"

    def test_stripped_allow_fails_the_exception_scope(self, tmp_path):
        src = _copy_src(tmp_path)
        batcher = src / "repro/serve/batcher.py"
        text = batcher.read_text()
        assert "lint: allow(E002)" in text
        batcher.write_text(text.replace("lint: allow(E002)", "allow stripped"))
        report = run_analysis([src], root=tmp_path, scope="exception")
        e002 = [v for v in report.violations if v.rule == "E002"]
        assert len(e002) == 1
        assert e002[0].path.endswith("serve/batcher.py")
        assert "BaseException" in e002[0].message
        assert report.failing("warning"), "stripped allow must fail the scope gate"

    def test_dynamic_fault_matches_the_static_claim(self):
        """Static/dynamic agreement, dynamic side: query raises, topk returns."""
        from repro.serve import SimilarityServer

        dim = 4

        def embed(trajs):
            out = np.zeros((len(trajs), dim))
            for i, t in enumerate(trajs):
                p = np.asarray(t, dtype=np.float64)
                out[i] = [p[:, 0].mean(), p[:, 1].mean(), float(len(p)), p.sum()]
            return out

        rng = np.random.default_rng(7)
        trajs = [rng.normal(size=(6, 2)) for _ in range(8)]
        with SimilarityServer(embed, dim, brute_threshold=0) as server:
            server.add_batch(trajs)

            def poisoned_query(embedding, k=1, ef=None):
                raise RuntimeError("injected index fault")

            server.index.query = poisoned_query
            result = server.topk(rng.normal(size=(6, 2)), k=2)
        # The same site the static pass flags when the guard is narrowed
        # (see test_narrowed_catch_fails_with_the_propagation_chain) is
        # survivable dynamically: a degraded answer, never a raise.
        assert result.degraded
        assert len(result.ids) == 2
