"""Golden-file regression test for the training pipeline.

A fixed-seed, two-epoch TMN training run must reproduce the checked-in
loss curve and the embedding of the first training trajectory to tight
tolerances.  This pins the *numbers*, not just the shapes: any change to
the autograd engine, the samplers, the loss, the optimizer or the metric
ground truth that shifts results will fail here — intentionally.

If a numeric change is deliberate, regenerate the snapshot and review the
diff before committing it:

    make regen-golden        # = python tests/test_golden_regression.py

Tolerances are stored *in* the golden file so the assertion and the
snapshot travel together.
"""

import json
from pathlib import Path

import numpy as np

from repro import TMN, TMNConfig, Trainer

GOLDEN_PATH = Path(__file__).parent / "golden" / "trainer_golden.json"

#: The pinned scenario.  Tiny on purpose — the point is bit-level drift
#: detection, not model quality — but it exercises the full stack: the
#: matching mechanism, rank sampling, exact DTW ground truth, Adam.
CONFIG = dict(
    hidden_dim=8,
    matching=True,
    epochs=2,
    sampling_number=4,
    batch_anchors=4,
    seed=7,
)
N_TRAJS = 14
TRAJ_LEN = 8
DATA_SEED = 123
METRIC = "dtw"


def _make_trajectories():
    rng = np.random.default_rng(DATA_SEED)
    lengths = rng.integers(TRAJ_LEN - 2, TRAJ_LEN + 3, size=N_TRAJS)
    return [rng.normal(size=(int(L), 2)) for L in lengths]


def _golden_run():
    """The pinned training run; returns the snapshot payload."""
    trajs = _make_trajectories()
    model = TMN(TMNConfig(**CONFIG))
    trainer = Trainer(model, model.config, metric=METRIC)
    history = trainer.fit(trajs)
    embedding = model.encode([trajs[0]])[0]
    return {
        "config": CONFIG,
        "metric": METRIC,
        "n_trajs": N_TRAJS,
        "data_seed": DATA_SEED,
        "epoch_losses": [float(x) for x in history.epoch_losses],
        "grad_norms": [float(x) for x in history.grad_norms],
        "effective_alpha": float(trainer.effective_alpha),
        "first_embedding": [float(x) for x in embedding],
        # Explicit tolerances: loose enough for BLAS/platform jitter,
        # tight enough that any algorithmic change trips them.
        "tolerances": {"rtol": 1e-7, "atol": 1e-9},
    }


def test_trainer_matches_golden_snapshot():
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; run `make regen-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["config"] == CONFIG, (
        "golden file was generated for a different scenario; run `make regen-golden`"
    )
    fresh = _golden_run()
    rtol = golden["tolerances"]["rtol"]
    atol = golden["tolerances"]["atol"]
    np.testing.assert_allclose(
        fresh["epoch_losses"],
        golden["epoch_losses"],
        rtol=rtol,
        atol=atol,
        err_msg="loss curve drifted from the golden snapshot",
    )
    np.testing.assert_allclose(
        fresh["grad_norms"], golden["grad_norms"], rtol=rtol, atol=atol,
        err_msg="gradient norms drifted from the golden snapshot",
    )
    np.testing.assert_allclose(
        fresh["effective_alpha"], golden["effective_alpha"], rtol=rtol, atol=atol
    )
    np.testing.assert_allclose(
        fresh["first_embedding"],
        golden["first_embedding"],
        rtol=rtol,
        atol=atol,
        err_msg="first-trajectory embedding drifted from the golden snapshot",
    )


def test_golden_run_is_deterministic():
    """Two fresh runs agree exactly — the precondition for pinning at all."""
    a = _golden_run()
    b = _golden_run()
    assert a["epoch_losses"] == b["epoch_losses"]
    assert a["first_embedding"] == b["first_embedding"]


def test_golden_file_well_formed():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert len(golden["epoch_losses"]) == CONFIG["epochs"]
    assert len(golden["first_embedding"]) == CONFIG["hidden_dim"]
    assert all(np.isfinite(golden["epoch_losses"]))
    assert all(np.isfinite(golden["first_embedding"]))
    assert golden["tolerances"]["rtol"] > 0


def main():
    """Regenerate the snapshot (`make regen-golden`)."""
    payload = _golden_run()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    print(f"  epoch_losses = {payload['epoch_losses']}")
    print(f"  |first_embedding| = {np.linalg.norm(payload['first_embedding']):.6f}")


if __name__ == "__main__":
    main()
