"""Unit tests for the Tensor autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, check_gradients, is_grad_enabled, no_grad


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert not t.requires_grad

    def test_promotes_integers_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.item() == 3.5

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_numpy_returns_underlying(self):
        arr = np.ones(3)
        assert Tensor(arr).numpy() is arr

    def test_detach_cuts_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad
        c = b * 2
        c.backward()
        assert a.grad is None


class TestArithmetic:
    def test_add(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a + 3).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_radd(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((3 + a).data, [4.0, 5.0])

    def test_sub_and_rsub(self):
        a = Tensor([5.0])
        np.testing.assert_allclose((a - 2).data, [3.0])
        np.testing.assert_allclose((2 - a).data, [-3.0])

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_gradient(self):
        a = Tensor(6.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a / b).backward()
        assert a.grad == pytest.approx(1 / 3)
        assert b.grad == pytest.approx(-6 / 9)

    def test_rtruediv(self):
        a = Tensor(4.0)
        assert (8 / a).item() == pytest.approx(2.0)

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow(self):
        a = Tensor(3.0, requires_grad=True)
        (a**2).backward()
        assert a.grad == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(2.0) ** Tensor(3.0)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a + a).backward()  # d/da (a^2 + a) = 2a + 1 = 5
        assert a.grad == pytest.approx(5.0)

    def test_broadcast_add_gradients(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True)
        b = Tensor(np.ones((3, 5)))
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 5.0 * np.ones((3, 1)))


class TestMatmul:
    def test_2d(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_batched(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_broadcast_batch(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_vector_vector(self, rng):
        a = rng.normal(size=4)
        b = rng.normal(size=4)
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_vector_matrix(self, rng):
        a = rng.normal(size=4)
        b = rng.normal(size=(4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_matrix_vector(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=4)
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_value_matches_numpy(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwise:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda t: t.exp(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.relu(),
            lambda t: t.leaky_relu(),
            lambda t: t.leaky_relu(0.3),
            lambda t: t.abs(),
        ],
    )
    def test_gradcheck(self, fn, rng):
        x = rng.normal(size=(4, 3)) + 0.05  # avoid the kink exactly at 0
        check_gradients(fn, [x])

    def test_log_sqrt_gradcheck(self, rng):
        x = np.abs(rng.normal(size=(4, 3))) + 0.5
        check_gradients(lambda t: t.log(), [x])
        check_gradients(lambda t: t.sqrt(), [x])

    def test_leaky_relu_slope(self):
        t = Tensor([-10.0, 10.0])
        np.testing.assert_allclose(t.leaky_relu(0.1).data, [-1.0, 10.0])

    def test_sigmoid_range(self, rng):
        vals = Tensor(rng.normal(size=100) * 10).sigmoid().data
        assert np.all((vals > 0) & (vals < 1))


class TestReductions:
    def test_sum_axis(self, rng):
        x = rng.normal(size=(3, 4, 5))
        check_gradients(lambda t: t.sum(axis=1), [x])
        check_gradients(lambda t: t.sum(axis=(0, 2)), [x])
        check_gradients(lambda t: t.sum(axis=2, keepdims=True), [x])

    def test_mean_value(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(x).mean(axis=0).data, x.mean(axis=0))
        check_gradients(lambda t: t.mean(axis=1), [x])
        check_gradients(lambda t: t.mean(), [x])

    def test_max_gradcheck(self, rng):
        # Distinct values so the argmax is stable under perturbation.
        x = rng.permutation(12).astype(float).reshape(3, 4)
        check_gradients(lambda t: t.max(axis=1), [x])
        check_gradients(lambda t: t.max(), [x])

    def test_max_tie_splits_gradient(self):
        x = Tensor([[1.0, 1.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestShapes:
    def test_reshape(self, rng):
        x = rng.normal(size=(2, 6))
        check_gradients(lambda t: t.reshape(3, 4), [x])
        check_gradients(lambda t: t.reshape((4, 3)), [x])

    def test_transpose_default_and_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradients(lambda t: t.transpose(), [x])
        check_gradients(lambda t: t.transpose(1, 0, 2), [x])
        np.testing.assert_allclose(Tensor(x).T.data, x.T)

    def test_swapaxes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(x).swapaxes(1, 2).data, x.swapaxes(1, 2))
        check_gradients(lambda t: t.swapaxes(0, 2), [x])

    def test_expand_squeeze(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradients(lambda t: t.expand_dims(1), [x])
        y = rng.normal(size=(3, 1, 4))
        check_gradients(lambda t: t.squeeze(1), [y])

    def test_broadcast_to(self, rng):
        x = rng.normal(size=(3, 1))
        check_gradients(lambda t: t.broadcast_to((3, 5)), [x])

    def test_getitem_slice_and_fancy(self, rng):
        x = rng.normal(size=(5, 4))
        check_gradients(lambda t: t[1:3], [x])
        check_gradients(lambda t: t[[0, 2, 2]], [x])  # repeated index accumulates
        check_gradients(lambda t: t[np.array([0, 1]), np.array([2, 3])], [x])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x[[0, 0, 1]].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_zero_grad(self):
        t = Tensor(1.0, requires_grad=True)
        (t * 2).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self):
        # y = (a + a) * a: grad = 4a
        a = Tensor(3.0, requires_grad=True)
        ((a + a) * a).backward()
        assert a.grad == pytest.approx(12.0)

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(1.0, requires_grad=True)
        x = t
        for _ in range(3000):
            x = x * 1.0001
        x.backward()
        assert t.grad is not None

    def test_no_grad_context(self):
        assert is_grad_enabled()
        a = Tensor(1.0, requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2
        assert is_grad_enabled()
        assert not b.requires_grad
        assert b._backward is None

    def test_requires_grad_suppressed_inside_no_grad(self):
        with no_grad():
            t = Tensor(1.0, requires_grad=True)
        assert not t.requires_grad


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
        elements=st.floats(-3, 3, allow_nan=False),
    )
)
def test_property_sum_matches_numpy(arr):
    np.testing.assert_allclose(Tensor(arr).sum().item(), arr.sum(), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-2, 2, allow_nan=False),
    )
)
def test_property_add_backward_is_ones(arr):
    t = Tensor(arr, requires_grad=True)
    (t + 1.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(arr))
