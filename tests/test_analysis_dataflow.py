"""Tier-1 tests for the cross-module dataflow layer and the D/N rules.

Covers the :class:`~repro.analysis.dataflow.ProjectDataflow` index itself
(symbol resolution through package re-exports, cross-module MRO, call-graph
reachability from forward roots, the tape-op catalogue), the
differentiability rules D001/D002, the numerical-stability family
N001–N004, the interprocedural S001 path, and the JSON/SARIF report
round-trip.  Everything runs on deliberately broken scratch trees so the
expected findings are exact.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import FileContext, ProjectContext, run_analysis
from repro.analysis.dataflow import ProjectDataflow

pytestmark = pytest.mark.lint


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _build_flow(tmp_path, files):
    """Write a scratch tree and index it; returns (project, flow)."""
    ctxs = []
    for rel, source in files.items():
        path = _write(tmp_path, rel, source)
        ctxs.append(FileContext.parse(path, rel))
    project = ProjectContext(root=tmp_path, files=ctxs)
    return project, ProjectDataflow.build(project)


# A miniature autograd engine + model, spread over a package the way the
# real tree is: engine, layers, and a model wired through re-exports.
ENGINE = """\
    import numpy as np

    class Tensor:
        def __init__(self, data):
            self.data = np.asarray(data)

        @classmethod
        def _make(cls, data, parents, backward):
            return cls(data)

        def __add__(self, other):
            def backward(grad):
                pass

            return Tensor._make(self.data + other.data, (self, other), backward)

        def exp(self):
            out_data = np.exp(np.clip(self.data, -50.0, 50.0))

            def backward(grad):
                pass

            return Tensor._make(out_data, (self,), backward)

        def relu(self):
            out_data = np.maximum(self.data, 0.0)
            return Tensor._make(out_data, (self,), None)
    """

LAYERS = """\
    from .engine import Tensor

    class Linear:
        def __init__(self, n_in, n_out):
            self.n_in = n_in
            self.n_out = n_out

        def __call__(self, x):
            return x
    """

MODEL = """\
    from .layers import Linear

    class Model:
        def __init__(self):
            self.proj = Linear(2, 4)

        def forward(self, x):
            h = self.proj(x)
            return (h + h).exp().relu()
    """

INIT = """\
    from .engine import Tensor
    from .model import Model
    """

PKG = {
    "pkg/__init__.py": INIT,
    "pkg/engine.py": ENGINE,
    "pkg/layers.py": LAYERS,
    "pkg/model.py": MODEL,
}


class TestDataflowIndex:
    def test_module_names_and_packages(self, tmp_path):
        _, flow = _build_flow(tmp_path, PKG)
        assert set(flow.by_modname) == {"pkg", "pkg.engine", "pkg.layers", "pkg.model"}
        assert flow.by_modname["pkg"].is_package
        assert not flow.by_modname["pkg.engine"].is_package

    def test_resolve_through_package_reexport(self, tmp_path):
        files = dict(PKG)
        files["main.py"] = "from pkg import Tensor\n"
        _, flow = _build_flow(tmp_path, files)
        ref = flow.resolve(flow.modules["main.py"], "Tensor")
        assert ref is not None
        assert (ref.kind, ref.module_rel, ref.name) == ("class", "pkg/engine.py", "Tensor")

    def test_cross_module_mro(self, tmp_path):
        files = dict(PKG)
        files["pkg/sub.py"] = """\
            from .model import Model

            class Sub(Model):
                pass
            """
        _, flow = _build_flow(tmp_path, files)
        sub = flow.modules["pkg/sub.py"].classes["Sub"]
        assert [c.name for c in flow.mro(sub)] == ["Sub", "Model"]
        fwd = flow.find_method(sub, "forward")
        assert fwd is not None and fwd.module_rel == "pkg/model.py"

    def test_forward_reachability_spans_layers_and_engine(self, tmp_path):
        _, flow = _build_flow(tmp_path, PKG)
        roots = {fi.qualname for fi in flow.forward_roots()}
        assert "Model.forward" in roots
        reachable = flow.reachable_forward_graph()
        # self.proj(x) resolves through the inferred attribute type ...
        assert "pkg/layers.py::Linear.__call__" in reachable
        # ... tensor-method and operator-dunder edges hit the engine.
        assert "pkg/engine.py::Tensor.exp" in reachable
        assert "pkg/engine.py::Tensor.relu" in reachable
        assert "pkg/engine.py::Tensor.__add__" in reachable

    def test_tape_op_catalogue_tracks_backward_closures(self, tmp_path):
        _, flow = _build_flow(tmp_path, PKG)
        ops = {fi.qualname: has_backward for fi, has_backward in flow.tape_ops()}
        assert ops["Tensor.exp"] is True
        assert ops["Tensor.__add__"] is True
        assert ops["Tensor.relu"] is False  # passes None for backward


class TestD001BackwardCoverage:
    def _tree(self, tmp_path, gradcheck_ops=("exp",)):
        for rel, source in PKG.items():
            _write(tmp_path, "src/" + rel, source)
        body = "\n".join(
            f"    assert check_gradients(lambda t: t.{op}(), [data])"
            for op in gradcheck_ops
        )
        _write(
            tmp_path,
            "tests/test_grads.py",
            f"""\
            from pkg import Tensor

            def test_gradchecks():
                data = None
            {body}
            """,
        )
        return run_analysis(
            [tmp_path / "src"],
            tests_dir=tmp_path / "tests",
            root=tmp_path,
            rules=["D001"],
        )

    def test_reachable_op_without_backward_or_gradcheck(self, tmp_path):
        report = self._tree(tmp_path, gradcheck_ops=("exp",))
        findings = {(v.rule, v.path, v.message.split("`")[1]) for v in report.violations}
        # relu is reachable, has no backward closure, and no gradcheck.
        assert ("D001", "src/pkg/engine.py", "Tensor.relu") in findings
        messages = [v.message for v in report.violations if "relu" in v.message]
        assert any("no backward closure" in m for m in messages)
        assert any("no gradcheck-bearing test" in m for m in messages)
        # exp has both; __add__ has a backward but no gradcheck.
        assert not any("Tensor.exp" in v.message for v in report.violations)
        add_msgs = [v.message for v in report.violations if "__add__" in v.message]
        assert add_msgs and all("gradcheck" in m for m in add_msgs)

    def test_gradcheck_via_operator_dunder_counts(self, tmp_path):
        # `a + b` inside a gradcheck-bearing test covers __add__.
        for rel, source in PKG.items():
            _write(tmp_path, "src/" + rel, source)
        _write(
            tmp_path,
            "tests/test_grads.py",
            """\
            from pkg import Tensor

            def test_gradchecks():
                data = None
                assert check_gradients(lambda t: t.exp(), [data])
                assert check_gradients(lambda a, b: a + b, [data, data])
            """,
        )
        report = run_analysis(
            [tmp_path / "src"],
            tests_dir=tmp_path / "tests",
            root=tmp_path,
            rules=["D001"],
        )
        assert not any("__add__" in v.message for v in report.violations)

    def test_unreachable_op_is_not_audited(self, tmp_path):
        files = dict(PKG)
        # Tensor.relu is no longer on any forward path.
        files["pkg/model.py"] = """\
            from .layers import Linear

            class Model:
                def __init__(self):
                    self.proj = Linear(2, 4)

                def forward(self, x):
                    h = self.proj(x)
                    return (h + h).exp()
            """
        for rel, source in files.items():
            _write(tmp_path, "src/" + rel, source)
        report = run_analysis([tmp_path / "src"], root=tmp_path, rules=["D001"])
        assert not any("relu" in v.message for v in report.violations)


class TestD002GraphDetach:
    def _report(self, tmp_path, forward_body):
        files = dict(PKG)
        files["pkg/model.py"] = textwrap.dedent(
            """\
            from .engine import Tensor
            from .layers import Linear
            import numpy as np

            class Model:
                def __init__(self):
                    self.proj = Linear(2, 4)

                def forward(self, x):
            {body}
            """
        ).format(body=textwrap.indent(textwrap.dedent(forward_body), "        "))
        for rel, source in files.items():
            _write(tmp_path, "src/" + rel, source)
        return run_analysis([tmp_path / "src"], root=tmp_path, rules=["D002"])

    def test_rewrapping_data_is_flagged(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            h = self.proj(x)
            return Tensor(h.data * 2.0)
            """,
        )
        assert [v.rule for v in report.violations] == ["D002"]
        assert "detaching the gradient" in report.violations[0].message

    def test_asarray_of_numpy_call_is_flagged(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            h = self.proj(x)
            return np.asarray(h.numpy())
            """,
        )
        assert [v.rule for v in report.violations] == ["D002"]

    def test_no_grad_block_is_exempt(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            h = self.proj(x)
            with no_grad():
                frozen = Tensor(h.data * 2.0)
            return h
            """,
        )
        assert report.ok, report.format_text()

    def test_engine_modules_are_exempt(self, tmp_path):
        # Tensor.__add__ wraps self.data by definition; never flagged.
        for rel, source in PKG.items():
            _write(tmp_path, "src/repro/autograd/" + rel, source)
        report = run_analysis([tmp_path / "src"], root=tmp_path, rules=["D002"])
        assert not any("engine.py" in v.path for v in report.violations)


class TestStabilityRules:
    def _report(self, tmp_path, source, rules):
        _write(tmp_path, "mod.py", source)
        return run_analysis([tmp_path], root=tmp_path, rules=rules)

    def test_n001_unguarded_exp(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def softmax(x):
                return np.exp(x)
            """,
            ["N001"],
        )
        assert [(v.rule, v.line) for v in report.violations] == [("N001", 4)]

    def test_n001_max_subtraction_is_safe(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def softmax(x):
                shifted = x - x.max(axis=-1, keepdims=True)
                exps = np.exp(shifted)
                return np.exp(np.clip(x, -50.0, 50.0)) + exps
            """,
            ["N001"],
        )
        assert report.ok, report.format_text()

    def test_n001_nonpositive_argument_is_safe(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def kernel(dist, alpha):
                return np.exp(-np.abs(dist) * alpha)
            """,
            ["N001"],
        )
        # -np.abs(dist) is provably nonpositive only when alpha's sign is
        # known; the recognised idiom is nonneg * nonpositive.
        report2 = self._report(
            tmp_path / "b",
            """\
            import numpy as np

            def kernel(dist):
                return np.exp(-np.abs(dist))
            """,
            ["N001"],
        )
        assert report2.ok, report2.format_text()

    def test_n002_log_and_sqrt_guards(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def f(x, eps):
                bad_log = np.log(x)
                good_log = np.log(x + eps)
                bad_sqrt = np.sqrt(x)
                good_sqrt = np.sqrt(x * x)
                also_good = np.sqrt(np.maximum(x, 1e-12))
                return bad_log + good_log + bad_sqrt + good_sqrt + also_good
            """,
            ["N002"],
        )
        assert [(v.rule, v.line) for v in report.violations] == [
            ("N002", 4),
            ("N002", 6),
        ]

    def test_n003_division_by_sum(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def normalise(w, eps):
                total = w.sum(axis=-1, keepdims=True)
                bad = w / total
                good = w / (total + eps)
                denom = np.where(total == 0, 1, total)
                also_good = w / denom
                return bad + good + also_good
            """,
            ["N003"],
        )
        assert [(v.rule, v.line) for v in report.violations] == [("N003", 5)]

    def test_n004_float_equality(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def f(t, other):
                bad_data = t.data == other.data
                bad_const = t.value == 0.5
                sentinel_ok = t.value == 0.0
                metadata_ok = t.data.size == 1
                return bad_data, bad_const, sentinel_ok, metadata_ok
            """,
            ["N004"],
        )
        assert [(v.rule, v.line) for v in report.violations] == [
            ("N004", 4),
            ("N004", 5),
        ]

    def test_inline_allow_suppresses_and_counts(self, tmp_path):
        report = self._report(
            tmp_path,
            """\
            import numpy as np

            def f(x):
                return np.exp(x)  # lint: allow(N001)
            """,
            ["N001"],
        )
        assert report.ok
        assert report.suppressed_count == 1


class TestInterproceduralS001:
    def test_subclass_override_changes_base_wiring(self, tmp_path):
        # The base sizes its RNN through self.lstm_input_dim(); the broken
        # subclass overrides it to 3*embed_dim while still feeding embed_dim
        # features, which only the cross-module MRO walk can see.
        files = {
            "pkg/__init__.py": "from .base import Base\n",
            "pkg/nn.py": """\
                class Linear:
                    def __init__(self, n_in, n_out):
                        self.n_in = n_in
                        self.n_out = n_out

                    def __call__(self, x):
                        return x

                class LSTM:
                    def __init__(self, input_dim, hidden_dim):
                        self.input_dim = input_dim

                    def __call__(self, x, mask=None):
                        return x, None
                """,
            "pkg/base.py": """\
                from .nn import LSTM, Linear

                class Base:
                    def __init__(self, config):
                        self.config = config
                        self.point_embed = Linear(2, self.config.embed_dim)
                        self.lstm = LSTM(self.lstm_input_dim(), self.config.hidden_dim)

                    def lstm_input_dim(self):
                        return self.config.embed_dim

                    def encode_side(self, x, mask):
                        h = self.point_embed(x)
                        out, _ = self.lstm(h, mask=mask)
                        return out
                """,
            "pkg/good.py": """\
                from .base import Base

                class Good(Base):
                    pass
                """,
            "pkg/broken.py": """\
                from .base import Base

                class Broken(Base):
                    def lstm_input_dim(self):
                        return 3 * self.config.embed_dim
                """,
        }
        for rel, source in files.items():
            _write(tmp_path, "src/" + rel, source)
        report = run_analysis([tmp_path / "src"], root=tmp_path, rules=["S001"])
        assert report.violations, "expected the mis-sized subclass to be flagged"
        assert all(v.rule == "S001" for v in report.violations)
        # Only the hierarchy containing the bad override is flagged.
        assert not any("good.py" in v.path for v in report.violations)


class TestReportFormats:
    def _broken_report(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            def f(x):
                return np.exp(x)
            """,
        )
        return run_analysis([tmp_path], root=tmp_path, rules=["N001"])

    def test_json_round_trip(self, tmp_path):
        report = self._broken_report(tmp_path)
        payload = json.loads(report.to_json())
        assert payload["files_checked"] == 1
        assert payload["suppressed_count"] == 0
        assert [v["rule"] for v in payload["violations"]] == ["N001"]
        assert payload["violations"][0]["path"] == "mod.py"
        assert payload["violations"][0]["line"] == 4

    def test_sarif_round_trip(self, tmp_path):
        report = self._broken_report(tmp_path)
        sarif = json.loads(report.to_sarif())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        # The driver advertises the full catalogue, including the new families.
        assert {"D001", "D002", "N001", "N002", "N003", "N004", "S001"} <= rule_ids
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "N001"
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "mod.py"
        assert loc["region"]["startLine"] == 4
