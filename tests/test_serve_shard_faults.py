"""Fault-injection tests for the sharded serving tier (DESIGN.md §16).

The coordinator's contract under failure mirrors the single-process
engine's, with worker processes as the new blast radius:

- SIGKILL of a worker — at rest or with a request in flight — must never
  surface as an exception from ``topk``; the dead shard's portion of the
  database is answered by an exact coordinator-side scan over the
  retained embedding blocks, so the degraded answer is still *correct*;
- a worker hanging past the per-shard deadline degrades the same way,
  without the worker being declared dead (it recovers once responsive);
- with every worker gone (or the server closed) even the query embedding
  is unobtainable, and ``topk`` drops to the true-metric degraded scan —
  the same tier the engine uses;
- ``serve.shard.dead`` counts each worker death exactly once.

Faults are injected by killing real processes and via the workers'
``debug`` hook channel (``search_delay_s``), so every scenario exercises
the production queues, slab and dispatcher — not mocks.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import FeatureEncoder, ShardedSimilarityServer, exact_metric_topk

DIM = 8

pytestmark = pytest.mark.shard


def _trajs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(int(rng.integers(6, 14)), 2)).cumsum(axis=0)
        for _ in range(n)
    ]


def _counter(name):
    return get_registry().counter(name).value


def _expected(enc, trajs, q, k):
    """Flat brute-force ground truth over the encoder's embeddings."""
    emb = np.asarray(enc(trajs), dtype=np.float64)
    qe = np.asarray(enc([q]), dtype=np.float64)[0]
    sq = ((emb - qe[None, :]) ** 2).sum(axis=1)
    order = np.argsort(sq, kind="stable")[:k]
    return order, np.sqrt(sq[order])


def _server(trajs, n_shards=3, **kw):
    enc = FeatureEncoder(dim=DIM, seed=0)
    kw.setdefault("brute_threshold", 10**9)
    kw.setdefault("shard_deadline_s", 30.0)
    srv = ShardedSimilarityServer(enc, dim=DIM, n_shards=n_shards, **kw)
    srv.add_batch(trajs)
    return srv, enc


def test_sigkill_at_rest_degrades_but_stays_exact():
    trajs = _trajs(30, seed=1)
    srv, enc = _server(trajs)
    try:
        healthy = srv.topk(trajs[0], k=3)
        assert not healthy.degraded and healthy.ids[0] == 0

        dead_before = _counter("serve.shard.dead")
        srv._handles[1].process.kill()
        srv._handles[1].process.join(timeout=10)

        q = _trajs(1, seed=99)[0]
        result = srv.topk(q, k=5)
        assert result.degraded
        assert result.source == "sharded-fallback"
        exp_ids, exp_d = _expected(enc, trajs, q, 5)
        assert np.array_equal(result.ids, exp_ids)
        assert np.array_equal(result.distances, exp_d)
        assert _counter("serve.shard.dead") == dead_before + 1

        # The death is counted once, not once per query.
        q2 = _trajs(1, seed=100)[0]
        result2 = srv.topk(q2, k=5)
        exp_ids2, _ = _expected(enc, trajs, q2, 5)
        assert result2.degraded and np.array_equal(result2.ids, exp_ids2)
        assert _counter("serve.shard.dead") == dead_before + 1
        assert len(srv.live_shards) == 2
    finally:
        srv.close()


def test_sigkill_with_request_in_flight_never_raises():
    """Kill the worker while it is sleeping on our in-flight search."""
    trajs = _trajs(24, seed=2)
    srv, enc = _server(trajs, n_shards=2)
    try:
        # Prime the embedding cache so the next topk skips the encode hop
        # and is guaranteed to have a search pending on shard 0 when the
        # kill lands.
        q = _trajs(1, seed=55)[0]
        srv.topk(q, k=2)
        srv.debug_shard(0, search_delay_s=3.0)
        killer = threading.Timer(0.3, srv._handles[0].process.kill)
        killer.start()
        try:
            result = srv.topk(q, k=4)
        finally:
            killer.cancel()
        assert result.degraded
        assert result.source == "sharded-fallback"
        exp_ids, exp_d = _expected(enc, trajs, q, 4)
        assert np.array_equal(result.ids, exp_ids)
        assert np.array_equal(result.distances, exp_d)
    finally:
        srv.close()


def test_worker_hang_past_deadline_falls_back_exactly():
    trajs = _trajs(24, seed=3)
    srv, enc = _server(trajs, n_shards=2, shard_deadline_s=0.3)
    try:
        q = _trajs(1, seed=77)[0]
        srv.topk(q, k=2)  # cache the embedding: isolate the search hop
        srv.debug_shard(0, search_delay_s=1.2)
        missed_before = _counter("serve.shard.deadline_missed")
        result = srv.topk(q, k=4)
        assert result.degraded
        assert result.source == "sharded-fallback"
        exp_ids, exp_d = _expected(enc, trajs, q, 4)
        assert np.array_equal(result.ids, exp_ids)
        assert np.array_equal(result.distances, exp_d)
        assert _counter("serve.shard.deadline_missed") == missed_before + 1
        # Slow is not dead: the worker must NOT be declared lost.
        assert not srv._handles[0].dead
        assert len(srv.live_shards) == 2

        # Once the worker drains its sleep and the hook is cleared, full
        # undegraded service resumes.
        srv.debug_shard(0, search_delay_s=0.0, timeout_s=10.0)
        time.sleep(1.3)
        recovered = srv.topk(q, k=4)
        assert not recovered.degraded
        assert np.array_equal(recovered.ids, exp_ids)
    finally:
        srv.close()


def test_all_workers_dead_drops_to_true_metric_scan():
    trajs = _trajs(14, seed=4)
    srv, _ = _server(trajs, n_shards=2)
    try:
        for handle in srv._handles:
            handle.process.kill()
            handle.process.join(timeout=10)
        q = _trajs(1, seed=42)[0]
        result = srv.topk(q, k=3)
        assert result.degraded
        assert result.source == "degraded-exact"
        order, dists = exact_metric_topk(
            srv._as_points(q), [np.asarray(t) for t in trajs], srv.fallback_metric, 3
        )
        assert np.array_equal(result.ids, order)
        assert np.allclose(result.distances, dists)
        assert len(srv.live_shards) == 0
    finally:
        srv.close()


def test_topk_after_close_never_raises():
    trajs = _trajs(10, seed=5)
    srv, _ = _server(trajs, n_shards=2)
    srv.close()
    result = srv.topk(trajs[0], k=2)
    assert result.degraded
    assert result.source == "degraded-exact"
    # The query IS a stored trajectory: the exact metric ranks it first.
    assert result.ids[0] == 0
    srv.close()  # idempotent


def test_build_path_raises_on_dead_shard():
    """add_batch is the deployment path: worker death there must raise."""
    trajs = _trajs(12, seed=6)
    srv, _ = _server(trajs, n_shards=2)
    try:
        srv._handles[0].process.kill()
        srv._handles[0].process.join(timeout=10)
        with pytest.raises(Exception):
            srv.add_batch(_trajs(8, seed=7))
    finally:
        srv.close()
