"""Tests for the real-dataset parsers, using synthetic fixture files that
match the published formats exactly."""

import numpy as np
import pytest

from repro.data.loaders import load_geolife_directory, load_geolife_plt, load_porto_csv

GEOLIFE_SAMPLE = """Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04
39.984683,116.31845,0,492,39744.1202546296,2008-10-23,02:53:10
39.984686,116.318417,0,492,39744.1203125,2008-10-23,02:53:15
"""

PORTO_SAMPLE = (
    '"TRIP_ID","CALL_TYPE","POLYLINE"\n'
    '"T1","A","[[-8.618643,41.141412],[-8.618499,41.141376],[-8.620326,41.14251]]"\n'
    '"T2","B","[]"\n'
    '"T3","C","[[-8.61,41.14]]"\n'
    '"T4","A","[[-8.63,41.15],[-8.64,41.16]]"\n'
)


@pytest.fixture
def geolife_file(tmp_path):
    p = tmp_path / "Data" / "000" / "Trajectory" / "20081023025304.plt"
    p.parent.mkdir(parents=True)
    p.write_text(GEOLIFE_SAMPLE)
    return p


@pytest.fixture
def porto_file(tmp_path):
    p = tmp_path / "train.csv"
    p.write_text(PORTO_SAMPLE)
    return p


class TestGeolife:
    def test_parses_points(self, geolife_file):
        traj = load_geolife_plt(geolife_file)
        assert len(traj) == 3
        # Stored as (lon, lat).
        np.testing.assert_allclose(traj.points[0], [116.318417, 39.984702])

    def test_timestamps_increase(self, geolife_file):
        traj = load_geolife_plt(geolife_file)
        assert np.all(np.diff(traj.timestamps) > 0)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.plt"
        p.write_text("\n".join(["h"] * 6) + "\n")
        with pytest.raises(ValueError, match="no records"):
            load_geolife_plt(p)

    def test_malformed_record_rejected(self, tmp_path):
        p = tmp_path / "bad.plt"
        p.write_text("\n".join(["h"] * 6) + "\n1,2\n")
        with pytest.raises(ValueError, match="malformed"):
            load_geolife_plt(p)

    def test_directory_loader(self, geolife_file):
        root = geolife_file.parents[2]
        ds = load_geolife_directory(root)
        assert len(ds) == 1
        assert ds.meta["kind"] == "geolife"

    def test_directory_loader_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_geolife_directory(tmp_path)

    def test_directory_min_points_filter(self, geolife_file):
        root = geolife_file.parents[2]
        ds = load_geolife_directory(root, min_points=10)
        assert len(ds) == 0


class TestPorto:
    def test_parses_and_skips_degenerate(self, porto_file):
        ds = load_porto_csv(porto_file)
        # T2 (empty) and T3 (single point) skipped.
        assert len(ds) == 2
        np.testing.assert_allclose(ds[0].points[0], [-8.618643, 41.141412])

    def test_timestamps_15s(self, porto_file):
        ds = load_porto_csv(porto_file)
        np.testing.assert_allclose(np.diff(ds[0].timestamps), 15.0)

    def test_limit(self, porto_file):
        ds = load_porto_csv(porto_file, limit=1)
        assert len(ds) == 1

    def test_missing_column(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text('"A","B"\n"1","2"\n')
        with pytest.raises(ValueError, match="missing column"):
            load_porto_csv(p)

    def test_bad_polyline(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text('"POLYLINE"\n"[[not json"\n')
        with pytest.raises(ValueError, match="bad POLYLINE"):
            load_porto_csv(p)

    def test_all_degenerate_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text('"POLYLINE"\n"[]"\n')
        with pytest.raises(ValueError, match="no usable"):
            load_porto_csv(p)

    def test_pipeline_compatibility(self, porto_file):
        """Loaded data must flow through the preprocessing pipeline."""
        from repro.data import normalize

        ds = load_porto_csv(porto_file)
        out, stats = normalize(ds)
        assert len(out) == len(ds)
