"""Tests for memory accounting (`repro.obs.memory`) and its gates.

Covers the three accounting tiers (process RSS gauges, opt-in
tracemalloc allocation spans, exact serving-structure byte audits), the
``gauge_max`` SLO kind they feed, the benchgate byte tolerances, and
the two integration points: `Trainer.fit(track_memory=True)` and the
serve bench persisting its metrics snapshot even on the SLO-violation
exit path.
"""

import json

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import TMN, TMNConfig, Trainer
from repro.metrics import pairwise_distance_matrix
from repro.obs.benchgate import compare_bench, tolerance_for
from repro.obs.memory import (
    AllocSpan,
    MemoryTracker,
    alloc_span,
    format_memory,
    peak_rss_bytes,
    rss_bytes,
    tracking_active,
    update_memory_gauges,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import OpProfiler
from repro.obs.slo import (
    DEFAULT_MEMORY_SLOS,
    SLO,
    SLOViolation,
    assert_slos,
    check_slos,
    evaluate_slos,
)
from repro.serve.bench import run_serve_bench
from repro.serve.engine import SimilarityServer


class TestProcessGauges:
    def test_rss_readings_are_sane(self):
        rss = rss_bytes()
        peak = peak_rss_bytes()
        assert rss > 0
        # The high-water mark can never sit below a current reading
        # taken before it.
        assert peak >= rss

    def test_update_memory_gauges_mirrors_into_registry(self):
        reg = MetricsRegistry()
        values = update_memory_gauges(reg)
        assert reg.gauge("mem.rss_bytes").value == values["rss_bytes"]
        assert reg.gauge("mem.peak_rss_bytes").value == values["peak_rss_bytes"]
        assert "traced_bytes" not in values  # no tracemalloc session

    def test_traced_gauges_appear_while_tracking(self):
        reg = MetricsRegistry()
        with MemoryTracker():
            values = update_memory_gauges(reg)
        assert "traced_bytes" in values
        assert reg.gauge("mem.traced_peak_bytes").value is not None


class TestMemoryTracker:
    def test_context_manager_bounds_the_session(self):
        assert not tracking_active()
        with MemoryTracker():
            assert tracking_active()
        assert not tracking_active()

    def test_nested_tracker_joins_outer_session(self):
        with MemoryTracker():
            with MemoryTracker():
                assert tracking_active()
            # The inner tracker joined; the outer still owns the session.
            assert tracking_active()
        assert not tracking_active()

    def test_double_enable_rejected_disable_idempotent(self):
        tracker = MemoryTracker()
        tracker.enable()
        try:
            with pytest.raises(RuntimeError):
                tracker.enable()
        finally:
            tracker.disable()
        tracker.disable()  # idempotent
        assert not tracking_active()

    def test_nframes_validation(self):
        with pytest.raises(ValueError):
            MemoryTracker(nframes=0)


class TestAllocSpan:
    def test_untracked_span_is_a_noop(self):
        with alloc_span("unit.noop") as span:
            _ = [0] * 10_000
        assert span.tracked is False
        assert span.net_bytes == 0 and span.peak_bytes == 0

    def test_tracked_span_records_delta_and_histogram(self):
        reg = MetricsRegistry()
        with MemoryTracker():
            with alloc_span("unit.alloc", registry=reg) as span:
                keep = np.zeros(200_000)  # ~1.6 MB, held across exit
        assert span.tracked
        assert span.net_bytes > 1_000_000
        assert span.peak_bytes >= span.net_bytes
        assert reg.histogram("mem.alloc.unit.alloc").count == 1
        del keep

    def test_freed_allocations_can_net_negative(self):
        ballast = [np.zeros(100_000)]
        with MemoryTracker():
            with alloc_span("unit.free") as span:
                ballast.clear()
        assert span.tracked
        assert span.net_bytes < 0
        assert span.peak_bytes >= 0

    def test_alloc_span_returns_allocspan(self):
        assert isinstance(alloc_span("unit.type"), AllocSpan)


class TestFormatMemory:
    def test_formats_known_and_unknown_keys(self):
        text = format_memory(
            {
                "rss_bytes": 2048.0,
                "bytes_per_trajectory": 1746.0,
                "n_trajectories": 3,
            }
        )
        assert "2.0 KiB" in text
        assert "1746.0 B/traj" in text
        assert "n_trajectories" in text
        assert format_memory({}) == "(no memory stats)"


def _tiny_server():
    model = TMN(TMNConfig(hidden_dim=8, matching=False, seed=0))
    model.eval()
    return SimilarityServer(model, dim=model.output_dim, seed=0)


class TestServerMemoryStats:
    def test_gauges_and_audit_agree(self):
        reg = MetricsRegistry()
        rng = np.random.default_rng(0)
        server = _tiny_server()
        try:
            server.add_batch([rng.normal(size=(n, 2)) for n in (12, 18)])
            stats = server.memory_stats(registry=reg)
        finally:
            server.close()
        assert stats["n_trajectories"] == 2
        assert (
            reg.gauge("serve.store.bytes_per_trajectory").value
            == stats["bytes_per_trajectory"]
        )
        assert reg.gauge("serve.store.bytes").value == stats["store_bytes"]
        assert reg.gauge("serve.index.bytes").value == stats["index_bytes"]
        # The process gauges were refreshed in the same call.
        assert reg.gauge("mem.rss_bytes").value == stats["rss_bytes"]

    def test_empty_server_reports_zero_per_trajectory(self):
        server = _tiny_server()
        try:
            stats = server.memory_stats(registry=MetricsRegistry())
        finally:
            server.close()
        assert stats["n_trajectories"] == 0
        assert stats["bytes_per_trajectory"] == 0.0


class TestGaugeMaxSLO:
    def test_requires_metric_name(self):
        with pytest.raises(ValueError):
            SLO(name="bad", kind="gauge_max", threshold=1.0)

    def test_evaluate_under_over_and_missing(self):
        slo = SLO(name="budget", kind="gauge_max", threshold=100.0, metric="m")
        ok, over, missing = (
            evaluate_slos([slo], [], gauges={"m": 99.0})[0],
            evaluate_slos([slo], [], gauges={"m": 101.0})[0],
            evaluate_slos([slo], [], gauges={})[0],
        )
        assert ok.ok and ok.value == 99.0 and ok.samples == 1
        assert not over.ok and over.value == 101.0
        assert missing.ok and missing.value is None and missing.samples == 0

    def test_check_slos_reads_registry_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("serve.store.bytes_per_trajectory").set(1746.0)
        reg.gauge("mem.peak_rss_bytes").set(128 * 1024 * 1024)
        statuses = check_slos(DEFAULT_MEMORY_SLOS, registry=reg)
        assert [s.ok for s in statuses] == [True, True]
        assert statuses[1].value == 1746.0
        # Breach the per-trajectory budget: strict mode raises.
        reg.gauge("serve.store.bytes_per_trajectory").set(600.0 * 1024)
        with pytest.raises(SLOViolation, match="bytes-per-trajectory"):
            check_slos(DEFAULT_MEMORY_SLOS, registry=reg, strict=True)

    def test_assert_slos_passes_clean_statuses(self):
        reg = MetricsRegistry()
        reg.gauge("mem.peak_rss_bytes").set(1.0)
        assert_slos(check_slos(DEFAULT_MEMORY_SLOS, registry=reg))


class TestBenchgateByteTolerances:
    def test_rule_selection(self):
        bpt = tolerance_for("bytes_per_trajectory")
        assert bpt.direction == "lower" and bpt.rel == 0.10
        rss = tolerance_for("peak_rss_bytes")
        assert rss.direction == "lower" and rss.rel == 0.60
        store = tolerance_for("store_bytes")
        assert store.direction == "lower" and store.rel == 0.25

    def _payload(self, bpt, rss):
        return {
            "benches": {
                "benchmarks/test_memory_accounting.py::test_memory_accounting": {
                    "seconds": 0.5,
                    "quality": {
                        "n_db": 40.0,
                        "bytes_per_trajectory": bpt,
                        "peak_rss_bytes": rss,
                    },
                }
            }
        }

    def test_growth_beyond_band_regresses(self):
        base = self._payload(1746.0, 120e6)
        grown = self._payload(1746.0 * 1.25, 120e6)
        diff = compare_bench(grown, base)
        assert not diff.ok
        assert [d.metric for d in diff.failures] == ["bytes_per_trajectory"]

    def test_shrinkage_improves_never_fails(self):
        base = self._payload(1746.0, 120e6)
        shrunk = self._payload(873.0, 60e6)
        diff = compare_bench(shrunk, base)
        assert diff.ok
        statuses = {d.metric: d.status for d in diff.deltas}
        assert statuses["bytes_per_trajectory"] == "improved"

    def test_rss_band_absorbs_allocator_noise(self):
        base = self._payload(1746.0, 120e6)
        noisy = self._payload(1746.0, 120e6 * 1.4)  # +40% < 60% band
        assert compare_bench(noisy, base).ok


class TestTrainerTracking:
    def test_track_memory_adds_alloc_bytes_to_epoch_records(self):
        rng = np.random.default_rng(11)
        trajs = [rng.normal(size=(int(rng.integers(8, 16)), 2)) for _ in range(12)]
        distances = pairwise_distance_matrix(trajs, "hausdorff")
        cfg = TMNConfig(
            hidden_dim=8, epochs=2, sampling_number=4, batch_anchors=8, seed=0
        )
        seen = []
        trainer = Trainer(TMN(cfg), cfg, metric="hausdorff")
        trainer.fit(
            trajs, distances=distances, on_epoch=seen.append, track_memory=True
        )
        assert not tracking_active()  # session bounded to fit()
        assert [r["epoch"] for r in seen] == [1, 2]
        for record in seen:
            assert "alloc_bytes" in record

    def test_untracked_fit_omits_alloc_bytes(self):
        rng = np.random.default_rng(11)
        trajs = [rng.normal(size=(int(rng.integers(8, 16)), 2)) for _ in range(12)]
        distances = pairwise_distance_matrix(trajs, "hausdorff")
        cfg = TMNConfig(
            hidden_dim=8, epochs=1, sampling_number=4, batch_anchors=8, seed=0
        )
        seen = []
        Trainer(TMN(cfg), cfg, metric="hausdorff").fit(
            trajs, distances=distances, on_epoch=seen.append
        )
        assert all("alloc_bytes" not in r for r in seen)


class TestOpProfilerMemory:
    def test_total_bytes_column_when_tracking(self):
        with OpProfiler(track_memory=True) as prof:
            a = Tensor(np.ones((64, 64)), requires_grad=True)
            b = Tensor(np.ones((64, 64)), requires_grad=True)
            (a @ b).sum().backward()
        assert not tracking_active()
        snap = prof.snapshot()
        assert snap["__matmul__"]["total_bytes"] > 0
        from repro.obs.profile import format_op_table

        table = format_op_table(snap)
        assert "total_bytes" in table

    def test_no_column_without_tracking(self):
        with OpProfiler() as prof:
            a = Tensor(np.ones((8, 8)), requires_grad=True)
            (a + a).sum().backward()
        snap = prof.snapshot()
        assert snap["__add__"]["total_bytes"] == 0
        from repro.obs.profile import format_op_table

        assert "total_bytes" not in format_op_table(snap)


class TestBenchMetricsPersistence:
    def test_metrics_snapshot_survives_slo_violation(self, tmp_path):
        """A strict-SLO breach must still leave the evidence on disk."""
        out = tmp_path / "metrics.json"
        impossible = (
            SLO(name="impossible-latency", kind="latency", threshold=0.0),
        )
        with pytest.raises(SLOViolation, match="impossible-latency"):
            run_serve_bench(
                n_db=8,
                n_queries=12,
                workers=2,
                hidden_dim=8,
                naive_queries=1,
                seed=0,
                slos=impossible,
                metrics_out=str(out),
            )
        payload = json.loads(out.read_text())
        assert "metrics" in payload and payload["metrics"]

    def test_bench_result_carries_memory_figures(self, tmp_path):
        out = tmp_path / "metrics.json"
        result = run_serve_bench(
            n_db=8,
            n_queries=12,
            workers=2,
            hidden_dim=8,
            naive_queries=1,
            seed=0,
            metrics_out=str(out),
        )
        assert result.bytes_per_trajectory > 0
        assert result.peak_rss_bytes > 0
        assert result.to_dict()["bytes_per_trajectory"] == result.bytes_per_trajectory
        # Memory SLOs rode along with the serve defaults.
        names = {s.slo.name for s in result.slo_statuses}
        assert {"peak-rss", "bytes-per-trajectory"} <= names
        assert out.exists()
