"""Edge-case tests across modules: boundary shapes, degenerate inputs,
object-vs-array polymorphism."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import TMN, TMNConfig
from repro.data import GridMapper, Trajectory, pair_batch
from repro.eval import topk_indices
from repro.metrics import cross_dist, dtw, dtw_matrix, erp, get_metric, hausdorff


class TestAutogradEdges:
    def test_squeeze_all_axes(self, rng):
        t = Tensor(rng.normal(size=(1, 3, 1)))
        assert t.squeeze().shape == (3,)

    def test_transpose_1d_is_identity(self, rng):
        t = Tensor(rng.normal(size=4))
        np.testing.assert_allclose(t.T.data, t.data)

    def test_getitem_boolean_mask(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        t[mask].sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0, 1.0, 0.0])

    def test_scalar_tensor_arithmetic(self):
        assert (Tensor(2.0) * Tensor(3.0)).item() == 6.0

    def test_empty_like_shapes_rejected_by_metrics(self):
        with pytest.raises(ValueError):
            dtw(np.zeros((0, 2)), np.zeros((3, 2)))

    def test_zero_dim_sum(self):
        t = Tensor(5.0, requires_grad=True)
        t.sum().backward()
        assert t.grad == pytest.approx(1.0)


class TestMetricEdges:
    def test_dtw_matrix_borders_infinite(self, rng):
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        table = dtw_matrix(a, b)
        assert np.all(np.isinf(table[0, 1:]))
        assert np.all(np.isinf(table[1:, 0]))
        assert table[0, 0] == 0.0

    def test_cross_dist_transpose_symmetry(self, rng):
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(5, 2))
        np.testing.assert_allclose(cross_dist(a, b), cross_dist(b, a).T)

    def test_metrics_accept_trajectory_objects(self, rng):
        ta = Trajectory(rng.normal(size=(4, 2)))
        tb = Trajectory(rng.normal(size=(6, 2)))
        assert dtw(ta, tb) == pytest.approx(dtw(ta.points, tb.points))
        assert erp(ta, tb) == pytest.approx(erp(ta.points, tb.points))
        assert hausdorff(ta, tb) == pytest.approx(hausdorff(ta.points, tb.points))

    def test_very_long_vs_single_point(self, rng):
        long = rng.normal(size=(40, 2))
        point = rng.normal(size=(1, 2))
        expected = np.sqrt(((long - point[0]) ** 2).sum(axis=1)).sum()
        assert dtw(long, point) == pytest.approx(expected)

    def test_spec_batch_on_single_pair(self, rng):
        spec = get_metric("frechet")
        a = rng.normal(size=(1, 5, 2))
        b = rng.normal(size=(1, 5, 2))
        out = spec.batch(a, b, np.array([5]), np.array([5]))
        assert out.shape == (1,)


class TestDataEdges:
    def test_pair_batch_with_trajectory_objects(self, rng):
        a = [Trajectory(rng.normal(size=(3, 2)))]
        b = [Trajectory(rng.normal(size=(7, 2)))]
        pa, la, ma, pb, lb, mb = pair_batch(a, b)
        assert pa.shape == (1, 7, 2)
        assert la[0] == 3

    def test_grid_neighbors_radius_two(self):
        gm = GridMapper((0, 0, 1, 1), n_cells=6)
        center = gm.cell_ids(np.array([[0.5, 0.5]]))[0]
        assert len(gm.neighbors(int(center), radius=2)) == 25

    def test_single_point_trajectory_roundtrip(self):
        t = Trajectory(np.array([[1.0, 2.0]]))
        assert len(t) == 1
        assert t.prefix(1).points.shape == (1, 2)


class TestModelEdges:
    def test_tmn_single_point_pair(self, rng):
        model = TMN(TMNConfig(hidden_dim=8, sampling_number=4, seed=0))
        a = [np.array([[0.1, 0.2]])]
        b = [np.array([[0.3, 0.4]])]
        emb_a, emb_b = model.embed_pair(a, b)
        assert emb_a.shape == (1, 8)
        assert np.all(np.isfinite(emb_a.data))

    def test_tmn_very_unequal_lengths(self, rng):
        model = TMN(TMNConfig(hidden_dim=8, sampling_number=4, seed=0))
        a = [rng.normal(size=(2, 2))]
        b = [rng.normal(size=(30, 2))]
        emb_a, emb_b = model.embed_pair(a, b)
        assert np.all(np.isfinite(emb_a.data))
        assert np.all(np.isfinite(emb_b.data))

    def test_minimum_hidden_dim(self, rng):
        model = TMN(TMNConfig(hidden_dim=2, sampling_number=4, seed=0))
        trajs = [rng.normal(size=(4, 2))]
        emb, _ = model.embed_pair(trajs, trajs)
        assert emb.shape == (1, 2)


class TestEvalEdges:
    def test_topk_with_ties(self):
        mat = np.ones((3, 3))
        np.fill_diagonal(mat, 0.0)
        idx = topk_indices(mat, k=2, exclude_self=True)
        for row in range(3):
            assert row not in idx[row]

    def test_topk_k_equals_all_candidates(self, rng):
        mat = rng.random((4, 4))
        idx = topk_indices(mat, k=3, exclude_self=True)
        for row in range(4):
            assert set(idx[row]) == set(range(4)) - {row}
