"""Tests for the batched, mask-aware LSTM."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import LSTM, LSTMCell, gather_last


@pytest.fixture
def lstm(rng):
    return LSTM(3, 5, rng=rng)


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        h = Tensor(np.zeros((2, 5)))
        c = Tensor(np.zeros((2, 5)))
        h2, c2 = cell(Tensor(np.ones((2, 3))), (h, c))
        assert h2.shape == (2, 5)
        assert c2.shape == (2, 5)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        np.testing.assert_allclose(cell.bias.data[5:10], np.ones(5))
        np.testing.assert_allclose(cell.bias.data[:5], np.zeros(5))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 5)
        with pytest.raises(ValueError):
            LSTMCell(5, 0)


class TestLSTMForward:
    def test_output_shapes(self, lstm, rng):
        x = Tensor(rng.normal(size=(4, 6, 3)))
        out, (h, c) = lstm(x)
        assert out.shape == (4, 6, 5)
        assert h.shape == (4, 5)
        assert c.shape == (4, 5)

    def test_final_state_equals_last_output(self, lstm, rng):
        x = Tensor(rng.normal(size=(2, 6, 3)))
        out, (h, _) = lstm(x)
        np.testing.assert_allclose(out.data[:, -1, :], h.data)

    def test_rejects_2d_input(self, lstm):
        with pytest.raises(ValueError):
            lstm(Tensor(np.ones((4, 3))))

    def test_masked_steps_carry_state(self, lstm, rng):
        x = rng.normal(size=(1, 6, 3))
        mask = np.array([[True, True, True, False, False, False]])
        out, (h, _) = lstm(Tensor(x), mask=mask)
        # After step 2 the hidden state must not change.
        np.testing.assert_allclose(out.data[0, 3], out.data[0, 2])
        np.testing.assert_allclose(out.data[0, 5], out.data[0, 2])
        np.testing.assert_allclose(h.data[0], out.data[0, 2])

    def test_padding_does_not_change_result(self, lstm, rng):
        seq = rng.normal(size=(1, 4, 3))
        out_short, _ = lstm(Tensor(seq), mask=np.ones((1, 4), bool))
        padded = np.concatenate([seq, np.zeros((1, 3, 3))], axis=1)
        mask = np.array([[True] * 4 + [False] * 3])
        out_padded, _ = lstm(Tensor(padded), mask=mask)
        np.testing.assert_allclose(out_padded.data[:, :4], out_short.data, atol=1e-12)

    def test_batch_independence(self, lstm, rng):
        a = rng.normal(size=(1, 5, 3))
        b = rng.normal(size=(1, 5, 3))
        both = np.concatenate([a, b], axis=0)
        out_pair, _ = lstm(Tensor(both))
        out_a, _ = lstm(Tensor(a))
        np.testing.assert_allclose(out_pair.data[0], out_a.data[0], atol=1e-12)

    def test_initial_state_used(self, lstm, rng):
        x = Tensor(rng.normal(size=(2, 3, 3)))
        h0 = Tensor(rng.normal(size=(2, 5)))
        c0 = Tensor(rng.normal(size=(2, 5)))
        out_init, _ = lstm(x, initial_state=(h0, c0))
        out_zero, _ = lstm(x)
        assert not np.allclose(out_init.data, out_zero.data)

    def test_gradcheck_with_mask(self, rng):
        lstm = LSTM(2, 3, rng=rng)
        x = rng.normal(size=(2, 4, 2))
        mask = np.array([[1, 1, 1, 0], [1, 1, 1, 1]], bool)

        def run(t):
            out, _ = lstm(t, mask=mask)
            return gather_last(out, np.array([3, 4]))

        check_gradients(run, [x], atol=1e-4)

    def test_parameters_receive_gradients(self, lstm, rng):
        x = Tensor(rng.normal(size=(2, 4, 3)))
        out, _ = lstm(x)
        out.sum().backward()
        for name, p in lstm.named_parameters():
            assert p.grad is not None, name


class TestGatherLast:
    def test_selects_per_row(self, rng):
        out = Tensor(rng.normal(size=(3, 5, 2)))
        lengths = np.array([1, 3, 5])
        got = gather_last(out, lengths)
        np.testing.assert_allclose(got.data[0], out.data[0, 0])
        np.testing.assert_allclose(got.data[1], out.data[1, 2])
        np.testing.assert_allclose(got.data[2], out.data[2, 4])

    def test_rejects_out_of_range(self, rng):
        out = Tensor(rng.normal(size=(2, 4, 2)))
        with pytest.raises(ValueError):
            gather_last(out, np.array([0, 2]))
        with pytest.raises(ValueError):
            gather_last(out, np.array([2, 5]))

    def test_gradient_lands_on_selected_rows(self):
        out = Tensor(np.zeros((2, 3, 2)), requires_grad=True)
        gather_last(out, np.array([3, 2])).sum().backward()
        expected = np.zeros((2, 3, 2))
        expected[0, 2] = 1.0
        expected[1, 1] = 1.0
        np.testing.assert_allclose(out.grad, expected)
