"""Tests for the Module / Parameter system."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter, Sequential, Tanh


class Inner(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))

    def forward(self, x):
        return x * self.w


class Outer(Module):
    def __init__(self):
        super().__init__()
        self.inner = Inner()
        self.bias = Parameter(np.zeros(3))

    def forward(self, x):
        return self.inner(x) + self.bias


def test_parameter_is_trainable_tensor():
    p = Parameter(np.ones(2))
    assert isinstance(p, Tensor)
    assert p.requires_grad


def test_named_parameters_nested_paths():
    model = Outer()
    names = dict(model.named_parameters())
    assert set(names) == {"bias", "inner.w"}


def test_parameters_returns_all():
    assert len(Outer().parameters()) == 2


def test_num_parameters():
    assert Outer().num_parameters() == 6


def test_zero_grad_clears_all():
    model = Outer()
    out = model(Tensor(np.ones(3)))
    out.sum().backward()
    assert model.inner.w.grad is not None
    model.zero_grad()
    assert model.inner.w.grad is None
    assert model.bias.grad is None


def test_train_eval_propagates():
    model = Outer()
    assert model.training and model.inner.training
    model.eval()
    assert not model.training and not model.inner.training
    model.train()
    assert model.training and model.inner.training


def test_state_dict_roundtrip(rng):
    a = Linear(4, 3, rng=rng)
    b = Linear(4, 3, rng=np.random.default_rng(999))
    assert not np.allclose(a.weight.data, b.weight.data)
    b.load_state_dict(a.state_dict())
    np.testing.assert_allclose(a.weight.data, b.weight.data)
    np.testing.assert_allclose(a.bias.data, b.bias.data)


def test_state_dict_is_a_copy(rng):
    layer = Linear(2, 2, rng=rng)
    state = layer.state_dict()
    state["weight"][:] = 0.0
    assert not np.allclose(layer.weight.data, 0.0)


def test_load_state_dict_rejects_missing_keys(rng):
    layer = Linear(2, 2, rng=rng)
    with pytest.raises(KeyError, match="missing"):
        layer.load_state_dict({"weight": np.zeros((2, 2))})


def test_load_state_dict_rejects_unexpected_keys(rng):
    layer = Linear(2, 2, rng=rng)
    state = layer.state_dict()
    state["extra"] = np.zeros(1)
    with pytest.raises(KeyError, match="unexpected"):
        layer.load_state_dict(state)


def test_load_state_dict_rejects_bad_shapes(rng):
    layer = Linear(2, 2, rng=rng)
    state = layer.state_dict()
    state["weight"] = np.zeros((3, 3))
    with pytest.raises(ValueError, match="shape mismatch"):
        layer.load_state_dict(state)


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)


def test_sequential_chains(rng):
    seq = Sequential(Linear(2, 4, rng=rng), Tanh(), Linear(4, 1, rng=rng))
    out = seq(Tensor(np.ones((5, 2))))
    assert out.shape == (5, 1)
    assert len(seq.parameters()) == 4


def test_register_module_by_name(rng):
    class ListHolder(Module):
        def __init__(self):
            super().__init__()
            for i in range(3):
                self.register_module(f"item{i}", Linear(2, 2, rng=rng))

    holder = ListHolder()
    assert len(holder.parameters()) == 6
    assert any(n.startswith("item2.") for n, _ in holder.named_parameters())
