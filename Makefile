# Convenience targets for the TMN reproduction.

.PHONY: install test lint bench bench-fast examples clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.analysis src

bench:
	pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_BENCH_FAST=1 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/matching_visualization.py
	python examples/knn_search.py
	python examples/clustering.py
	python examples/exact_search_pruning.py
	python examples/robustness.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
