# Convenience targets for the TMN reproduction.

.PHONY: install test lint lint-json lint-concurrency lint-exceptions \
	sanitize-test bench bench-fast bench-json bench-serve bench-shard \
	bench-memory bench-check trace-demo trace-shard-demo verify regen-golden profile \
	profile-serve examples clean

install:
	pip install -e .

test:
	pytest tests/

# All rule families; warning-severity findings (E002/E003/C002/C006) are
# reported but only error-severity ones break the build.
lint:
	PYTHONPATH=src python -m repro.analysis src --fail-on error

# Concurrency rule family only (C001–C006): lock-guard discipline,
# lock-order deadlock detection and thread hygiene over the serve tier.
lint-concurrency:
	PYTHONPATH=src python -m repro.analysis src --scope concurrency

# Exception-flow rule family only (E001–E006): verifies the never-raises
# serving contract interprocedurally and the except-hygiene rules; gates
# on warnings too, so every E-finding needs a fix or a justified allow.
lint-exceptions:
	PYTHONPATH=src python -m repro.analysis src --scope exception

# Tier-1 concurrency-sensitive suites under the runtime lock sanitizer:
# new_lock()/new_rlock() hand out order-checked shims that raise on any
# observed lock-order cycle and report hold/wait/contention metrics.
sanitize-test:
	PYTHONPATH=src python -m pytest tests/test_serve.py tests/test_serve_faults.py \
		tests/test_serve_concurrency.py tests/test_hnsw.py tests/test_obs.py \
		tests/test_obs_lockstats.py --sanitize -q

# Machine-readable lint report (violations + suppressed count) for CI artifacts.
lint-json:
	PYTHONPATH=src python -m repro.analysis src --format json > lint_report.json || true
	@python -c "import json; r = json.load(open('lint_report.json')); \
	print('lint_report.json:', len(r['violations']), 'violation(s),', \
	r['suppressed_count'], 'suppressed')"

bench:
	pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_BENCH_FAST=1 pytest benchmarks/ --benchmark-only

# Full-scale bench run whose deliverable is the machine-readable
# BENCH_results.json perf/quality trajectory (written by benchmarks/conftest.py).
bench-json:
	REPRO_BENCH_JSON=BENCH_results.json pytest benchmarks/ --benchmark-only

# Serving-layer benches (micro-batching vs naive encode, plus the sharded
# process-pool tier vs its single-interpreter control arm); together they
# write the BENCH_serve.json trajectory the bench-check gate diffs.
bench-serve:
	REPRO_BENCH_JSON=BENCH_serve.json PYTHONPATH=src \
		python -m pytest benchmarks/test_serve_throughput.py \
		benchmarks/test_serve_shard.py --benchmark-only

# Sharded-tier bench alone (quick iteration on repro.serve.shard).  Note
# this rewrites BENCH_serve.json with only the shard benches — run the
# full `make bench-serve` before `make bench-check`, which requires every
# baseline bench to be present.
bench-shard:
	REPRO_BENCH_JSON=BENCH_serve.json PYTHONPATH=src \
		python -m pytest benchmarks/test_serve_shard.py --benchmark-only

# Memory-budget bench: exact payload-byte audit of the serving structures
# (store / embedding cache / HNSW index) recorded as BENCH_memory.json —
# bytes_per_trajectory is the number the compression ROADMAP item is
# gated on (tight tolerance in repro.obs.benchgate).
bench-memory:
	REPRO_BENCH_JSON=BENCH_memory.json PYTHONPATH=src \
		python -m pytest benchmarks/test_memory_accounting.py --benchmark-only

# Bench-regression gate: diff the checked-in bench trajectories against
# their committed baselines with per-metric, direction-aware tolerances
# (see repro.obs.benchgate).  After an intentional perf change, refresh
# the baselines (cp BENCH_*.json benchmarks/baselines/) and review the diff.
bench-check:
	@test -f BENCH_results.json || \
		{ echo "BENCH_results.json not found: run 'make bench-json' first"; exit 2; }
	@test -f BENCH_serve.json || \
		{ echo "BENCH_serve.json not found: run 'make bench-serve' first"; exit 2; }
	@test -f BENCH_memory.json || \
		{ echo "BENCH_memory.json not found: run 'make bench-memory' first"; exit 2; }
	PYTHONPATH=src python -m repro.cli bench-diff \
		BENCH_results.json benchmarks/baselines/BENCH_results.json
	PYTHONPATH=src python -m repro.cli bench-diff \
		BENCH_serve.json benchmarks/baselines/BENCH_serve.json
	PYTHONPATH=src python -m repro.cli bench-diff \
		BENCH_memory.json benchmarks/baselines/BENCH_memory.json

# Run a small seeded serve workload and print critical-path trees for the
# slowest request traces (queue-wait vs forward vs index attribution).
trace-demo:
	PYTHONPATH=src python -m repro.cli trace --demo --top 3

# Run a small seeded 4-shard serve workload and print stitched
# cross-process traces: per-shard subtrees (ipc-wait / slab-read /
# search) grafted under the coordinator's serve.topk spans.
trace-shard-demo:
	PYTHONPATH=src python -m repro.cli trace --demo-shards 4 --top 3

# The default verification path: lint (all families, including the
# R010 trace-propagation rule), the concurrency and exception scopes on
# their own exit gates, tier-1 tests, the sanitized serve subset, the
# bench-regression gate (perf + serve + memory trajectories), a
# profile-serve smoke run proving the sampler produces a loadable
# profile, and a trace-shard-demo smoke run proving cross-process
# stitching works end-to-end.
verify: lint lint-concurrency lint-exceptions test sanitize-test bench-check profile-serve trace-shard-demo

# Re-snapshot the golden trainer regression file after an INTENTIONAL
# numeric change (review the diff before committing it).
regen-golden:
	PYTHONPATH=src python tests/test_golden_regression.py

# Smoke-train with the autograd op profiler on: prints the per-op table and
# leaves a JSONL run record under runs/.
profile:
	PYTHONPATH=src python -m repro.cli train --kind porto --metric dtw \
		--model TMN --fast --epochs 1 --profile \
		--log-json runs/profile.jsonl --out runs/profile-ckpt

# Wall-clock stack-sampler profile of the serving workload (+ an exact
# DP-metric phase): prints the top-frames table and writes a
# speedscope-loadable flamegraph (open runs/profile-serve.speedscope.json
# at https://www.speedscope.app/) plus collapsed stacks for flamegraph.pl.
profile-serve:
	@mkdir -p runs
	PYTHONPATH=src python -m repro.cli profile-serve --queries 150 \
		--speedscope runs/profile-serve.speedscope.json \
		--folded runs/profile-serve.folded

examples:
	python examples/quickstart.py
	python examples/matching_visualization.py
	python examples/knn_search.py
	python examples/clustering.py
	python examples/exact_search_pruning.py
	python examples/robustness.py
	python examples/serving.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
