"""Sharded serving bench — the acceptance gate for `repro.serve.shard`.

Builds a ``SHARDS``-worker process pool over a 100k-trajectory store
(2k at SMOKE scale), drives cache-miss ``topk`` queries from ``WORKERS``
closed-loop threads, then replays the same queries through the
single-interpreter control arm: the *same* shard graphs (rebuilt from
worker state dumps) and the same scatter-gather merge on ``WORKERS``
threads, zero IPC.  Asserted properties:

- zero dropped requests and zero degraded answers on the healthy run;
- process-pool answers agree with the in-process replica answers on
  every checked query (same graphs + same embedding => identical ids);
- recall@k against the exact brute force over the retained embedding
  blocks stays above the floor for the committed HNSW parameters;
- >= 2x the single-process throughput — asserted only when the box has
  at least ``SHARDS`` cores.  Worker processes exist to escape the GIL;
  on a 1-CPU runner (the shared CI box) the kernel timeslices the pool
  over one core, so IPC overhead is pure cost and the honest ratio is
  *recorded* (benchgate tracks it) rather than gated.

A second bench SIGKILLs a worker mid-stream and holds the never-raises
contract: every query still gets an answer, the dead shard's portion is
served by the exact coordinator-side fallback, and nothing drops.

Numbers land in the bench JSON via ``bench_record`` (``make bench-serve``
writes BENCH_serve.json; ``make bench-shard`` reruns just this file).
"""

import os

import numpy as np
import pytest

from repro.serve import (
    FeatureEncoder,
    ShardedSimilarityServer,
    format_shard_bench,
    run_shard_bench,
)
from repro.serve.bench import _make_walks

pytestmark = pytest.mark.shard

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

SHARDS = 4
WORKERS = 4
N_DB = 2_000 if FAST else 100_000
N_QUERIES = 120 if FAST else 600
K = 10
#: Committed HNSW build parameters: small graph degree keeps the 100k
#: build inside the bench budget; ef_search recovers recall at query time.
M = 4
EF_CONSTRUCTION = 16
EF_SEARCH = 48
MIN_SPEEDUP = 2.0
MIN_RECALL = 0.5


def _run():
    result = run_shard_bench(
        n_db=N_DB,
        n_queries=N_QUERIES,
        shards=SHARDS,
        workers=WORKERS,
        k=K,
        m=M,
        ef_construction=EF_CONSTRUCTION,
        ef_search=EF_SEARCH,
        check_sample=48,
        seed=0,
    )
    # Correctness properties hold on every run, not just the recorded one.
    assert result.dropped == 0, f"dropped {result.dropped} requests"
    assert result.completed == N_QUERIES
    assert result.degraded == 0, "healthy pool: nothing should degrade"
    assert result.checked > 0
    assert result.agreement == 1.0, (
        f"{result.checked - int(result.agreement * result.checked)} of "
        f"{result.checked} process-pool answers diverged from the "
        f"in-process replica"
    )
    assert result.slo_statuses and result.slo_ok
    return result


def test_shard_scatter_gather_throughput(benchmark, bench_record):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_shard_bench(result))
    bench_record(**result.to_dict())
    assert result.recall_at_k >= MIN_RECALL, (
        f"recall@{K} {result.recall_at_k:.3f} < {MIN_RECALL} with "
        f"m={M} efc={EF_CONSTRUCTION} ef={EF_SEARCH}"
    )
    if result.cpu_count >= SHARDS:
        assert result.speedup >= MIN_SPEEDUP, (
            f"speedup {result.speedup:.2f}x < {MIN_SPEEDUP}x with "
            f"{result.cpu_count} cores for {SHARDS} shards"
        )
    else:
        # Not enough cores to parallelise: the ratio is recorded for the
        # trajectory (and gated against regression by benchgate), not
        # asserted against the 2x bar.
        assert result.sharded_qps > 0


def test_tracing_overhead(benchmark, bench_record):
    """Cross-process trace collection must stay within ~5% of throughput.

    Runs the same sharded workload with tracing on (every request ships
    a ``TraceContext`` and gets a stitched worker subtree back) and
    tracing off (the null-trace path: identical wire shape, zero
    recording), and records both qps plus the overhead percentage.  The
    shared CI box is noisy, so after a warmup run the two arms
    alternate for two rounds each and the *best* qps per arm is
    compared — scheduler stalls hit both arms, best-of strips them.
    The benchgate rule for ``tracing_overhead_pct`` caps drift at 5
    percentage points over the committed baseline.
    """
    n_db, n_queries = (500, 60) if FAST else (2_000, 200)
    kw = dict(
        n_db=n_db,
        n_queries=n_queries,
        shards=2,
        workers=2,
        k=K,
        seed=0,
        enforce_slos=False,
    )

    def _run_rounds():
        run_shard_bench(tracing=False, **{**kw, "n_queries": n_queries // 4})
        rounds = []
        for _ in range(2):
            rounds.append(run_shard_bench(tracing=False, **kw))
            rounds.append(run_shard_bench(tracing=True, **kw))
        return rounds

    rounds = benchmark.pedantic(_run_rounds, rounds=1, iterations=1)
    assert all(r.dropped == 0 for r in rounds)
    offs = [r for r in rounds if not r.shard_attribution]
    ons = [r for r in rounds if r.shard_attribution]
    assert len(offs) == 2, "untraced runs must not collect traces"
    assert len(ons) == 2, "tracing runs must attribute per-shard time"
    on_qps = max(r.sharded_qps for r in ons)
    off_qps = max(r.sharded_qps for r in offs)
    overhead = max(0.0, (off_qps - on_qps) / off_qps * 100.0)
    bench_record(
        tracing_on_qps=on_qps,
        tracing_off_qps=off_qps,
        tracing_overhead_pct=overhead,
    )


def test_shard_bench_survives_worker_death(benchmark, bench_record):
    """SIGKILL one worker mid-stream: nothing drops, answers stay exact."""
    n_db, n_queries, kill_at = (200, 60, 20) if FAST else (600, 120, 40)

    def _run_with_kill():
        rng = np.random.default_rng(1)
        corpus = _make_walks(n_db + n_queries, rng)
        db, queries = corpus[:n_db], corpus[n_db:]
        enc = FeatureEncoder(dim=16, seed=0)
        srv = ShardedSimilarityServer(
            enc,
            dim=16,
            n_shards=2,
            brute_threshold=10**9,  # exact workers: every answer checkable
            shard_deadline_s=10.0,
        )
        try:
            srv.add_batch(db)
            emb = np.asarray(enc(db), dtype=np.float64)
            results = []
            for i, q in enumerate(queries):
                if i == kill_at:
                    srv._handles[0].process.kill()
                results.append(srv.topk(q, k=K))
            # Every query answered (the never-raises contract held) and
            # every answer — degraded or not — matches the brute force.
            q_emb = np.asarray(enc(queries), dtype=np.float64)
            for qe, result in zip(q_emb, results):
                sq = ((emb - qe[None, :]) ** 2).sum(axis=1)
                expect = np.argsort(sq, kind="stable")[:K]
                assert np.array_equal(result.ids, expect)
            return results
        finally:
            srv.close()

    results = benchmark.pedantic(_run_with_kill, rounds=1, iterations=1)
    degraded = sum(1 for r in results if r.degraded)
    assert len(results) == n_queries
    assert degraded > 0, "expected post-kill queries to be degraded"
    assert all(r.ids is not None for r in results)
    bench_record(completed=float(len(results)), degraded=float(degraded))
