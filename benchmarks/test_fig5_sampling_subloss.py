"""Figure 5 — sampling-number sweep and sub-trajectory-loss ablation,
TMN on Porto (paper: DTW for sn; LCSS + Hausdorff for the sub-loss).

Paper shape being reproduced:

- the sampling number has a sweet spot (paper: 20); very small sn gives
  too little supervision, larger sn mostly costs memory;
- removing the sub-trajectory loss (noSub) hurts both HR and recall under
  LCSS and Hausdorff.
"""

import pytest

from repro.experiments import format_sweep, run_model

SNS = (4, 8, 12, 16)


def sweep_sn(porto, scale):
    results = [
        run_model(
            "TMN", porto, "dtw", scale, config_overrides={"sampling_number": sn}
        ).scores
        for sn in SNS
    ]
    print()
    print(format_sweep("Figure 5a: sampling number sweep (DTW / porto)", SNS, results))
    return results


def sub_loss_ablation(porto, scale):
    rows = {}
    for metric in ("lcss", "hausdorff"):
        with_sub = run_model("TMN", porto, metric, scale)
        no_sub = run_model("TMN-noSub", porto, metric, scale)
        rows[metric] = (with_sub.scores, no_sub.scores)
        print(f"\n[{metric}] TMN       {with_sub.scores}")
        print(f"[{metric}] TMN-noSub {no_sub.scores}")
    return rows


def test_fig5_sampling_number(benchmark, porto, scale):
    results = benchmark.pedantic(sweep_sn, args=(porto, scale), rounds=1, iterations=1)
    assert all(0.0 <= r["HR-10"] <= 1.0 for r in results)


def test_fig5_sub_loss(benchmark, porto, scale):
    rows = benchmark.pedantic(
        sub_loss_ablation, args=(porto, scale), rounds=1, iterations=1
    )
    for metric, (with_sub, no_sub) in rows.items():
        assert all(0.0 <= v <= 1.0 for v in {**with_sub, **no_sub}.values())
