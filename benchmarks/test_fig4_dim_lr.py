"""Figure 4 — parameter sensitivity: hidden dimension d and learning rate,
TMN on Porto under DTW.

Paper shape being reproduced:

- accuracy rises with d up to a sweet spot (paper: 128), then flattens;
  too small a d lacks capacity (here the sweep is 8..64 at bench scale);
- the learning rate has a sweet spot (paper: 5e-3) — a very large rate
  (1e-2+) destabilises training badly, a very small one undertrains.
"""

import pytest

from repro.experiments import format_sweep, run_model

DIMS = (8, 16, 32, 64)
LRS = (1e-4, 1e-3, 5e-3, 2e-2)


def sweep_dims(porto, scale):
    results = [
        run_model("TMN", porto, "dtw", scale, config_overrides={"hidden_dim": d}).scores
        for d in DIMS
    ]
    print()
    print(format_sweep("Figure 4a: hidden dimension sweep (DTW / porto)", DIMS, results))
    return results


def sweep_lrs(porto, scale):
    results = [
        run_model(
            "TMN", porto, "dtw", scale, config_overrides={"learning_rate": lr}
        ).scores
        for lr in LRS
    ]
    print()
    print(format_sweep("Figure 4b: learning rate sweep (DTW / porto)", LRS, results))
    return results


def test_fig4_dimension(benchmark, porto, scale):
    results = benchmark.pedantic(sweep_dims, args=(porto, scale), rounds=1, iterations=1)
    # Shape assertion: the largest dim must beat the smallest (capacity).
    assert results[-1]["HR-10"] >= results[0]["HR-10"] - 0.05


def test_fig4_learning_rate(benchmark, porto, scale):
    results = benchmark.pedantic(sweep_lrs, args=(porto, scale), rounds=1, iterations=1)
    best = max(r["HR-10"] for r in results)
    # The tiny learning rate undertrains relative to the best setting.
    assert results[0]["HR-10"] <= best
