"""Table IV — sampling-strategy ablation: TMN (rank sampler) vs TMN-kd
(Traj2SimVec's k-d tree sampler), Porto, all six metrics.

Paper shape being reproduced: the paper's rank sampler beats the k-d tree
sampler on HR-50 and R10@50 for every metric (TMN-kd occasionally edges
HR-10 under Fréchet/DTW); the gap is largest under EDR and LCSS.
"""

import pytest

from repro.experiments import run_model
from repro.metrics import METRIC_NAMES


def run_pair(porto, metric, scale):
    tmn = run_model("TMN", porto, metric, scale)
    tmn_kd = run_model("TMN-kd", porto, metric, scale)
    print(f"\n[{metric}] TMN    {tmn.scores}")
    print(f"[{metric}] TMN-kd {tmn_kd.scores}")
    return tmn, tmn_kd


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_table4(benchmark, porto, scale, metric):
    tmn, tmn_kd = benchmark.pedantic(
        run_pair, args=(porto, metric, scale), rounds=1, iterations=1
    )
    for r in (tmn, tmn_kd):
        assert all(0.0 <= v <= 1.0 for v in r.scores.values())
