"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper table or figure at ``BENCH`` scale (see
``repro.experiments.configs``).  Corpora and ground-truth matrices are
session-scoped so the expensive exact-metric computation happens once.

Set ``REPRO_BENCH_FAST=1`` to run everything at SMOKE scale (useful when
iterating on the harness itself).

Every session also writes a machine-readable ``BENCH_results.json`` next
to the repo root (override the path with ``REPRO_BENCH_JSON``): per-bench
wall time plus whatever quality numbers the bench recorded through the
``bench_record`` fixture.  This is the perf trajectory the efficiency
PRs are judged against — ``make bench-json`` is the canonical producer.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import BENCH, SMOKE, load_corpus

#: nodeid -> {"seconds": wall time, "quality": {...}, "outcome": str}
_RESULTS = {}


def bench_scale():
    return SMOKE if os.environ.get("REPRO_BENCH_FAST") else BENCH


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def porto(scale):
    return load_corpus("porto", scale, seed=0)


@pytest.fixture(scope="session")
def geolife(scale):
    return load_corpus("geolife", scale, seed=0)


@pytest.fixture
def bench_record(request):
    """Stash key quality numbers for this bench into BENCH_results.json.

    Usage inside a bench::

        bench_record(hr10=tmn.scores["HR-10"], final_loss=tmn.final_loss)
    """
    entry = _RESULTS.setdefault(request.node.nodeid, {"quality": {}})

    def record(**numbers):
        entry["quality"].update({k: float(v) for k, v in numbers.items()})

    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    entry = _RESULTS.setdefault(item.nodeid, {"quality": {}})
    entry["seconds"] = time.perf_counter() - start


def pytest_runtest_logreport(report):
    if report.when == "call":
        entry = _RESULTS.setdefault(report.nodeid, {"quality": {}})
        entry["outcome"] = report.outcome


def pytest_sessionfinish(session):
    if not _RESULTS:
        return
    path = os.environ.get(
        "REPRO_BENCH_JSON",
        os.path.join(str(session.config.rootpath), "BENCH_results.json"),
    )
    payload = {
        "scale": "SMOKE" if os.environ.get("REPRO_BENCH_FAST") else "BENCH",
        "benches": _RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
