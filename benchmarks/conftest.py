"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper table or figure at ``BENCH`` scale (see
``repro.experiments.configs``).  Corpora and ground-truth matrices are
session-scoped so the expensive exact-metric computation happens once.

Set ``REPRO_BENCH_FAST=1`` to run everything at SMOKE scale (useful when
iterating on the harness itself).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import BENCH, SMOKE, load_corpus


def bench_scale():
    return SMOKE if os.environ.get("REPRO_BENCH_FAST") else BENCH


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def porto(scale):
    return load_corpus("porto", scale, seed=0)


@pytest.fixture(scope="session")
def geolife(scale):
    return load_corpus("geolife", scale, seed=0)
