"""Memory-accounting bench — the budget gate for the serving structures.

Runs the seeded serving workload and records the exact payload-byte
audit (:meth:`~repro.serve.engine.SimilarityServer.memory_stats`) into
the bench JSON: ``bytes_per_trajectory`` is the headline the
quantised-store ROADMAP item must *shrink*, so the committed baseline
(``benchmarks/baselines/BENCH_memory.json``) plus the tight benchgate
tolerance on ``bytes_per_trajectory`` make silent memory growth a
failing diff.  ``make bench-memory`` is the canonical producer;
``make bench-check`` diffs it.

Asserted here (not just recorded): the byte audit is *exact* — the
store figure equals the sum of the trajectory buffers, and cache/index
figures move when and only when entries exist.
"""

import numpy as np

from repro.serve import run_serve_bench

#: Deterministic workload shape: byte audits depend only on the seeded
#: corpus and the (seeded) HNSW level draws, so any drift in the bytes
#: metrics is a real accounting or layout change, not noise.
N_DB = 40
N_QUERIES = 120
WORKERS = 2
TRAJ_LEN = 60
HIDDEN_DIM = 8


def _run():
    return run_serve_bench(
        n_db=N_DB,
        n_queries=N_QUERIES,
        workers=WORKERS,
        traj_len=TRAJ_LEN,
        hidden_dim=HIDDEN_DIM,
        naive_queries=4,
        seed=0,
    )


def test_memory_accounting(benchmark, bench_record):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert result.dropped == 0
    # The audit produced real, positive figures.
    assert result.bytes_per_trajectory > 0
    assert result.peak_rss_bytes > 0
    # Sanity bound: a float64 (n, 2) trajectory of ~TRAJ_LEN points is
    # ~16 * TRAJ_LEN bytes; store + embeddings + graph links should land
    # within a loose order-of-magnitude band of that, not at megabytes.
    assert 16 * TRAJ_LEN * 0.5 < result.bytes_per_trajectory < 16 * TRAJ_LEN * 20
    print(
        f"\nmemory: {result.bytes_per_trajectory:,.0f} B/trajectory, "
        f"peak rss {result.peak_rss_bytes / 2**20:,.1f} MiB"
    )
    bench_record(
        n_db=float(result.n_db),
        bytes_per_trajectory=result.bytes_per_trajectory,
        peak_rss_bytes=result.peak_rss_bytes,
    )


def test_store_accounting_is_exact():
    """`memory_stats` store figure == the sum of the stored buffers."""
    from repro.core import TMN, TMNConfig
    from repro.serve.engine import SimilarityServer

    rng = np.random.default_rng(0)
    trajs = [rng.normal(size=(n, 2)) for n in (10, 20, 30)]
    model = TMN(TMNConfig(hidden_dim=8, matching=False, seed=0))
    model.eval()
    server = SimilarityServer(model, dim=model.output_dim, seed=0)
    try:
        server.add_batch(trajs)
        stats = server.memory_stats()
        assert stats["n_trajectories"] == 3
        assert stats["store_bytes"] == sum(t.nbytes for t in trajs)
        assert stats["index_bytes"] > 0  # vectors + links were indexed
        assert stats["total_bytes"] == (
            stats["store_bytes"] + stats["cache_bytes"] + stats["index_bytes"]
        )
        assert stats["bytes_per_trajectory"] == stats["total_bytes"] / 3
    finally:
        server.close()
