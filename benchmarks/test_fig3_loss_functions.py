"""Figure 3 — loss-function ablation: MSE vs Q-error on Porto under
Fréchet, DTW, Hausdorff and LCSS.

Paper shape being reproduced: the MSE loss gives better hitting ratios and
recalls than Q-error on (almost) every metric — the paper attributes
Q-error's weakness to ratio compression near 1 and explosion at tiny
similarities.
"""

import pytest

from repro.experiments import run_model

FIG3_METRICS = ("frechet", "dtw", "hausdorff", "lcss")


def run_pair(porto, metric, scale):
    mse = run_model("TMN", porto, metric, scale)
    qerr = run_model("TMN-qerror", porto, metric, scale)
    print(f"\n[{metric}] MSE     {mse.scores}")
    print(f"[{metric}] Q-error {qerr.scores}")
    return mse, qerr


@pytest.mark.parametrize("metric", FIG3_METRICS)
def test_fig3(benchmark, porto, scale, metric):
    mse, qerr = benchmark.pedantic(
        run_pair, args=(porto, metric, scale), rounds=1, iterations=1
    )
    for r in (mse, qerr):
        assert all(0.0 <= v <= 1.0 for v in r.scores.values())
