"""Serving-layer throughput bench — the acceptance gate for `repro.serve`.

Drives a 4-worker pool of cache-miss ``topk`` queries through the
:class:`~repro.serve.engine.SimilarityServer` and compares against naive
one-request-one-forward encoding of the same query stream.  Asserted
properties (the serving contract, not just a timing):

- zero dropped requests: every submitted query gets an answer;
- zero degraded answers when no deadline is set;
- >= 2x the naive throughput (best of two attempts — wall-clock on a
  shared 1-CPU CI box is noisy, the batching effect is not).

Numbers land in the bench JSON via ``bench_record`` (``make bench-serve``
writes ``BENCH_serve.json``), seeding the serving perf trajectory that
future optimisation PRs are judged against.
"""

import pytest

from repro.serve import run_serve_bench

#: Acceptance scale: 4 workers, 500 cache-miss queries over 60 indexed
#: trajectories, encode batches capped at 32.  Long trajectories + a small
#: hidden dim put the workload in the forward-dominated regime (the paper's
#: Table III setting) where the batching effect is measurable above the
#: fixed per-request overhead.
WORKERS = 4
N_QUERIES = 500
N_DB = 60
BATCH_SIZE = 32
TRAJ_LEN = 80
HIDDEN_DIM = 8
MIN_SPEEDUP = 2.0


def _run_best_of(attempts: int):
    """Best-of-N serve-bench run (de-noises shared-box wall clock)."""
    best = None
    for attempt in range(attempts):
        result = run_serve_bench(
            n_db=N_DB,
            n_queries=N_QUERIES,
            workers=WORKERS,
            batch_size=BATCH_SIZE,
            hidden_dim=HIDDEN_DIM,
            traj_len=TRAJ_LEN,
            seed=0,
        )
        # Correctness properties must hold on EVERY attempt.
        assert result.dropped == 0, f"dropped {result.dropped} requests"
        assert result.completed == N_QUERIES
        assert result.degraded == 0, "no deadline set, nothing should degrade"
        # run_serve_bench already raises SLOViolation on breach; the
        # statuses must also land in the result for the bench JSON.
        assert result.slo_statuses and result.slo_ok
        if best is None or result.speedup > best.speedup:
            best = result
        if best.speedup >= MIN_SPEEDUP:
            break
    return best


def test_serve_throughput(benchmark, bench_record):
    result = benchmark.pedantic(_run_best_of, args=(2,), rounds=1, iterations=1)
    print(
        f"\nserve-bench: {result.served_qps:.0f} qps served vs "
        f"{result.naive_qps:.0f} naive ({result.speedup:.2f}x), "
        f"mean batch {result.batch_size_mean:.1f}"
    )
    bench_record(**result.to_dict())
    # Micro-batching must beat one-request-one-forward by 2x.
    assert result.speedup >= MIN_SPEEDUP, (
        f"speedup {result.speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(served {result.served_qps:.0f} qps, naive {result.naive_qps:.0f} qps)"
    )
    # Batching actually happened (workers coalesced, not 1-by-1).
    assert result.batch_size_mean > 1.5


def test_serve_deadline_degrades_not_drops(benchmark, bench_record):
    """An impossible deadline degrades answers; nothing drops or raises."""
    result = benchmark.pedantic(
        run_serve_bench,
        kwargs=dict(
            n_db=30,
            n_queries=60,
            workers=WORKERS,
            batch_size=BATCH_SIZE,
            deadline_s=1e-5,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.dropped == 0
    assert result.completed == 60
    assert result.degraded == 60  # every query missed the 10us deadline
    bench_record(degraded=result.degraded, completed=result.completed)
