"""Figure 1 — DTW point-match pairs (the paper's motivating illustration).

Benchmarks the alignment computation and verifies the structural properties
the figure depicts: a monotone warping path whose matched-pair costs sum to
the DTW distance.
"""

import numpy as np
import pytest

from repro.metrics import dtw, dtw_alignment


def test_fig1_dtw_alignment(benchmark, porto):
    a = porto.test_points[0]
    b = porto.test_points[1]
    path = benchmark(dtw_alignment, a, b)
    assert path[0] == (0, 0)
    assert path[-1] == (len(a) - 1, len(b) - 1)
    cost = sum(np.linalg.norm(a[i] - b[j]) for i, j in path)
    assert cost == pytest.approx(dtw(a, b))
