"""Extension ablation — recurrent backbone: LSTM (the paper's choice) vs
GRU, TMN on Porto under DTW.

DESIGN.md lists the recurrent cell as a design choice worth ablating (the
paper motivates LSTM but Section II-B presents GRU as the alternative).
Expected shape: both backbones learn (far above random); the gap between
them is small compared to the matching-mechanism ablation (TMN vs TMN-NM),
i.e. the *matching* carries the contribution, not the specific cell.
"""

from repro.experiments import run_model


def run_ablation(porto, scale):
    lstm = run_model("TMN", porto, "dtw", scale)
    gru = run_model("TMN", porto, "dtw", scale, config_overrides={"backbone": "gru"})
    no_match = run_model("TMN-NM", porto, "dtw", scale)
    print(f"\nTMN (LSTM)  {lstm.scores}")
    print(f"TMN (GRU)   {gru.scores}")
    print(f"TMN-NM      {no_match.scores}")
    return lstm, gru, no_match


def test_backbone_ablation(benchmark, porto, scale):
    lstm, gru, no_match = benchmark.pedantic(
        run_ablation, args=(porto, scale), rounds=1, iterations=1
    )
    backbone_gap = abs(lstm.scores["HR-10"] - gru.scores["HR-10"])
    assert all(0.0 <= v <= 1.0 for r in (lstm, gru, no_match) for v in r.scores.values())
    # Both backbones must be far above random chance on HR-10.
    random_hr = 10 / (len(porto.test_points) - 1)
    assert lstm.scores["HR-10"] > 2 * random_hr
    assert gru.scores["HR-10"] > 2 * random_hr
