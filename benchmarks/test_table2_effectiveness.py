"""Table II — top-k search effectiveness of all models under all metrics.

Paper shape being reproduced: TMN achieves the best (or near-best) HR-k and
Rk@t on both datasets, with the largest margins on the matching-based
metrics (DTW, ERP, EDR, LCSS); removing the matching mechanism (TMN-NM)
costs a large fraction of that advantage.

One benchmark case per (dataset, metric): each trains all six models on the
shared corpus and prints the paper-style rows.
"""

import pytest

from repro.experiments import (
    MODEL_NAMES,
    effectiveness_table,
    format_effectiveness,
)
from repro.metrics import METRIC_NAMES

RESULTS = []


def run_block(corpus, metric, scale):
    results = effectiveness_table(corpus, [metric], scale, models=MODEL_NAMES)
    RESULTS.extend(results)
    print()
    print(format_effectiveness(results, [metric]))
    return results


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_table2_porto(benchmark, porto, scale, metric, bench_record):
    results = benchmark.pedantic(
        run_block, args=(porto, metric, scale), rounds=1, iterations=1
    )
    assert all(0.0 <= v <= 1.0 for r in results for v in r.scores.values())
    tmn = next(r for r in results if r.model_name == "TMN")
    bench_record(**{f"TMN.{k}": v for k, v in tmn.scores.items()})
    bench_record(**{"TMN.final_loss": tmn.final_loss})
    assert tmn.scores["HR-10"] > 0.2  # sanity floor: far above random


@pytest.mark.parametrize("metric", METRIC_NAMES)
def test_table2_geolife(benchmark, geolife, scale, metric, bench_record):
    results = benchmark.pedantic(
        run_block, args=(geolife, metric, scale), rounds=1, iterations=1
    )
    tmn = next(r for r in results if r.model_name == "TMN")
    bench_record(**{f"TMN.{k}": v for k, v in tmn.scores.items()})
    bench_record(**{"TMN.final_loss": tmn.final_loss})
    assert tmn.scores["HR-10"] > 0.2
