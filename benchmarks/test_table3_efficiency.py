"""Table III — efficiency: exact metrics vs learned three-phase pipeline.

Paper shape being reproduced:

- exact all-pairs computation takes seconds-to-minutes and Fréchet is the
  slowest of the exact metrics;
- learned similarity computation between two embeddings is many orders of
  magnitude faster than exact computation over the same collection;
- TMN's per-trajectory inference is slower than the siamese baselines
  (its representations are pair-dependent), the trade-off the paper makes
  for accuracy.
"""

from repro.experiments import efficiency_table, format_efficiency


def test_table3(benchmark, porto, scale, bench_record):
    rows = benchmark.pedantic(
        efficiency_table,
        args=(porto, scale),
        kwargs=dict(
            exact_metrics=("frechet", "dtw", "erp"),
            model_names=("SRN", "NeuTraj", "T3S", "TMN"),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_efficiency(rows))
    for r in rows:
        for phase in ("training_s", "inference_s", "computation_s"):
            if r[phase] is not None:
                bench_record(**{f"{r['method']}.{phase}": r[phase]})

    exact = {r["method"]: r for r in rows if r["training_s"] is None}
    learned = {r["method"]: r for r in rows if r["training_s"] is not None}

    # Learned vector computation is orders of magnitude below exact all-pairs.
    slowest_vector = max(r["computation_s"] for r in learned.values())
    fastest_exact = min(r["computation_s"] for r in exact.values())
    assert slowest_vector * 100 < fastest_exact

    # All phases were actually measured.
    for r in learned.values():
        assert r["training_s"] > 0
        assert r["inference_s"] > 0
