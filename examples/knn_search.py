"""k-NN trajectory search: the headline application of learned similarity.

The paper's Table III shows the payoff of learned embeddings: after a
one-off encoding, similarity queries cost O(d) per pair instead of the
quadratic exact metrics.  This example builds a small trajectory "database"
with a siamese model (TMN-NM, which supports one-pass encoding), runs k-NN
queries in embedding space, and compares both the answers and the wall
clock against exact Hausdorff search.

Run:  python examples/knn_search.py
"""

import time

import numpy as np

from repro import TMN, TMNConfig, Trainer, make_dataset, prepare
from repro.eval import embedding_distance_matrix, topk_indices
from repro.index import knn_brute
from repro.metrics import cross_distance_matrix


def main() -> None:
    corpus, _ = prepare(make_dataset("geolife", 260, seed=3))
    train, rest = corpus.split(0.3, rng=np.random.default_rng(0))
    database = rest[: len(rest) - 10]
    queries = rest[len(rest) - 10 :]
    print(f"train {len(train)}, database {len(database)}, queries {len(queries)}")

    # A siamese variant (matching disabled) encodes each trajectory once.
    config = TMNConfig(hidden_dim=32, matching=False, epochs=10, sampling_number=10, seed=0)
    model = TMN(config)
    Trainer(model, config, metric="hausdorff").fit(train.points_list)

    # ------------------------------------------------------------------
    # Offline: encode the database once
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    db_embeddings = model.encode(database.points_list)
    encode_s = time.perf_counter() - t0
    print(f"encoded {len(database)} trajectories in {encode_s:.2f}s "
          f"({encode_s / len(database) * 1e3:.2f} ms each)")

    # ------------------------------------------------------------------
    # Online: embed queries, k-NN in embedding space
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    q_embeddings = model.encode(queries.points_list)
    _, learned_idx = knn_brute(db_embeddings, q_embeddings, k=5)
    learned_s = time.perf_counter() - t0

    # Exact search for comparison
    t0 = time.perf_counter()
    exact = cross_distance_matrix(queries.points_list, database.points_list, "hausdorff")
    exact_idx = np.argsort(exact, axis=1)[:, :5]
    exact_s = time.perf_counter() - t0

    overlap = np.mean(
        [len(set(l) & set(e)) / 5 for l, e in zip(learned_idx.tolist(), exact_idx.tolist())]
    )
    print(f"\nlearned search : {learned_s * 1e3:8.1f} ms for {len(queries)} queries")
    print(f"exact search   : {exact_s * 1e3:8.1f} ms for {len(queries)} queries")
    print(f"top-5 overlap with exact Hausdorff ranking: {overlap:.2f}")

    for q in range(3):
        print(f"query {q}: learned top-5 {learned_idx[q].tolist()}, "
              f"exact top-5 {exact_idx[q].tolist()}")


if __name__ == "__main__":
    main()
