"""Serving similarity queries: cache + micro-batching + HNSW under load.

The ROADMAP's north star is serving heavy query traffic, and the paper's
efficiency claim (Table III) is that similarity becomes a cheap embedding
distance once trajectories are encoded.  This walkthrough wires the
pieces together the way a deployment would:

1. build a :class:`repro.serve.SimilarityServer` around a siamese
   encoder (TMN-NM);
2. index a trajectory database;
3. fire concurrent queries from worker threads — watch the micro-batcher
   coalesce them into padded forwards;
4. repeat a query to see the content-hash embedding cache hit;
5. set an impossible deadline to see the degraded-but-exact fallback
   (true-metric answer over the stored subset, no exception).

Run:  python examples/serving.py
"""

import threading

import numpy as np

from repro import TMN, TMNConfig, make_dataset, prepare
from repro.obs import get_registry
from repro.serve import SimilarityServer


def main() -> None:
    corpus, _ = prepare(make_dataset("porto", 220, seed=7))
    trajs = corpus.points_list
    database, queries = trajs[:80], trajs[80:120]
    print(f"database {len(database)} trajectories, {len(queries)} queries")

    # Untrained weights are fine for a serving demo — the machinery
    # (batching, caching, fallback) is identical after training.
    config = TMNConfig(hidden_dim=32, matching=False, seed=0)
    model = TMN(config)
    model.eval()

    with SimilarityServer(model, dim=model.output_dim, max_batch_size=16) as server:
        server.add_batch(database)
        print(f"indexed {len(server)} embeddings\n")

        # --------------------------------------------------------------
        # Concurrent queries: 4 workers, coalesced into padded batches.
        # --------------------------------------------------------------
        results = {}

        def worker(worker_id: int) -> None:
            for i in range(worker_id, len(queries), 4):
                results[i] = server.topk(queries[i], k=3)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        batch_sizes = get_registry().histogram("serve.batch.size").to_dict()
        print(f"{len(results)} queries answered; encode batches: "
              f"count={batch_sizes['count']} mean={batch_sizes['mean']:.1f} "
              f"max={batch_sizes['max']:.0f}")
        sample = results[0]
        print(f"query 0 -> ids {sample.ids.tolist()} "
              f"(source={sample.source}, {sample.seconds * 1e3:.1f} ms)\n")

        # --------------------------------------------------------------
        # Cache: the identical trajectory is a content-hash hit.
        # --------------------------------------------------------------
        again = server.topk(queries[0], k=3)
        print(f"repeat query 0: cache_hit={again.cache_hit}, "
              f"hit rate {server.cache.hit_rate:.2f}")
        assert again.cache_hit

        # --------------------------------------------------------------
        # Deadline: 50 microseconds is impossible for an encode, so the
        # server answers from the exact-metric fallback instead.
        # --------------------------------------------------------------
        fresh = queries[-1] + 1e-4  # unseen content hash => cache miss
        degraded = server.topk(fresh, k=3, deadline_s=5e-5)
        print(f"\nimpossible deadline: degraded={degraded.degraded}, "
              f"source={degraded.source}, ids {degraded.ids.tolist()} "
              f"(exact {server.fallback_metric.name} over stored subset)")
        assert degraded.degraded and len(degraded.ids) == 3

    print("\nserver closed; queue drained cleanly")


if __name__ == "__main__":
    main()
