"""Trajectory clustering on learned embeddings — a downstream application.

The paper's introduction motivates learned similarity with clustering and
anomaly detection.  This example trains a siamese encoder against the
Fréchet distance, k-means-clusters the embeddings, and checks the clusters
against clustering the exact distance matrix directly (spectral-style
medoid assignment), reporting the agreement.

Run:  python examples/clustering.py
"""

import numpy as np

from repro import TMN, TMNConfig, Trainer, make_dataset, prepare
from repro.metrics import pairwise_distance_matrix


def kmeans(points: np.ndarray, k: int, rng: np.random.Generator, iters: int = 50):
    """Minimal Lloyd's algorithm (numpy only)."""
    centers = points[rng.choice(len(points), size=k, replace=False)]
    assign = np.zeros(len(points), dtype=int)
    for _ in range(iters):
        dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        new_assign = dists.argmin(axis=1)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for c in range(k):
            member = points[assign == c]
            if len(member):
                centers[c] = member.mean(axis=0)
    return assign


def kmedoids_from_distances(dist: np.ndarray, k: int, rng: np.random.Generator, iters: int = 50):
    """k-medoids on a precomputed exact distance matrix."""
    medoids = rng.choice(len(dist), size=k, replace=False)
    for _ in range(iters):
        assign = dist[:, medoids].argmin(axis=1)
        new_medoids = medoids.copy()
        for c in range(k):
            members = np.where(assign == c)[0]
            if len(members):
                inner = dist[np.ix_(members, members)].sum(axis=1)
                new_medoids[c] = members[inner.argmin()]
        if np.array_equal(new_medoids, medoids):
            break
        medoids = new_medoids
    return dist[:, medoids].argmin(axis=1)


def agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Pairwise co-clustering agreement (Rand-index style)."""
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    mask = ~np.eye(len(a), dtype=bool)
    return float((same_a == same_b)[mask].mean())


def main() -> None:
    rng = np.random.default_rng(0)
    corpus, _ = prepare(make_dataset("porto", 260, seed=11))
    train, rest = corpus.split(0.3, rng=rng)
    data = rest[:60]
    print(f"clustering {len(data)} trajectories, training on {len(train)}")

    config = TMNConfig(hidden_dim=32, matching=False, epochs=10, sampling_number=10, seed=0)
    model = TMN(config)
    Trainer(model, config, metric="frechet").fit(train.points_list)

    embeddings = model.encode(data.points_list)
    learned_clusters = kmeans(embeddings, k=4, rng=np.random.default_rng(1))

    exact = pairwise_distance_matrix(data.points_list, "frechet")
    exact_clusters = kmedoids_from_distances(exact, k=4, rng=np.random.default_rng(1))

    score = agreement(learned_clusters, exact_clusters)
    print(f"co-clustering agreement between learned and exact Fréchet: {score:.2f}")
    sizes = np.bincount(learned_clusters, minlength=4)
    print(f"learned cluster sizes: {sizes.tolist()}")


if __name__ == "__main__":
    main()
