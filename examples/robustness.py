"""Robustness extension: how does learned similarity degrade when test
trajectories are perturbed?

Real GPS feeds differ in sampling rate and noise from the training corpus.
This experiment (not in the paper; a natural extension of its evaluation)
trains TMN on clean Porto-like trips, then queries with downsampled, noisy
and cropped versions of the test set, measuring HR-5 against the exact DTW
ranking of the *clean* trajectories — i.e. can the model still find the
right neighbours given degraded inputs?

Run:  python examples/robustness.py
"""

import numpy as np

from repro import TMN, TMNConfig, Trainer, make_dataset, prepare
from repro.core.model import pair_cross_distance_matrix
from repro.data.augment import add_noise, crop, downsample
from repro.eval import topk_indices
from repro.metrics import pairwise_distance_matrix


def hr5_with_perturbed_queries(model, clean, perturbed, gt) -> float:
    """HR-5 where queries are perturbed but the database stays clean."""
    pred = pair_cross_distance_matrix(model, perturbed, clean)
    np.fill_diagonal(pred, np.inf)  # perturbed query i vs its own clean self
    gt_work = gt.copy()
    np.fill_diagonal(gt_work, np.inf)
    hits = 0
    for row in range(len(clean)):
        pred_top = np.argsort(pred[row])[:5]
        gt_top = np.argsort(gt_work[row])[:5]
        hits += len(set(pred_top) & set(gt_top))
    return hits / (5 * len(clean))


def main() -> None:
    rng = np.random.default_rng(0)
    corpus, _ = prepare(make_dataset("porto", 240, seed=5))
    train, rest = corpus.split(0.4, rng=rng)
    test = rest[:40]

    config = TMNConfig(hidden_dim=32, epochs=12, sampling_number=10, seed=0)
    model = TMN(config)
    Trainer(model, config, metric="dtw").fit(train.points_list)

    clean = test.points_list
    gt = pairwise_distance_matrix(clean, "dtw")

    scenarios = {
        "clean": clean,
        "downsample 50%": [downsample(t, 0.5, rng) for t in clean],
        "noise sigma=0.05": [add_noise(t, 0.05, rng) for t in clean],
        "crop 70%": [crop(t, 0.7, rng) for t in clean],
    }
    print(f"{'scenario':<18} HR-5 (vs clean DTW ranking)")
    for name, queries in scenarios.items():
        score = hr5_with_perturbed_queries(model, clean, queries, gt)
        print(f"{name:<18} {score:.3f}")


if __name__ == "__main__":
    main()
