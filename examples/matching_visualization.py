"""Reproduce Figure 1: the point-match pairs behind DTW — and TMN's
learned attention analogue.

The paper motivates the matching mechanism with the observation that DTW
(and ERP/EDR/LCSS) internally align points across the trajectory pair.
This example prints:

1. the exact DTW alignment between two synthetic trajectories (the solid
   red lines of Figure 1), as an ASCII match diagram;
2. the match pattern P_{a<-b} a trained TMN produces for the same pair —
   the learned counterpart of those lines.

Run:  python examples/matching_visualization.py
"""

import numpy as np

from repro import TMN, TMNConfig, Trainer, make_dataset, prepare
from repro.metrics import dtw, dtw_alignment


def ascii_alignment(path, m, n) -> str:
    """Render match pairs as an m x n grid; '#' marks matched pairs."""
    grid = [["." for _ in range(n)] for _ in range(m)]
    for i, j in path:
        grid[i][j] = "#"
    header = "    " + "".join(f"{j % 10}" for j in range(n))
    rows = [f"a{i:<2d} " + "".join(row) for i, row in enumerate(grid)]
    return "\n".join([header] + rows)


def main() -> None:
    corpus, _ = prepare(make_dataset("porto", 200, seed=7))
    train, _ = corpus.split(0.5, rng=np.random.default_rng(1))

    # Pick a genuinely similar pair (an anchor and its DTW nearest
    # neighbour): that is where the point matching is meaningful.
    a = train[0].points
    candidates = [dtw(a, t.points) for t in train][1:]
    b = train[1 + int(np.argmin(candidates))].points

    # ------------------------------------------------------------------
    # Exact DTW alignment (Figure 1's red lines)
    # ------------------------------------------------------------------
    path = dtw_alignment(a, b)
    print(f"DTW distance: {dtw(a, b):.3f}  ({len(path)} matched pairs)")
    print("\nDTW alignment (rows = points of T_a, cols = points of T_b):")
    print(ascii_alignment(path, len(a), len(b)))

    # ------------------------------------------------------------------
    # TMN's learned match pattern for the same pair
    # ------------------------------------------------------------------
    config = TMNConfig(hidden_dim=32, epochs=12, sampling_number=10, seed=0)
    model = TMN(config)
    Trainer(model, config, metric="dtw").fit(train.points_list)

    model.embed_pair([a], [b])
    pattern, _ = model.last_match_patterns
    pattern = pattern[0, : len(a), : len(b)]

    print("\nTMN match pattern argmax (learned best match in T_b per point of T_a):")
    best = pattern.argmax(axis=1)
    learned_path = [(i, int(j)) for i, j in enumerate(best)]
    print(ascii_alignment(learned_path, len(a), len(b)))

    overlap = len(set(learned_path) & set(path)) / len(a)
    print(f"\nfraction of points whose learned argmax lies on the DTW path: {overlap:.2f}")

    # Argmax is a harsh lens; measure how much attention mass falls within
    # a small band around the DTW path, against the uniform baseline.
    band = 3
    on_path = np.zeros_like(pattern, dtype=bool)
    for i, j in path:
        lo, hi = max(0, j - band), min(len(b), j + band + 1)
        on_path[i, lo:hi] = True
    mass = float((pattern * on_path).sum() / pattern.sum())
    baseline = float(on_path.mean())
    print(
        f"attention mass within ±{band} of the DTW path: {mass:.2f} "
        f"(uniform baseline {baseline:.2f})"
    )


if __name__ == "__main__":
    main()
