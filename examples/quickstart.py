"""Quickstart: train TMN to approximate DTW and run a top-k search.

Walks the full paper pipeline on a synthetic Porto-like corpus:

1. generate + preprocess trajectories (centre filter, min length, normalise);
2. train TMN against exact DTW ground truth;
3. evaluate top-k similarity search quality (HR-k, Rk@t);
4. query: find the most DTW-similar trajectories to one example.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TMN, TMNConfig, Trainer, make_dataset, prepare
from repro.core import pair_distance_matrix
from repro.eval import evaluate_rankings, topk_indices
from repro.metrics import dtw, pairwise_distance_matrix


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: synthetic Porto-like taxi trips, preprocessed as in the paper
    # ------------------------------------------------------------------
    raw = make_dataset("porto", 200, seed=42)
    corpus, _ = prepare(raw)
    train, test = corpus.split(0.4, rng=np.random.default_rng(0))
    print(f"corpus: {len(corpus)} trajectories -> train {len(train)}, test {len(test)}")

    # ------------------------------------------------------------------
    # 2. Train TMN against exact DTW
    # ------------------------------------------------------------------
    config = TMNConfig(
        hidden_dim=32,
        epochs=10,
        sampling_number=10,
        batch_anchors=8,
        seed=0,
    )
    model = TMN(config)
    trainer = Trainer(model, config, metric="dtw")
    history = trainer.fit(train.points_list, verbose=True)
    print(f"final training loss: {history.final_loss:.5f}")

    # ------------------------------------------------------------------
    # 3. Evaluate search quality on the held-out set
    # ------------------------------------------------------------------
    ground_truth = pairwise_distance_matrix(test.points_list, "dtw")
    predicted = pair_distance_matrix(model, test.points_list)
    scores = evaluate_rankings(ground_truth, predicted, hr_ks=(5, 10), recall=(5, 10))
    print("search quality:", {k: round(v, 4) for k, v in scores.items()})

    # ------------------------------------------------------------------
    # 4. Query: nearest neighbours of test trajectory 0
    # ------------------------------------------------------------------
    top = topk_indices(predicted, k=3, exclude_self=True)[0]
    print(f"\npredicted top-3 matches for trajectory 0: {top.tolist()}")
    for j in top:
        exact = dtw(test.points_list[0], test.points_list[j])
        print(f"  trajectory {j}: exact DTW = {exact:.3f}, predicted = {predicted[0, j]:.3f}")


if __name__ == "__main__":
    main()
