"""Non-learning baseline: exact DTW top-k search with lower-bound pruning.

The paper's introduction splits approximate similarity computation into
non-learning methods ("indexing and pruning strategy") and learning-based
methods.  This example runs the non-learning side: an exact DTW top-k
query accelerated by admissible lower bounds (LB_Kim endpoints +
closest-point sums), and contrasts its cost with both brute-force exact
search and the learned-embedding search of the other examples.

Run:  python examples/exact_search_pruning.py
"""

import time

import numpy as np

from repro import make_dataset, prepare
from repro.metrics import dtw, pruned_dtw_topk


def main() -> None:
    corpus, _ = prepare(make_dataset("porto", 300, seed=21))
    database = corpus[: len(corpus) - 5]
    queries = corpus[len(corpus) - 5 :]
    print(f"database {len(database)}, queries {len(queries)}")

    db_points = database.points_list
    for q_idx, query in enumerate(queries.points_list):
        t0 = time.perf_counter()
        brute = sorted(range(len(db_points)), key=lambda i: dtw(query, db_points[i]))[:5]
        brute_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        pruned, stats = pruned_dtw_topk(query, db_points, k=5)
        pruned_s = time.perf_counter() - t0

        same = {round(dtw(query, db_points[i]), 9) for i in pruned} == {
            round(dtw(query, db_points[i]), 9) for i in brute
        }
        print(
            f"query {q_idx}: brute {brute_s * 1e3:7.1f} ms | pruned "
            f"{pruned_s * 1e3:7.1f} ms | prune rate {stats.prune_rate:5.1%} "
            f"({stats.pruned_by_kim} kim + {stats.pruned_by_pointwise} pointwise) "
            f"| exact answers match: {same}"
        )

    print(
        "\nNote: pruning keeps exactness but the speed-up is bounded — the "
        "learned models of quickstart.py sidestep the DP entirely at the "
        "price of approximation (the paper's central trade-off)."
    )


if __name__ == "__main__":
    main()
