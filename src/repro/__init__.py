"""repro — a full reproduction of *TMN: Trajectory Matching Networks for
Predicting Similarity* (Yang et al., ICDE 2022).

The package is organised bottom-up:

- :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` — a
  numpy-backed deep-learning engine substituting for PyTorch;
- :mod:`repro.metrics` — exact DTW / Fréchet / Hausdorff / ERP / EDR / LCSS
  distances with batched matrix builders;
- :mod:`repro.data` — trajectory containers, synthetic Geolife/Porto-like
  corpora and the paper's preprocessing;
- :mod:`repro.index` — k-d tree and brute-force nearest neighbours;
- :mod:`repro.core` — the TMN model, matching mechanism, samplers, losses
  and trainer;
- :mod:`repro.baselines` — SRN, NeuTraj, T3S, Traj2SimVec;
- :mod:`repro.eval` — top-k search, HR-k / Rk@t, efficiency timing;
- :mod:`repro.experiments` — runners regenerating every paper table/figure.

Quickstart::

    from repro import TMN, TMNConfig, Trainer, make_dataset, prepare

    corpus, _ = prepare(make_dataset("porto", 200, seed=0))
    train, test = corpus.split(0.5)
    config = TMNConfig(hidden_dim=32, epochs=5, sampling_number=10)
    model = TMN(config)
    Trainer(model, config, metric="dtw").fit(train.points_list)
    embeddings = model.encode(test.points_list)
"""

from .baselines import SRN, NeuTraj, T3S, Traj2SimVec
from .core import (
    TMN,
    TMNConfig,
    Trainer,
    TrainingHistory,
    TrajectoryPairModel,
    pair_distance_matrix,
)
from .data import Trajectory, TrajectoryDataset, make_dataset, prepare
from .eval import evaluate_rankings, hitting_ratio, recall_k_at_t
from .metrics import (
    METRIC_NAMES,
    dtw,
    edr,
    erp,
    frechet,
    get_metric,
    hausdorff,
    lcss,
    pairwise_distance_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "TMN",
    "TMNConfig",
    "Trainer",
    "TrainingHistory",
    "TrajectoryPairModel",
    "pair_distance_matrix",
    "SRN",
    "NeuTraj",
    "T3S",
    "Traj2SimVec",
    "Trajectory",
    "TrajectoryDataset",
    "make_dataset",
    "prepare",
    "dtw",
    "frechet",
    "hausdorff",
    "erp",
    "edr",
    "lcss",
    "get_metric",
    "METRIC_NAMES",
    "pairwise_distance_matrix",
    "evaluate_rankings",
    "hitting_ratio",
    "recall_k_at_t",
    "__version__",
]
