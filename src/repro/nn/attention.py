"""Attention mechanisms.

Two flavours are needed for the reproduction:

- :func:`cross_match` — the paper's core contribution (Section IV-B,
  Eq. 6–11): dot-product attention *across* a trajectory pair producing the
  match pattern ``P`` and the discrepancy matrix ``M = X_a − P·X_b``.
- :class:`SelfAttention` — scaled dot-product self-attention used by the
  T3S baseline to capture intra-trajectory structure.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, masked_softmax, softmax
from . import init
from .module import Module, Parameter

__all__ = ["match_pattern", "cross_match", "SelfAttention"]


def match_pattern(
    x_a: Tensor,
    x_b: Tensor,
    mask_a: Optional[np.ndarray] = None,
    mask_b: Optional[np.ndarray] = None,
) -> Tensor:
    """Compute the match pattern ``P_{a<-b} = softmax(X_a X_b^T)`` (Eq. 8).

    Row ``i`` of the result gives the attention weights of every point of
    ``T_b`` from the viewpoint of point ``i`` of ``T_a``.  Padded positions
    of ``T_b`` receive zero weight; padded rows of ``T_a`` are zeroed out.

    Parameters
    ----------
    x_a, x_b:
        Point-embedding tensors of shape ``(B, T, d)`` (or ``(T, d)``).
    mask_a, mask_b:
        Boolean validity masks of shape ``(B, T)`` (or ``(T,)``).
    """
    scores = x_a @ x_b.swapaxes(-1, -2)
    if mask_b is not None:
        mask_b = np.asarray(mask_b, dtype=bool)
        key_mask = np.expand_dims(mask_b, axis=-2)  # (..., 1, T_b)
        pattern = masked_softmax(scores, np.broadcast_to(key_mask, scores.shape), axis=-1)
    else:
        pattern = softmax(scores, axis=-1)
    if mask_a is not None:
        mask_a = np.asarray(mask_a, dtype=float)
        pattern = pattern * Tensor(np.expand_dims(mask_a, axis=-1))
    return pattern


def cross_match(
    x_a: Tensor,
    x_b: Tensor,
    mask_a: Optional[np.ndarray] = None,
    mask_b: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Tensor]:
    """The TMN matching mechanism (Eq. 6–11).

    Computes, for every point of ``T_a``, the attention-weighted summary of
    ``T_b``'s points (``S_{a<-b}``, Eq. 9–10) and the discrepancy
    ``M_{a<-b} = X_a − S_{a<-b}`` (Eq. 11).  The paper presents Eq. 9–10 as
    an expansion to ``(m, m, d)`` followed by a sum over ``j``; that is
    algebraically the matrix product ``P·X_b`` computed here.

    Returns
    -------
    (M, P):
        The discrepancy tensor ``M_{a<-b}`` with the same shape as ``x_a``,
        and the match pattern ``P_{a<-b}`` for inspection/visualisation.
    """
    pattern = match_pattern(x_a, x_b, mask_a=mask_a, mask_b=mask_b)
    summary = pattern @ x_b  # S_{a<-b}
    discrepancy = x_a - summary  # M_{a<-b}
    if mask_a is not None:
        # Keep padded rows exactly zero so downstream masking stays clean.
        keep = np.expand_dims(np.asarray(mask_a, dtype=float), axis=-1)
        discrepancy = discrepancy * Tensor(keep)
    return discrepancy, pattern


class SelfAttention(Module):
    """Scaled dot-product self-attention with learned Q/K/V projections.

    T3S combines the output of such a layer with an LSTM to capture the
    structural information of a single trajectory.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim <= 0:
            raise ValueError("attention dim must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.w_q = Parameter(init.xavier_uniform((dim, dim), rng), name="w_q")
        self.w_k = Parameter(init.xavier_uniform((dim, dim), rng), name="w_k")
        self.w_v = Parameter(init.xavier_uniform((dim, dim), rng), name="w_v")

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention over ``(B, T, dim)`` input.

        ``mask`` (B, T) hides padded positions from both queries and keys.
        """
        q = x @ self.w_q
        k = x @ self.w_k
        v = x @ self.w_v
        # dim is a positive integer hyperparameter, never zero.
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.dim))  # lint: allow(N002)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            key_mask = np.broadcast_to(np.expand_dims(mask, -2), scores.shape)
            weights = masked_softmax(scores, key_mask, axis=-1)
            weights = weights * Tensor(np.expand_dims(mask, -1).astype(float))
        else:
            weights = softmax(scores, axis=-1)
        return weights @ v
