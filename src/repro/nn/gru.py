"""Batched, mask-aware GRU (Cho et al., 2014).

Section II-B of the paper discusses GRU alongside LSTM as the gated RNNs
used for sequence representation.  The reproduction uses it for a backbone
ablation: swapping TMN's LSTM for a GRU isolates how much of the result
depends on the specific recurrent cell.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, stack, where
from . import init
from .module import Module, Parameter

__all__ = ["GRU", "GRUCell"]


class GRUCell(Module):
    """One GRU step: ``(x, h) -> h'`` with update/reset gates."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("GRU sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        # Gate layout: [reset, update] for the first two blocks; candidate
        # weights are separate because the reset gate modulates h first.
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 2 * h), rng), name="weight_ih")
        self.weight_hh = Parameter(init.orthogonal((h, 2 * h), rng), name="weight_hh")
        self.bias = Parameter(np.zeros(2 * h), name="bias")
        self.weight_in = Parameter(init.xavier_uniform((input_size, h), rng), name="weight_in")
        self.weight_hn = Parameter(init.orthogonal((h, h), rng), name="weight_hn")
        self.bias_n = Parameter(np.zeros(h), name="bias_n")

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """Run the GRU over the padded batch (see class docstring)."""
        hs = self.hidden_size
        gates = (x @ self.weight_ih + h_prev @ self.weight_hh + self.bias).sigmoid()
        r = gates[:, :hs]
        z = gates[:, hs:]
        n = (x @ self.weight_in + (r * h_prev) @ self.weight_hn + self.bias_n).tanh()
        return (1.0 - z) * n + z * h_prev


class GRU(Module):
    """Unidirectional GRU over a padded (B, T, D) batch, same contract as
    :class:`repro.nn.LSTM` (mask carries the state through padding)."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        initial_state: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Run the GRU over the padded batch (see class docstring)."""
        if x.ndim != 3:
            raise ValueError(f"GRU expects (B, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = initial_state if initial_state is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(steps):
            h_new = self.cell(x[:, t, :], h)
            if mask is not None:
                h = where(mask[:, t : t + 1], h_new, h)
            else:
                h = h_new
            outputs.append(h)
        return stack(outputs, axis=1), h
