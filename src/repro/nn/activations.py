"""Activation modules.

The paper's point-embedding layer uses LeakyReLU with slope 0.1 (Eq. 5);
the rest are provided for baselines and experimentation.
"""

from __future__ import annotations

from ..autograd import Tensor
from .module import Module

__all__ = ["Activation", "LeakyReLU", "ReLU", "Tanh", "Sigmoid"]


class Activation(Module):
    """Marker base class for parameter-free activation modules."""


class LeakyReLU(Activation):
    """LeakyReLU: x if x >= 0 else slope * x (paper Eq. 5, slope = 0.1)."""

    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation elementwise."""
        return x.leaky_relu(self.negative_slope)


class ReLU(Activation):
    """Rectified linear unit: max(x, 0)."""
    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation elementwise."""
        return x.relu()


class Tanh(Activation):
    """Hyperbolic tangent activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation elementwise."""
        return x.tanh()


class Sigmoid(Activation):
    """Logistic sigmoid activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Apply the activation elementwise."""
        return x.sigmoid()
