"""Linear (affine) layers and the MLP head used by TMN (Eq. 4 and Eq. 13)."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor
from . import init
from .activations import Activation, LeakyReLU
from .module import Module, Parameter

__all__ = ["Linear", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Weights use PyTorch's default Kaiming-uniform scheme so behaviour is
    comparable with the paper's PyTorch implementation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((in_features, out_features), rng), name="weight"
        )
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, bound), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map over the last axis."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class MLP(Module):
    """Multi-layer perceptron: Linear → activation → ... → Linear.

    The paper applies an MLP to every LSTM output row (Eq. 13); because our
    Linear broadcasts over leading axes, the same module handles (B, T, d)
    inputs directly.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: Optional[Activation] = None,
        rng: Optional[np.random.Generator] = None,
        final_activation: bool = False,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.activation = activation if activation is not None else LeakyReLU(0.1)
        self.final_activation = final_activation
        self.linears = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(n_in, n_out, rng=rng)
            self.linears.append(layer)
            self.register_module(f"linear{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map over the last axis."""
        last = len(self.linears) - 1
        for i, layer in enumerate(self.linears):
            x = layer(x)
            if i < last or self.final_activation:
                x = self.activation(x)
        return x
