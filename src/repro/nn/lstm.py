"""Batched, mask-aware LSTM.

Every model in the paper (SRN, NeuTraj, T3S, Traj2SimVec, TMN) uses an LSTM
backbone over padded trajectory batches.  This implementation follows the
standard formulation of Hochreiter & Schmidhuber with input/forget/cell/
output gates and supports a per-time-step validity mask: at padded steps the
hidden and cell states are carried forward unchanged, so the output at any
step ``>= length`` equals the representation of the last real point — which
is exactly the "final time step output" the paper uses as the trajectory
embedding.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, stack, where
from . import init
from .module import Module, Parameter

__all__ = ["LSTM", "LSTMCell", "gather_last"]


class LSTMCell(Module):
    """A single LSTM step: (x_t, h, c) -> (h', c')."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTM sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * h), rng), name="weight_ih")
        self.weight_hh = Parameter(init.orthogonal((h, 4 * h), rng), name="weight_hh")
        bias = np.zeros(4 * h)
        # Forget-gate bias of 1.0: the usual trick that stabilises early
        # training by defaulting to remembering.
        bias[h : 2 * h] = 1.0
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """Run one LSTM step on a batch (see class docstring)."""
        from .fused import fused_lstm_step

        h_prev, c_prev = state
        return fused_lstm_step(x, h_prev, c_prev, self.weight_ih, self.weight_hh, self.bias)

    def forward_composed(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """Reference implementation from primitive ops.

        Kept for validating the fused step (the test suite asserts both
        paths produce identical values and gradients).
        """
        h_prev, c_prev = state
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class LSTM(Module):
    """Unidirectional LSTM over a padded batch.

    Parameters
    ----------
    input_size:
        Dimension of each time step's feature vector.
    hidden_size:
        Dimension of the hidden state (the paper's ``d``).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        initial_state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Run the LSTM over a (batch, time, feature) tensor.

        Parameters
        ----------
        x:
            Input of shape ``(B, T, input_size)``.
        mask:
            Optional boolean array ``(B, T)``; False marks padding.  Padded
            steps leave ``h``/``c`` unchanged.
        initial_state:
            Optional ``(h0, c0)`` each of shape ``(B, hidden_size)``.

        Returns
        -------
        outputs:
            Tensor ``(B, T, hidden_size)`` of hidden states at every step
            (the paper's ``Z``).
        (h, c):
            Final hidden and cell state.
        """
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (B, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        if initial_state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = initial_state
        outputs = []
        for t in range(steps):
            x_t = x[:, t, :]
            h_new, c_new = self.cell(x_t, (h, c))
            if mask is not None:
                m = mask[:, t : t + 1]
                h = where(m, h_new, h)
                c = where(m, c_new, c)
            else:
                h, c = h_new, c_new
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)


def gather_last(outputs: Tensor, lengths: np.ndarray) -> Tensor:
    """Select each sequence's output at its true final step.

    ``outputs`` has shape (B, T, H) and ``lengths`` gives each sequence's
    unpadded length; row ``b`` of the result is ``outputs[b, lengths[b]-1]``
    — the paper's ``O^(m)`` trajectory embedding.
    """
    lengths = np.asarray(lengths, dtype=int)
    if np.any(lengths < 1) or np.any(lengths > outputs.shape[1]):
        raise ValueError("lengths out of range for gather_last")
    rows = np.arange(outputs.shape[0])
    return outputs[rows, lengths - 1]
