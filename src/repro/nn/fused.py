"""Fused LSTM step with a hand-derived backward pass.

Composing an LSTM step from ~15 primitive autodiff ops makes every training
step pay substantial tape overhead.  This module implements the whole cell
update as two tape nodes (one per output) with an analytically derived
gradient, giving identical results several times faster.  The gradient is
validated against both finite differences and the composed implementation
in the test suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor, profiled_op

__all__ = ["fused_lstm_step"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Overflow-free two-branch form: the exponent is always <= 0.
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


@profiled_op
def fused_lstm_step(
    x: Tensor,
    h: Tensor,
    c: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor]:
    """One LSTM cell update ``(x, h, c) -> (h', c')`` as a fused op.

    Gate layout follows :class:`repro.nn.lstm.LSTMCell`: the 4H columns of
    the weight matrices are [input, forget, cell, output].

    Because gradients are linear in the incoming ``(dh', dc')``, the two
    outputs carry independent backward closures that accumulate into the
    same parents.
    """
    hidden = h.data.shape[1]
    gates = x.data @ w_ih.data + h.data @ w_hh.data + bias.data
    i = _sigmoid(gates[:, 0 * hidden : 1 * hidden])
    f = _sigmoid(gates[:, 1 * hidden : 2 * hidden])
    g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o = _sigmoid(gates[:, 3 * hidden : 4 * hidden])
    c_new = f * c.data + i * g
    tanh_c = np.tanh(c_new)
    h_new = o * tanh_c

    parents = (x, h, c, w_ih, w_hh, bias)

    def send_all(node: Tensor, d_ct: np.ndarray, d_o: np.ndarray) -> None:
        """Distribute gradients given dLoss/dc_new (pre-output) and dLoss/do."""
        d_i = d_ct * g
        d_f = d_ct * c.data
        d_g = d_ct * i
        d_c_prev = d_ct * f
        d_gates = np.concatenate(
            [
                d_i * i * (1.0 - i),
                d_f * f * (1.0 - f),
                d_g * (1.0 - g * g),
                d_o * o * (1.0 - o),
            ],
            axis=1,
        )
        node._send(x, d_gates @ w_ih.data.T)
        node._send(h, d_gates @ w_hh.data.T)
        node._send(c, d_c_prev)
        node._send(w_ih, x.data.T @ d_gates)
        node._send(w_hh, h.data.T @ d_gates)
        node._send(bias, d_gates.sum(axis=0))

    def backward_h(grad: np.ndarray) -> None:
        d_o = grad * tanh_c
        d_ct = grad * o * (1.0 - tanh_c * tanh_c)
        send_all(out_h, d_ct, d_o)

    def backward_c(grad: np.ndarray) -> None:
        send_all(out_c, grad, np.zeros_like(grad))

    out_h = Tensor._make(h_new, parents, backward_h)
    out_c = Tensor._make(c_new, parents, backward_c)
    return out_h, out_c
