"""Module and Parameter base classes (the ``torch.nn.Module`` analogue).

Modules register parameters and sub-modules automatically on attribute
assignment, so ``model.parameters()`` finds every trainable tensor and
``state_dict()`` round-trips weights for persistence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A Tensor that is a trainable weight of a Module."""

    __slots__ = ()

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses define parameters/sub-modules as attributes in ``__init__``
    and implement :meth:`forward`.  Calling the module invokes ``forward``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a sub-module that is not a direct attribute (e.g. list items)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted_name, parameter) pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter in the tree."""
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively; returns self for chaining."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (training=False) recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted path."""
        return {name: np.array(p.data, copy=True) for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters by dotted path, validating keys and shapes."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute this module's output; subclasses must implement it."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            self.register_module(f"layer{i}", module)

    def forward(self, x):
        """Compute this module's output; subclasses must implement it."""
        for module in self.layers:
            x = module(x)
        return x
