"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed — a requirement for the
reproducibility of every experiment in this repo.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "orthogonal",
    "uniform",
    "zeros",
]


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform, matching PyTorch's default Linear init."""
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for LSTM recurrent weights for stable training)."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """U(-bound, bound)."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation."""
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[0] * int(np.prod(shape[2:])) if len(shape) > 2 else shape[0]
    fan_out = shape[1] * int(np.prod(shape[2:])) if len(shape) > 2 else shape[1]
    return fan_in, fan_out
