"""Neural network building blocks on top of :mod:`repro.autograd`.

Provides the Module/Parameter system, linear layers, activations, a batched
mask-aware LSTM and the attention primitives (cross-trajectory matching and
self-attention) used by TMN and the baselines.
"""

from .activations import Activation, LeakyReLU, ReLU, Sigmoid, Tanh
from .attention import SelfAttention, cross_match, match_pattern
from .gru import GRU, GRUCell
from .linear import MLP, Linear
from .lstm import LSTM, LSTMCell, gather_last
from .module import Module, Parameter, Sequential

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "MLP",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "gather_last",
    "SelfAttention",
    "cross_match",
    "match_pattern",
    "Activation",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
]
