"""LRU embedding cache keyed by trajectory content hash.

Serving turns similarity queries into embedding distances (the paper's
core efficiency claim, Table III), so the expensive step on the hot path
is the encoder forward.  Real query streams are heavily repetitive —
popular routes recur — which makes a content-addressed cache the first
line of defence before the micro-batching queue.

Keys are SHA-1 digests of the raw float64 point bytes plus the shape, so
two trajectories hash equal exactly when their coordinate arrays are
bit-identical; no tolerance-based matching (that would silently change
answers).  Eviction is least-recently-used.  All methods are thread-safe:
worker threads probe the cache concurrently while the batcher thread
fills it.

Hit/miss totals are mirrored into the process metrics registry
(``serve.cache.hits`` / ``serve.cache.misses`` counters and a
``serve.cache.size`` gauge) so ``serve-bench`` and run records can report
hit rates without reaching into server internals.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..obs.lockstats import new_lock
from ..obs.metrics import get_registry
from ..obs.trace import trace_span

__all__ = ["EmbeddingCache", "trajectory_key"]


def trajectory_key(traj) -> str:
    """Content hash of a trajectory: SHA-1 over shape + float64 point bytes.

    Accepts raw ``(n, 2)`` arrays or ``Trajectory`` objects (anything with
    a ``.points`` attribute).  Bit-identical coordinate arrays — and only
    those — map to the same key.
    """
    points = traj.points if hasattr(traj, "points") else traj
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    digest = hashlib.sha1()
    digest.update(str(points.shape).encode("ascii"))
    digest.update(points.tobytes())
    return digest.hexdigest()


class EmbeddingCache:
    """Thread-safe LRU cache from trajectory content hash to embedding.

    Parameters
    ----------
    capacity:
        Maximum number of embeddings retained; the least recently used
        entry is evicted when full.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._lock = new_lock("serve.cache")
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[np.ndarray]:
        """The cached embedding for ``key``, or None; counts a hit or miss.

        The probe, the LRU promotion and the hit/miss tally are one
        atomic section: a concurrent eviction between lookup and count
        can never skew the totals or promote a removed key.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        # Registry mirroring runs outside the cache lock: the counters
        # take the shared metrics lock, and holding both at once would
        # put a cross-lock edge on every cache probe for no benefit.
        if entry is None:
            get_registry().counter("serve.cache.misses").inc()
            return None
        get_registry().counter("serve.cache.hits").inc()
        return entry

    def put(self, key: str, embedding: np.ndarray) -> None:
        """Insert (or refresh) one embedding, evicting LRU entries if full."""
        embedding = np.asarray(embedding, dtype=np.float64)
        # Write-back is on the request hot path: attribute it on the
        # request trace when one is active (no-op otherwise).
        with trace_span("cache-put"):
            with self._lock:
                self._entries[key] = embedding
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                size = len(self._entries)
            get_registry().gauge("serve.cache.size").set(size)

    @property
    def nbytes(self) -> int:
        """Exact payload bytes held: embedding buffers + key strings.

        Counts the numpy buffer of every cached embedding plus the
        interpreter size of its digest key — the quantity the memory
        accounting layer reports, deliberately excluding dict/list
        container overhead so the number is stable across CPython
        versions and directly comparable before/after compression.
        """
        import sys as _sys

        with self._lock:
            return sum(
                value.nbytes + _sys.getsizeof(key)
                for key, value in self._entries.items()
            )

    @property
    def hits(self) -> int:
        """Number of :meth:`get` calls that found an entry."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Number of :meth:`get` calls that found nothing."""
        with self._lock:
            return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never probed)."""
        with self._lock:
            hits, misses = self._hits, self._misses
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total

    def clear(self) -> None:
        """Drop every cached embedding (hit/miss totals are kept)."""
        with self._lock:
            self._entries.clear()
        get_registry().gauge("serve.cache.size").set(0)
