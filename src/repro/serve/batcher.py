"""Micro-batching encode queue: coalesce concurrent requests into batches.

The encoder is dramatically cheaper per trajectory when it runs on a
padded batch (one Python-level timestep loop serves the whole batch)
than when every request triggers its own forward.  This module turns
that batch efficiency into *concurrent* serving throughput: worker
threads submit single trajectories and receive futures, while one
flusher thread drains the queue into padded model batches, flushing
when either ``max_batch_size`` requests have accumulated or the oldest
request has waited ``max_wait_ms`` — the classic size-or-deadline
micro-batching policy.

Fault isolation: the encoder runs only on the flusher thread, and an
exception inside one batched forward is caught there and delivered to
exactly that batch's futures.  The queue, the flusher thread and every
other in-flight request stay serviceable; ``serve.batch.errors`` /
``serve.batch.failed_requests`` count the blast radius.

Instrumentation (always on, registry-level): ``serve.queue.depth``
gauge sampled at each flush, ``serve.batch.size`` histogram,
``serve.batch.seconds`` histogram, and request/flush counters.

Request tracing: when the submitting thread has an active trace
(:mod:`repro.obs.trace`), :meth:`MicroBatcher.submit` captures a
cross-thread :class:`~repro.obs.trace.Handoff` token.  The flush thread
stamps two spans back onto each request's own trace — ``queue-wait``
(enqueue → flush start) and ``forward`` (the batched encode interval,
annotated with the batch size it shared) — so a request's trace shows
exactly how its wall time split between waiting and computing, even
though the computation happened on another thread.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..obs.lockstats import new_lock
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import current_trace

__all__ = ["MicroBatcher"]

_LOG = get_logger("repro.serve.batcher")


class _Request:
    """One enqueued encode request: the trajectory plus its result future.

    ``handoff`` carries the submitting thread's trace continuation (or
    None when the caller was not tracing) so the flush thread can
    attribute queue-wait and forward time back to the right trace.
    """

    __slots__ = ("traj", "future", "enqueued_at", "handoff")

    def __init__(self, traj):
        self.traj = traj
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        trace = current_trace()
        self.handoff = trace.handoff() if trace is not None else None


class MicroBatcher:
    """Coalesces concurrent ``encode(traj)`` calls into padded model batches.

    Parameters
    ----------
    encode_fn:
        ``f(list_of_trajectories) -> (B, d) ndarray``.  Called only from
        the internal flusher thread, so the underlying model needs no
        thread-safety of its own.
    max_batch_size:
        Flush as soon as this many requests have accumulated.
    max_wait_ms:
        Flush when the oldest queued request has waited this long, even
        if the batch is not full — bounds added latency under low load.
    idle_grace_ms:
        How long the collector keeps listening on an *empty* queue before
        flushing a partial batch.  Requests from already-blocked callers
        cannot arrive (closed-loop traffic), so once the queue stays
        quiet for this long the batch is as full as it will get; waiting
        out the whole ``max_wait_ms`` would only add dead time.
    name:
        Metric-name prefix (defaults to ``serve``), so several batchers
        can coexist without mixing their counters.

    Use as a context manager or call :meth:`close` to stop the flusher
    thread; pending requests are failed with ``RuntimeError`` on close.
    """

    def __init__(
        self,
        encode_fn: Callable[[Sequence], np.ndarray],
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        idle_grace_ms: float = 0.5,
        name: str = "serve",
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if idle_grace_ms < 0:
            raise ValueError("idle_grace_ms must be >= 0")
        self._encode_fn = encode_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.idle_grace_s = idle_grace_ms / 1000.0
        self._name = name
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue()
        # Guards the closed flag and the submit-vs-close race: a request
        # is enqueued under the lock only while the batcher is open, so
        # close() can never strand an accepted request after its drain.
        self._lock = new_lock(f"{name}.batcher")
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-microbatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, traj) -> Future:
        """Enqueue one trajectory; the future resolves to its (d,) embedding."""
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            request = _Request(traj)
            self._queue.put(request)
        get_registry().counter(f"{self._name}.requests").inc()
        return request.future

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the flusher thread; fail any still-pending futures.

        Idempotent: the first call wins the flag under the lock and does
        the shutdown; later calls return immediately.  The join and the
        drain run outside the lock — joining a thread while holding a
        lock submitters contend on would serialise shutdown behind them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)  # wake the flusher
        self._thread.join(timeout=timeout)
        # Fail whatever was accepted before the flag flipped but never
        # flushed; no new request can be enqueued once _closed is set.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request is not None:
                request.future.set_exception(RuntimeError("MicroBatcher closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self, first: _Request) -> List[_Request]:
        """Gather one batch: flush on size, deadline, or idle queue.

        Each wait listens at most ``idle_grace_s`` — when nothing new
        arrives in that window the batch is flushed early rather than
        stalling until the hard ``max_wait_s`` deadline (requests from
        blocked callers cannot arrive while they wait on us).
        """
        batch = [first]
        deadline = first.enqueued_at + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                request = self._queue.get(timeout=min(remaining, self.idle_grace_s))
            except queue.Empty:
                break  # queue went idle: flush what we have
            if request is None:  # close sentinel: flush what we have
                self._queue.put(None)
                break
            batch.append(request)
        return batch

    def _flush(self, batch: List[_Request]) -> None:
        """Run one batched forward; deliver results or fail only this batch."""
        registry = get_registry()
        registry.gauge(f"{self._name}.queue.depth").set(self._queue.qsize())
        registry.histogram(f"{self._name}.batch.size").observe(len(batch))
        start = time.perf_counter()
        for request in batch:
            if request.handoff is not None:
                # Queue-wait is the enqueue → flush-start interval, stamped
                # onto the request's own trace (not the flush thread's).
                request.handoff.record(
                    "queue-wait", request.enqueued_at, start,
                    batch_size=len(batch),
                )
        try:
            embeddings = np.asarray(self._encode_fn([r.traj for r in batch]))
            if embeddings.ndim != 2 or embeddings.shape[0] != len(batch):
                raise ValueError(
                    f"encode_fn returned shape {embeddings.shape} "
                    f"for a batch of {len(batch)}"
                )
        # The flusher thread must survive *anything* the encoder throws —
        # a dead flusher hangs every future ever submitted — so this
        # boundary is deliberately BaseException-wide.
        except BaseException as exc:  # lint: allow(E002) fault isolation boundary
            end = time.perf_counter()
            # Every swallowed fault is attributable post-hoc: type + batch.
            _LOG.warning(
                "batch-failed", error=type(exc).__name__,
                batch_size=len(batch), queue=self._name,
            )
            for request in batch:
                if request.handoff is not None:
                    request.handoff.record(
                        "forward", start, end,
                        batch_size=len(batch), error=type(exc).__name__,
                    )
            registry.counter(f"{self._name}.batch.errors").inc()
            registry.counter(f"{self._name}.batch.failed_requests").inc(len(batch))
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        end = time.perf_counter()
        for request in batch:
            if request.handoff is not None:
                # The forward interval is shared by the whole batch: each
                # trace records it with the batch size that amortised it.
                request.handoff.record("forward", start, end, batch_size=len(batch))
        registry.histogram(f"{self._name}.batch.seconds").observe(end - start)
        registry.counter(f"{self._name}.batches").inc()
        for request, embedding in zip(batch, embeddings):
            if not request.future.done():
                request.future.set_result(embedding)

    def _run(self) -> None:
        """Flusher loop: block for the first request, coalesce, flush."""
        while True:
            request = self._queue.get()
            if request is None:
                return
            self._flush(self._collect(request))
