"""Sharded multi-process serving: scatter-gather top-k over worker-owned shards.

:class:`~repro.serve.engine.SimilarityServer` tops out at the GIL — every
batched forward and every HNSW beam search shares one interpreter, so
thread count stops buying throughput (ROADMAP open item 1).  This module
breaks that ceiling with a process pool:

- **N worker processes**, each owning one :class:`~repro.index.hnsw.HNSWIndex`
  shard, its own encoder replica and its own
  :class:`~repro.serve.batcher.MicroBatcher`.  Stored trajectories are
  assigned to shards round-robin by database id (or by content hash, the
  same SHA-1 the :class:`~repro.serve.cache.EmbeddingCache` keys on).
- **Shared-memory handoff**: query payloads (trajectory points and query
  embeddings — the float64 buffers the cache already content-hashes) are
  written into a per-worker :class:`_ShmSlab` slot and referenced by slot
  index in the request message, so the hot path never pickles a large
  array.  Slots are recycled only after the worker's response arrives,
  which makes the handoff bit-exact by construction (tests assert this).
- **Scatter-gather merge**: the coordinator fans a query embedding out to
  every live shard, gathers per-shard top-k under a per-shard deadline
  and merges with :func:`merge_topk` — exact, with the same tie order as
  a single stable-argsort over one global index.

Degradation contract (the same never-raises promise as the single-process
engine, statically verified by the E001 pass):

- a shard that is dead, hung past its deadline, or erroring is covered by
  an exact brute-force scan over the coordinator's retained copy of that
  shard's embedding block — the answer is *degraded-but-exact in
  embedding space* (``degraded=True``, coverage intact);
- if encoding itself fails everywhere, the true-metric fallback scans the
  coordinator's retained trajectories (identical to the single-process
  degraded path);
- anything unexpected lands in a literal-only empty result, the one
  construction the exception model proves cannot raise.

Ownership rules for shared memory: the **coordinator** creates, names and
unlinks every segment (``close()`` is the single cleanup point); workers
attach read-only and immediately deregister from their resource tracker
so a worker exit — clean or SIGKILL — can never unlink a live segment.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
import multiprocessing as mp
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..index.hnsw import HNSWIndex
from ..metrics import MetricSpec, get_metric
from ..obs.expo import register_scrape_hook, unregister_scrape_hook
from ..obs.lockstats import new_lock
from ..obs.log import get_logger
from ..obs.metrics import get_registry, mirror_snapshot
from ..obs.trace import (
    ROOT,
    TraceContext,
    begin_remote,
    export_subtree,
    get_tracer,
    graft_subtree,
)
from .batcher import MicroBatcher
from .cache import EmbeddingCache, trajectory_key
from .engine import ServeResult, exact_metric_topk

__all__ = [
    "SHM_PREFIX",
    "FeatureEncoder",
    "ShardDeadError",
    "ShardedSimilarityServer",
    "assign_shard",
    "merge_topk",
]

_LOG = get_logger("repro.serve.shard")

#: Prefix of every shared-memory segment this module creates; lifecycle
#: tests sweep ``/dev/shm`` for it to prove nothing leaks.
SHM_PREFIX = "reproshard"

#: Process-wide source of unique segment suffixes (pid reuse is handled
#: by retrying on name collision, see ``_ShmSlab``).
_SEGMENT_COUNTER = itertools.count()


class ShardDeadError(RuntimeError):
    """A request's owning worker process died before answering."""


# ----------------------------------------------------------------------
# Pure functions: shard assignment and the scatter-gather merge.
# ----------------------------------------------------------------------
def assign_shard(
    gid: int, n_shards: int, strategy: str = "round-robin", key: Optional[str] = None
) -> int:
    """Shard index owning database id ``gid``.

    ``round-robin`` stripes ids across shards (balanced by construction);
    ``hash`` buckets by the trajectory's content digest (``key``, the
    same SHA-1 hex the embedding cache uses), so identical content always
    lands on the same shard regardless of insertion order.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if strategy == "round-robin":
        return gid % n_shards
    if strategy == "hash":
        if key is None:
            raise ValueError("hash strategy needs the trajectory content key")
        return int(key[:12], 16) % n_shards
    raise ValueError(f"unknown shard strategy {strategy!r}")


def merge_topk(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]], k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(distances, global_ids)`` lists into a global top-k.

    Each part must hold a shard's *local* top-``min(k, shard size)`` with
    exact, mutually comparable distance values (the serving path passes
    squared L2 throughout).  The merge sorts lexicographically by
    ``(distance, global_id)`` — for exact parts this reproduces a single
    stable argsort over the union, so ties at the k-boundary resolve to
    the lowest global id exactly as a one-index brute force would.
    """
    kept = [(d, g) for d, g in parts if len(g)]
    if not kept:
        return np.zeros(0), np.zeros(0, dtype=int)
    dists = np.concatenate([np.asarray(d, dtype=np.float64) for d, _ in kept])
    gids = np.concatenate([np.asarray(g, dtype=int) for _, g in kept])
    order = np.lexsort((gids, dists))[: max(k, 0)]
    return dists[order], gids[order]


# ----------------------------------------------------------------------
# A cheap, picklable encoder (workers must be able to rebuild their
# encoder in a spawned interpreter; benches and tests use this one).
# ----------------------------------------------------------------------
class FeatureEncoder:
    """Deterministic geometric-feature encoder, picklable across spawn.

    Summarises each trajectory with eight scale-stable statistics (mean,
    spread, endpoints) and projects them through a fixed random matrix to
    ``dim`` — orders of magnitude cheaper than a model forward, which
    makes it the right substrate for serving-machinery benchmarks where
    encode cost must not mask index/IPC behaviour.
    """

    def __init__(self, dim: int = 16, seed: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._proj = rng.normal(size=(8, dim)) / np.sqrt(8.0)

    @staticmethod
    def _features(points: np.ndarray) -> np.ndarray:
        """Eight float64 summary features of one ``(n, 2)`` trajectory."""
        points = np.asarray(points, dtype=np.float64)
        mean = points.mean(axis=0)
        std = points.std(axis=0)
        return np.concatenate([mean, std, points[0], points[-1]])

    def __call__(self, trajs: Sequence) -> np.ndarray:
        """Encode a list of trajectories to a ``(B, dim)`` float64 array."""
        feats = np.stack([self._features(np.asarray(t)) for t in trajs])
        return feats @ self._proj


# ----------------------------------------------------------------------
# Shared-memory slab: fixed float64 slots, coordinator-owned lifecycle.
# ----------------------------------------------------------------------
class _ShmSlab:
    """Fixed-slot shared-memory arena for float64 payload handoff.

    The coordinator creates (and later unlinks) one slab per worker;
    callers ``acquire`` a slot, ``write`` an array into it and pass the
    slot index in the request message.  A slot is recycled only once the
    worker's response for it arrived (or its worker is declared dead), so
    a slow worker can never observe a half-overwritten payload.
    """

    def __init__(self, slots: int, slot_bytes: int):
        if slots < 1 or slot_bytes < 8:
            raise ValueError("slab needs >= 1 slot of >= 8 bytes")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._shm: Optional[shared_memory.SharedMemory] = None
        while self._shm is None:
            name = f"{SHM_PREFIX}-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, name=name, size=slots * slot_bytes
                )
            except FileExistsError:
                continue  # stale segment from a recycled pid: pick a new name
        self.name = self._shm.name
        self._free = list(range(slots))
        self._lock = new_lock("serve.shard.slab")

    def acquire(self) -> Optional[int]:
        """A free slot index, or None when the slab is exhausted."""
        with self._lock:
            return self._free.pop() if self._free else None

    def release(self, slot: int) -> None:
        """Return a slot to the free list (idempotence is the caller's job)."""
        with self._lock:
            self._free.append(slot)

    def write(self, slot: int, array: np.ndarray) -> Tuple[int, ...]:
        """Copy ``array`` (float64) into ``slot``; returns its shape token."""
        flat = np.ascontiguousarray(array, dtype=np.float64).ravel()
        if flat.nbytes > self.slot_bytes:
            raise ValueError(f"payload of {flat.nbytes} B exceeds slot size")
        with self._lock:
            shm = self._shm
        if shm is None:
            raise ValueError("slab is closed")
        view = np.frombuffer(
            shm.buf, dtype=np.float64, count=flat.size,
            offset=slot * self.slot_bytes,
        )
        view[:] = flat
        return tuple(np.asarray(array).shape)

    def close(self) -> None:
        """Close and unlink the segment (idempotent, swallows races)."""
        with self._lock:
            shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # already gone: nothing to own
            pass


def _attach_slab(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach to the coordinator's slab, without tracking.

    A plain attach registers the segment with the resource tracker,
    which creates the classic double-owner hazard: the tracker would
    unlink a segment the coordinator still owns, and (because spawned
    workers share the coordinator's tracker process) the worker-side
    registration collides with the coordinator's own.  The coordinator
    is the sole owner, so registration is suppressed for the duration of
    the attach — the 3.11-compatible equivalent of Python 3.13's
    ``SharedMemory(..., track=False)``.  After this, neither a clean
    worker exit nor a SIGKILL can destroy a live segment, and the
    coordinator's eventual ``unlink`` stays the one and only
    deregistration the tracker sees.
    """
    from multiprocessing import resource_tracker

    real_register = resource_tracker.register

    def _skip_shm(tracked_name, rtype):  # pragma: no cover - attach-scope shim
        if rtype != "shared_memory":
            real_register(tracked_name, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def _read_slot(
    shm: shared_memory.SharedMemory, slot: int, slot_bytes: int, shape: Sequence[int]
) -> np.ndarray:
    """Copy one float64 payload out of a slab slot."""
    count = int(np.prod(shape)) if len(shape) else 1
    view = np.frombuffer(
        shm.buf, dtype=np.float64, count=count, offset=slot * slot_bytes
    )
    return view.reshape(tuple(shape)).copy()


# ----------------------------------------------------------------------
# Worker process.
# ----------------------------------------------------------------------
@dataclass
class _ShardSpec:
    """Everything a spawned worker needs to rebuild its serving stack.

    ``encoder`` must be picklable (e.g. :class:`FeatureEncoder`, or any
    model object whose state pickles) — it is rebuilt inside the worker
    interpreter, never shared.
    """

    encoder: object
    dim: int
    m: int = 8
    ef_construction: int = 64
    ef_search: Optional[int] = None
    brute_threshold: int = 64
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    idle_grace_ms: float = 0.5
    seed: int = 0


def _encode_block(encode_fn: Callable, trajs: Sequence, dim: int) -> np.ndarray:
    """One validated float64 encode of ``trajs`` -> ``(B, dim)``."""
    out = np.asarray(encode_fn(trajs), dtype=np.float64)
    if out.ndim != 2 or out.shape != (len(trajs), dim):
        raise ValueError(f"encoder returned {out.shape}, expected ({len(trajs)}, {dim})")
    return out


def _resolve_encoder(encoder: object) -> Callable:
    """The encode callable behind ``encoder`` (model-or-callable duality)."""
    if hasattr(encoder, "encode"):
        return encoder.encode
    if callable(encoder):
        return encoder
    raise TypeError("shard encoder must be callable or expose .encode()")


def _shard_search(
    index: HNSWIndex, gids: np.ndarray, embedding: np.ndarray, k: int, spec: _ShardSpec
) -> Tuple[np.ndarray, np.ndarray]:
    """This shard's local top-k as ``(squared L2, global ids)``.

    Mirrors the single-process engine's answer policy — brute force below
    ``brute_threshold`` (exact; stable argsort so ties resolve to the
    lowest local insertion order, i.e. the lowest global id within the
    shard) and graph search above it.  Distances stay *squared* on the
    wire: the coordinator merges on squared values and applies the square
    root once, exactly like the engine's brute path.
    """
    n = len(index)
    if n == 0:
        return np.zeros(0), np.zeros(0, dtype=int)
    k_eff = min(k, n)
    if n <= spec.brute_threshold or k_eff > n // 2:
        diffs = np.asarray(index.vectors[:n]) - embedding[None, :]
        sq = (diffs**2).sum(axis=1)
        order = np.argsort(sq, kind="stable")[:k_eff]
        return sq[order], gids[order]
    dists, ids = index.query(embedding, k=k_eff, ef=spec.ef_search)
    # The graph path returns root distances; square back for the uniform
    # squared-L2 wire contract (approximate path, wobble is acceptable).
    return dists**2, gids[ids]


def _shard_worker_main(
    spec: _ShardSpec,
    shard_idx: int,
    slab_name: str,
    slot_bytes: int,
    request_q,
    response_q,
) -> None:
    """Entry point of one shard worker process.

    Owns an encoder replica, an HNSW shard, a local->global id map and a
    :class:`MicroBatcher`; serves commands off ``request_q`` until the
    shutdown sentinel.  Every per-message fault is answered as an
    ``error`` payload — the loop itself must survive anything a single
    request throws, or the whole shard dies with it.
    """
    encode_fn = _resolve_encoder(spec.encoder)
    index = HNSWIndex(
        spec.dim, m=spec.m, ef_construction=spec.ef_construction,
        seed=spec.seed + shard_idx,
    )
    gids: List[int] = []
    batcher = MicroBatcher(
        lambda trajs: _encode_block(encode_fn, trajs, spec.dim),
        max_batch_size=spec.max_batch_size,
        max_wait_ms=spec.max_wait_ms,
        idle_grace_ms=spec.idle_grace_ms,
        name=f"serve.shard{shard_idx}",
    )
    shm = _attach_slab(slab_name)
    hooks: Dict[str, float] = {}
    try:
        while True:
            try:
                msg = request_q.get()
            except (EOFError, OSError):  # queue torn down under us
                break
            if msg is None or msg.get("cmd") == "shutdown":
                break
            try:
                _handle_worker_msg(
                    msg, spec, encode_fn, index, gids, batcher, shm,
                    slot_bytes, hooks, response_q,
                )
            except Exception as exc:
                # Per-message fault isolation: the requester gets the
                # error, the worker lives on for every other request.
                _LOG.warning(
                    "shard-request-failed",
                    shard=shard_idx,
                    cmd=msg.get("cmd"),
                    error=type(exc).__name__,
                )
                response_q.put(
                    {"seq": msg.get("seq", -1),
                     "error": f"{type(exc).__name__}: {exc}"}
                )
    finally:
        batcher.close()
        shm.close()


def _worker_payload(
    msg: dict, shm: shared_memory.SharedMemory, slot_bytes: int
) -> np.ndarray:
    """The float64 payload of one request: slab slot or inline fallback."""
    if "slot" in msg:
        return _read_slot(shm, msg["slot"], slot_bytes, msg["shape"])
    return np.asarray(msg["data"], dtype=np.float64)


def _request_context(msg: dict) -> Optional[TraceContext]:
    """The cross-process trace context a request carried, if any.

    Every dispatch site ships a ``trace_ctx`` key (R010 enforces this);
    it is None when the coordinator was not tracing, in which case the
    worker's subtree machinery collapses to no-ops.
    """
    wire = msg.get("trace_ctx")
    return TraceContext.from_wire(wire) if wire else None


def _record_ipc_wait(rtrace, ctx: Optional[TraceContext], msg: dict, received: float) -> None:
    """Stamp the request's IPC queue wait onto the worker subtree.

    The interval between the coordinator's ``sent_at`` stamp (mapped
    into this process's clock via the context's ``clock_offset``) and
    the worker picking the message up — distinct from the *batcher*
    queue-wait the Handoff machinery records on the encode path.
    """
    if ctx is None:
        return
    sent_local = msg.get("sent_at", received) - ctx.clock_offset
    rtrace.record_span("ipc-wait", min(sent_local, received), received, parent_id=ROOT)


def _handle_worker_msg(
    msg: dict,
    spec: _ShardSpec,
    encode_fn: Callable,
    index: HNSWIndex,
    gids: List[int],
    batcher: MicroBatcher,
    shm: shared_memory.SharedMemory,
    slot_bytes: int,
    hooks: Dict[str, float],
    response_q,
) -> None:
    """Dispatch one coordinator command inside the worker process."""
    cmd = msg["cmd"]
    seq = msg["seq"]
    received = time.perf_counter()
    if cmd == "search":
        ctx = _request_context(msg)
        rtrace = begin_remote(ctx, name="shard.search")
        _record_ipc_wait(rtrace, ctx, msg, received)
        with rtrace.handoff().resume(wait_name=None):
            with rtrace.span("slab-read"):
                embedding = _worker_payload(msg, shm, slot_bytes)
            start = time.perf_counter()
            # HNSW's own annotate() calls land on this span while the
            # subtree is bound current (hnsw_candidates / ef attribution).
            with rtrace.span("search") as search_span:
                if hooks.get("search_delay_s"):
                    time.sleep(hooks["search_delay_s"])
                sq, found = _shard_search(
                    index, np.asarray(gids, dtype=int), embedding, msg["k"], spec
                )
                search_span.set(n=len(index))
        resp = {
            "seq": seq,
            "dists": sq,
            "gids": found,
            "n": len(index),
            "search_s": time.perf_counter() - start,
            # perf_counter is CLOCK_MONOTONIC, shared across processes
            # on Linux: queue wait as seen from the worker side.
            "wait_s": max(received - msg.get("sent_at", received), 0.0),
        }
        if ctx is not None:
            resp["trace"] = export_subtree(rtrace)
        response_q.put(resp)
    elif cmd == "encode":
        ctx = _request_context(msg)
        rtrace = begin_remote(ctx, name="shard.encode")
        _record_ipc_wait(rtrace, ctx, msg, received)
        if hooks.get("encode_delay_s"):
            time.sleep(hooks["encode_delay_s"])
        # Binding the subtree current across submit() makes the batcher
        # capture its handoff, so the flush thread's queue-wait and
        # batched-forward stamps land inside this request's subtree.
        with rtrace.handoff().resume(wait_name=None):
            with rtrace.span("slab-read"):
                traj = _worker_payload(msg, shm, slot_bytes)
            future = batcher.submit(traj)

        def _deliver(done: Future, seq: int = seq, t0: float = received) -> None:
            """Post the batched-encode outcome back on the response queue.

            Runs on the flush thread *after* it stamped the queue-wait
            and forward spans, so the exported subtree is complete.
            """
            try:
                embedding = done.result()
            except BaseException as exc:  # lint: allow(E002) callback boundary
                _LOG.warning("shard-encode-failed", error=type(exc).__name__)
                resp = {"seq": seq, "error": f"{type(exc).__name__}: {exc}"}
                if ctx is not None:
                    resp["trace"] = export_subtree(rtrace)
                response_q.put(resp)
                return
            resp = {
                "seq": seq,
                "embedding": np.asarray(embedding, dtype=np.float64),
                "worker_s": time.perf_counter() - t0,
            }
            if ctx is not None:
                resp["trace"] = export_subtree(rtrace)
            response_q.put(resp)

        future.add_done_callback(_deliver)
    elif cmd == "add_batch":
        # Build-path insert: synchronous chunked encodes (bypassing the
        # batcher, like the single-process engine's add_batch) and HNSW
        # inserts; the response returns the embeddings so the coordinator
        # can retain this shard's block for exact fallback scans.
        trajs = [np.asarray(t, dtype=np.float64) for t in msg["trajs"]]
        parts: List[np.ndarray] = []
        chunk = max(spec.max_batch_size, 1)
        for lo in range(0, len(trajs), chunk):
            parts.append(_encode_block(encode_fn, trajs[lo : lo + chunk], spec.dim))
        embeddings = (
            np.concatenate(parts, axis=0) if parts else np.zeros((0, spec.dim))
        )
        for gid, embedding in zip(msg["gids"], embeddings):
            index.add(embedding)
            gids.append(int(gid))
        response_q.put({"seq": seq, "embeddings": embeddings})
    elif cmd == "echo":
        payload = _worker_payload(msg, shm, slot_bytes)
        response_q.put(
            {"seq": seq, "digest": trajectory_key(payload), "data": payload}
        )
    elif cmd == "stats":
        response_q.put(
            {
                "seq": seq,
                "pid": os.getpid(),
                "size": len(index),
                "index_bytes": index.nbytes,
                "snapshot": get_registry().snapshot(),
            }
        )
    elif cmd == "dump":
        response_q.put({"seq": seq, "state": index.state_dict(),
                        "gids": np.asarray(gids, dtype=int)})
    elif cmd == "debug":
        hooks.update(msg.get("hooks", {}))
        response_q.put({"seq": seq, "hooks": dict(hooks)})
    else:
        response_q.put({"seq": seq, "error": f"ValueError: unknown command {cmd!r}"})


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------
class _ShardHandle:
    """Coordinator-side handle to one worker: queues, slab, pending map.

    A dispatcher thread routes response payloads (by ``seq``) into the
    futures request() handed out, releasing the payload's slab slot at
    that moment — the only point the worker is provably done reading it.
    Death is detected either here (queue idle while the process is gone)
    or by a gather timeout; ``mark_dead`` is idempotent, fails every
    pending future with :class:`ShardDeadError` and counts the shard in
    ``serve.shard.dead`` exactly once.
    """

    def __init__(self, idx: int, ctx, spec: _ShardSpec, slots: int, slot_bytes: int):
        self.idx = idx
        self.slab = _ShmSlab(slots, slot_bytes)
        self.request_q = ctx.Queue()
        self.response_q = ctx.Queue()
        self.dead = False
        self._stopping = False
        self._seq = itertools.count()
        #: seq -> (future, slot or None); guarded by _plock.
        self._pending: Dict[int, Tuple[Future, Optional[int]]] = {}
        self._plock = new_lock(f"serve.shard{idx}.pending")
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(spec, idx, self.slab.name, slot_bytes, self.request_q, self.response_q),
            daemon=True,
            name=f"repro-shard-{idx}",
        )
        self.process.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch, name=f"shard{idx}-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    def request(self, msg: dict, slot: Optional[int] = None) -> Future:
        """Send one command; the future resolves to the response payload."""
        seq = next(self._seq)
        future: Future = Future()
        with self._plock:
            if self.dead:
                raise ShardDeadError(f"shard {self.idx} is dead")
            self._pending[seq] = (future, slot)
        msg = dict(msg, seq=seq, sent_at=time.perf_counter())
        self.request_q.put(msg)
        get_registry().counter("serve.shard.requests").inc()
        return future

    def send_payload(self, msg: dict, array: np.ndarray) -> Future:
        """Send a command whose float64 payload rides the shared slab.

        Falls back to inline pickling when the slab is exhausted or the
        payload outgrows a slot (counted, never fatal): correctness never
        depends on shared memory, only the hot path's speed does.
        """
        slot = self.slab.acquire()
        if slot is not None:
            try:
                shape = self.slab.write(slot, array)
            except ValueError:
                self.slab.release(slot)
                slot = None
            else:
                return self.request(dict(msg, slot=slot, shape=shape), slot=slot)
        get_registry().counter("serve.shard.slab_overflow").inc()
        return self.request(dict(msg, data=np.asarray(array, dtype=np.float64)))

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Route worker responses to their futures until stop or death."""
        while True:
            try:
                resp = self.response_q.get(timeout=0.2)
            except queue.Empty:
                with self._plock:
                    stopping = self._stopping
                if stopping:
                    return
                if not self.process.is_alive():
                    self._drain()
                    self.mark_dead("process-exited")
                    return
                continue
            except (EOFError, OSError):
                with self._plock:
                    stopping = self._stopping
                if not stopping:
                    self.mark_dead("response-queue-closed")
                return
            self._resolve(resp)

    def _resolve(self, resp: dict) -> None:
        """Complete the future for one response and recycle its slot."""
        seq = resp.get("seq", -1)
        with self._plock:
            future, slot = self._pending.pop(seq, (None, None))
        if slot is not None:
            self.slab.release(slot)
        if future is not None and not future.done():
            future.set_result(resp)

    def _drain(self) -> None:
        """Deliver responses a dying worker managed to flush before exit."""
        while True:
            try:
                resp = self.response_q.get_nowait()
            except (queue.Empty, EOFError, OSError):
                return
            self._resolve(resp)

    def mark_dead(self, reason: str) -> None:
        """Declare the worker dead once: fail pending, free slots, count it."""
        with self._plock:
            if self.dead:
                return
            self.dead = True
            pending = list(self._pending.values())
            self._pending.clear()
        for _, slot in pending:
            if slot is not None:
                self.slab.release(slot)
        error = ShardDeadError(f"shard {self.idx} died ({reason})")
        for future, _ in pending:
            if not future.done():
                future.set_exception(error)
        get_registry().counter("serve.shard.dead").inc()
        _LOG.warning("shard-dead", shard=self.idx, reason=reason, failed=len(pending))

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Orderly worker shutdown; escalates to kill. Never raises."""
        with self._plock:
            self._stopping = True
            dead = self.dead
        try:
            if self.process.is_alive() and not dead:
                self.request_q.put({"cmd": "shutdown"})
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=timeout)
        except Exception as exc:  # shutdown is best-effort by contract
            _LOG.warning("shard-stop-failed", shard=self.idx, error=type(exc).__name__)
        with self._plock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(ShardDeadError(f"shard {self.idx} closed"))
        for q in (self.request_q, self.response_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception as exc:  # queue internals already torn down
                _LOG.debug(
                    "shard-queue-close", shard=self.idx, error=type(exc).__name__
                )
        self._dispatcher.join(timeout=timeout)
        self.slab.close()


class ShardedSimilarityServer:
    """Process-pool top-k serving: N shard workers, one merging coordinator.

    The public surface mirrors :class:`~repro.serve.engine.SimilarityServer`
    (``add`` / ``add_batch`` / ``topk`` / ``stats`` / ``memory_stats`` /
    ``close``), with the same never-raises ``topk`` contract — see the
    module docstring for the architecture and degradation tiers.

    Parameters
    ----------
    encoder:
        Picklable encode callable (or model with ``.encode``); each
        worker rebuilds its own replica in a spawned interpreter.
    dim:
        Embedding dimensionality.
    n_shards:
        Worker process count (>= 1).
    strategy:
        ``"round-robin"`` (default) or ``"hash"`` shard assignment.
    shard_deadline_s:
        Gather budget per request: shards that have not answered by then
        are covered by the coordinator's exact fallback scan.
    slots / slot_bytes:
        Shared-memory slab geometry per worker (payloads larger than a
        slot fall back to inline pickling).
    stats_ttl_s:
        Minimum age before a Prometheus scrape re-pulls worker registry
        snapshots (see :meth:`refresh_shard_telemetry`).
    """

    def __init__(
        self,
        encoder: object,
        dim: int,
        *,
        n_shards: int = 2,
        strategy: str = "round-robin",
        shard_deadline_s: float = 2.0,
        cache_capacity: int = 4096,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        idle_grace_ms: float = 0.5,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: Optional[int] = None,
        brute_threshold: int = 64,
        fallback_metric: Union[str, MetricSpec] = "dtw",
        degraded_scan_limit: int = 256,
        slots: int = 64,
        slot_bytes: int = 32768,
        build_timeout_s: float = 600.0,
        stats_ttl_s: float = 1.0,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if strategy not in ("round-robin", "hash"):
            raise ValueError(f"unknown shard strategy {strategy!r}")
        self.dim = dim
        self.n_shards = n_shards
        self.strategy = strategy
        self.shard_deadline_s = shard_deadline_s
        self.build_timeout_s = build_timeout_s
        self.degraded_scan_limit = degraded_scan_limit
        self.cache = EmbeddingCache(capacity=cache_capacity)
        self.fallback_metric = (
            fallback_metric
            if isinstance(fallback_metric, MetricSpec)
            else get_metric(fallback_metric)
        )
        self._spec = _ShardSpec(
            encoder=encoder,
            dim=dim,
            m=m,
            ef_construction=ef_construction,
            ef_search=ef_search,
            brute_threshold=brute_threshold,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            idle_grace_ms=idle_grace_ms,
            seed=seed,
        )
        # Spawn (not fork): workers must not inherit the coordinator's
        # threads, locks or sanitizer state — a forked child of a
        # multi-threaded parent is undefined behaviour waiting to happen.
        ctx = mp.get_context("spawn")
        self._handles = [
            _ShardHandle(i, ctx, self._spec, slots, slot_bytes)
            for i in range(n_shards)
        ]
        # Coordinator-retained store: trajectories by gid (true-metric
        # fallback) and per-shard embedding blocks (exact fallback scan
        # covering a dead or deadline-missing shard).
        self._trajs: List[np.ndarray] = []
        self._shard_gids: List[List[int]] = [[] for _ in range(n_shards)]
        self._blocks: List[List[np.ndarray]] = [[] for _ in range(n_shards)]
        self._block_cache: List[Optional[np.ndarray]] = [None] * n_shards
        self._store_lock = new_lock("serve.shard.store")
        self._rr = itertools.count()
        self._closed = False
        self._close_lock = new_lock("serve.shard.close")
        # Fleet telemetry: every Prometheus scrape re-pulls the worker
        # registries (TTL-throttled) instead of waiting for stats().
        self.stats_ttl_s = stats_ttl_s
        self._stats_refreshed_at: Optional[float] = None
        self._stats_lock = new_lock("serve.shard.statsttl")
        register_scrape_hook(self._refresh_on_scrape)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_points(traj) -> np.ndarray:
        """Raw float64 point array behind a trajectory-or-array argument."""
        return np.asarray(
            traj.points if hasattr(traj, "points") else traj, dtype=np.float64
        )

    def __len__(self) -> int:
        with self._store_lock:
            return len(self._trajs)

    def __enter__(self) -> "ShardedSimilarityServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def live_shards(self) -> List[int]:
        """Indices of shards whose worker process is still serving."""
        return [h.idx for h in self._handles if not h.dead]

    # ------------------------------------------------------------------
    def add(self, traj) -> int:
        """Insert one trajectory; returns its database id."""
        return self.add_batch([traj])[0]

    def add_batch(self, trajs: Sequence) -> List[int]:
        """Insert many trajectories, encoded and indexed on their shards.

        Unlike :meth:`topk` this is the build path and *does* raise — a
        worker that dies mid-build is a deployment failure, not a query
        to degrade around.
        """
        points = [self._as_points(t) for t in trajs]
        with self._store_lock:
            gid0 = len(self._trajs)
            self._trajs.extend(points)
        per_shard: Dict[int, Tuple[List[int], List[np.ndarray]]] = {}
        for offset, pts in enumerate(points):
            gid = gid0 + offset
            key = trajectory_key(pts) if self.strategy == "hash" else None
            shard = assign_shard(gid, self.n_shards, self.strategy, key)
            shard_gids, shard_pts = per_shard.setdefault(shard, ([], []))
            shard_gids.append(gid)
            shard_pts.append(pts)
        futures = []
        for shard, (shard_gids, shard_pts) in sorted(per_shard.items()):
            handle = self._handles[shard]
            if handle.dead:
                raise ShardDeadError(f"cannot add to dead shard {shard}")
            futures.append(
                (
                    handle,
                    shard_gids,
                    handle.request(
                        {"cmd": "add_batch", "trajs": shard_pts, "gids": shard_gids}
                    ),
                )
            )
        for handle, shard_gids, future in futures:
            resp = self._await_build(handle, future)
            if "error" in resp:
                raise RuntimeError(f"shard {handle.idx} add failed: {resp['error']}")
            embeddings = np.asarray(resp["embeddings"], dtype=np.float64)
            with self._store_lock:
                self._shard_gids[handle.idx].extend(shard_gids)
                self._blocks[handle.idx].append(embeddings)
                self._block_cache[handle.idx] = None
        return list(range(gid0, gid0 + len(points)))

    def _await_build(self, handle: _ShardHandle, future: Future) -> dict:
        """Build-path wait: poll the future while the worker stays alive."""
        deadline = time.perf_counter() + self.build_timeout_s
        while True:
            try:
                return future.result(timeout=1.0)
            except FutureTimeoutError:
                if time.perf_counter() > deadline:
                    raise TimeoutError(
                        f"shard {handle.idx} build exceeded {self.build_timeout_s}s"
                    ) from None
                if not handle.process.is_alive():
                    handle.mark_dead("died-during-build")
                    raise ShardDeadError(
                        f"shard {handle.idx} died during add_batch"
                    ) from None

    # ------------------------------------------------------------------
    # The E001 pass statically verifies this annotation: every raise
    # reachable from topk must be caught before it gets back here.
    def topk(self, traj, k: int = 1, deadline_s: Optional[float] = None) -> ServeResult:  # contract: never-raises
        """Scatter-gather top-k over all shards; never raises.

        ``deadline_s`` bounds the encode wait (the gather is always
        bounded by ``shard_deadline_s``); dead, hung or erroring shards
        are covered by the coordinator's exact embedding-space fallback
        scan and flag the result ``degraded=True``.
        """
        start = time.perf_counter()
        try:
            return self._topk_impl(traj, k, deadline_s, start)
        except Exception as exc:
            # Last-resort guard: the serving contract is "no exceptions
            # to the caller"; anything unexpected degrades instead.
            _LOG.error("sharded-topk-unexpected", error=type(exc).__name__, k=k)
            return self._last_resort(traj, k, start, exc)

    def _topk_impl(
        self, traj, k: int, deadline_s: Optional[float], start: float
    ) -> ServeResult:
        """Cache probe -> remote encode -> scatter-gather merge.

        May raise; :meth:`topk` owns the never-raises guard.
        """
        registry = get_registry()
        registry.counter("serve.query.requests").inc()
        with get_tracer().trace("serve.topk", k=k, shards=self.n_shards) as trace:
            if deadline_s is not None:
                trace.set(deadline_s=deadline_s)
            points = self._as_points(traj)
            key = trajectory_key(points)
            with trace.span("cache") as cache_span:
                cached = self.cache.get(key)
                cache_hit = cached is not None
                cache_span.set(result="hit" if cache_hit else "miss")
            trace.set(cache_hit=cache_hit)
            if cache_hit:
                embedding = cached
            else:
                budget = self.shard_deadline_s
                if deadline_s is not None:
                    budget = min(budget, deadline_s - (time.perf_counter() - start))
                if budget <= 0:
                    return self._degraded_scan(
                        points, k, start, cache_hit=False,
                        reason="deadline-before-encode",
                    )
                embedding = self._encode_remote(points, budget, trace)
                if embedding is None:
                    return self._degraded_scan(
                        points, k, start, cache_hit=False, reason="encode-failed"
                    )
                self.cache.put(key, embedding)
            return self._scatter_gather(embedding, k, start, cache_hit, trace)

    def _last_resort(self, traj, k: int, start: float, exc: Exception) -> ServeResult:
        """Absolute fallback behind the never-raises contract.

        Tries the degraded exact path; if even that faults, answers with
        an empty result built from literals only — the one construction
        the exception model proves cannot raise.
        """
        try:
            get_registry().counter("serve.query.unexpected_errors").inc()
            return self._degraded_scan(
                self._as_points(traj), k, start, cache_hit=False,
                reason=f"unexpected:{type(exc).__name__}",
            )
        except Exception as inner:
            _LOG.error("sharded-topk-last-resort", error=type(inner).__name__, k=k)
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=True,
                cache_hit=False,
                source="degraded-exact",
                seconds=time.perf_counter() - start,
                k=k,
            )

    # ------------------------------------------------------------------
    def _encode_remote(
        self, points: np.ndarray, budget: float, trace
    ) -> Optional[np.ndarray]:
        """Query embedding via one worker's MicroBatcher; None on failure.

        The encode is dispatched round-robin to a single live worker (the
        whole pool batches independently); one retry goes to a different
        worker when the first attempt fails or times out with budget to
        spare.  Timeouts double as death probes for the chosen worker.
        """
        registry = get_registry()
        deadline = time.perf_counter() + budget
        for attempt in range(2):
            live = [h for h in self._handles if not h.dead]
            if not live:
                return None
            handle = live[next(self._rr) % len(live)]
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                registry.counter("serve.query.deadline_missed").inc()
                return None
            if attempt:
                registry.counter("serve.shard.encode_retries").inc()
            with trace.span("encode") as enc_span:
                enc_span.set(shard=handle.idx, attempt=attempt)
                ctx = trace.context()
                wire_ctx = ctx.to_wire() if ctx is not None else None
                try:
                    future = handle.send_payload(
                        {"cmd": "encode", "trace_ctx": wire_ctx}, points
                    )
                    resp = future.result(timeout=remaining)
                except FutureTimeoutError:
                    registry.counter("serve.query.deadline_missed").inc()
                    if not handle.process.is_alive():
                        handle.mark_dead("died-before-encode")
                    enc_span.set(result="timeout")
                    continue
                except Exception as exc:
                    _LOG.warning(
                        "shard-encode-error",
                        shard=handle.idx,
                        error=type(exc).__name__,
                    )
                    enc_span.set(result="error", error=type(exc).__name__)
                    continue
                if "error" in resp:
                    enc_span.set(result="error", error=resp["error"])
                    self._graft(trace, enc_span.span_id, resp, ctx, handle.idx)
                    continue
                enc_span.set(result="ok", worker_s=resp.get("worker_s", 0.0))
                self._graft(trace, enc_span.span_id, resp, ctx, handle.idx)
                return np.asarray(resp["embedding"], dtype=np.float64)
        return None

    @staticmethod
    def _graft(trace, span_id, resp: dict, ctx: Optional[TraceContext], shard: int) -> None:
        """Stitch a worker-returned span subtree under one local span."""
        if ctx is not None and "trace" in resp:
            graft_subtree(
                trace, span_id, resp["trace"],
                clock_offset=ctx.clock_offset, shard=shard,
            )

    def _scatter_gather(
        self, embedding: np.ndarray, k: int, start: float, cache_hit: bool, trace
    ) -> ServeResult:
        """Fan out to live shards, gather under deadline, merge exactly."""
        registry = get_registry()
        with self._store_lock:
            n_total = len(self._trajs)
        if n_total == 0:
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=False,
                cache_hit=cache_hit,
                source="sharded",
                seconds=time.perf_counter() - start,
                k=k,
            )
        k_eff = min(k, n_total)
        ctx = trace.context()
        wire_ctx = ctx.to_wire() if ctx is not None else None
        gather_deadline = time.perf_counter() + self.shard_deadline_s
        pending: List[Tuple[_ShardHandle, Future, float]] = []
        fallback: List[Tuple[int, str]] = []
        with trace.span("dispatch") as dispatch_span:
            for handle in self._handles:
                if handle.dead:
                    fallback.append((handle.idx, "dead"))
                    continue
                try:
                    future = handle.send_payload(
                        {"cmd": "search", "k": k_eff, "trace_ctx": wire_ctx},
                        embedding,
                    )
                except Exception as exc:
                    _LOG.warning(
                        "shard-send-failed", shard=handle.idx, error=type(exc).__name__
                    )
                    fallback.append((handle.idx, f"send-failed:{type(exc).__name__}"))
                    continue
                pending.append((handle, future, time.perf_counter()))
            dispatch_span.set(shards=len(pending))
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        # Per-shard coordinator-side wait, for straggler attribution.
        shard_waits: List[Tuple[int, float]] = []
        for handle, future, sent in pending:
            remaining = gather_deadline - time.perf_counter()
            try:
                resp = future.result(timeout=max(remaining, 0.0))
            except FutureTimeoutError:
                now = time.perf_counter()
                shard_waits.append((handle.idx, now - sent))
                if not handle.process.is_alive():
                    handle.mark_dead("died-mid-query")
                    trace.record_span(
                        f"shard-{handle.idx}", sent, now, result="dead", dead=True
                    )
                    fallback.append((handle.idx, "dead"))
                else:
                    registry.counter("serve.shard.deadline_missed").inc()
                    trace.record_span(
                        f"shard-{handle.idx}", sent, now,
                        result="deadline", deadline=True,
                    )
                    fallback.append((handle.idx, "deadline"))
                continue
            except ShardDeadError:
                # The reaper failed the pending future: the worker died
                # with our request in flight.
                now = time.perf_counter()
                shard_waits.append((handle.idx, now - sent))
                trace.record_span(
                    f"shard-{handle.idx}", sent, now, result="dead", dead=True
                )
                fallback.append((handle.idx, "dead"))
                continue
            except Exception as exc:
                _LOG.warning(
                    "shard-gather-error",
                    shard=handle.idx,
                    error=type(exc).__name__,
                )
                now = time.perf_counter()
                shard_waits.append((handle.idx, now - sent))
                trace.record_span(
                    f"shard-{handle.idx}", sent, now,
                    result="error", error=type(exc).__name__,
                )
                fallback.append((handle.idx, type(exc).__name__))
                continue
            now = time.perf_counter()
            shard_waits.append((handle.idx, now - sent))
            if "error" in resp:
                span_id = trace.record_span(
                    f"shard-{handle.idx}", sent, now,
                    result="error", error=resp["error"],
                )
                self._graft(trace, span_id, resp, ctx, handle.idx)
                fallback.append((handle.idx, "worker-error"))
                continue
            # Cross-process stitch: the shard span covers dispatch to
            # gather on the coordinator clock; the worker's subtree
            # (ipc-wait / slab-read / search) is grafted beneath it.
            span_id = trace.record_span(
                f"shard-{handle.idx}", sent, now,
                result="ok", n=resp.get("n", 0),
                search_s=resp.get("search_s", 0.0),
                wait_s=resp.get("wait_s", 0.0),
            )
            self._graft(trace, span_id, resp, ctx, handle.idx)
            parts.append((resp["dists"], resp["gids"]))
        if shard_waits:
            waits = np.asarray([w for _, w in shard_waits], dtype=float)
            trace.set(
                straggler_gap_s=float(waits.max() - np.median(waits)),
                slowest_shard=int(shard_waits[int(np.argmax(waits))][0]),
            )
        for shard_idx, reason in fallback:
            with trace.span(f"fallback-{shard_idx}") as fb_span:
                fb_span.set(reason=reason)
                parts.append(self._fallback_shard_topk(shard_idx, embedding, k_eff))
            registry.counter("serve.shard.fallback_scans").inc()
        with trace.span("merge") as merge_span:
            sq, gids = merge_topk(parts, k_eff)
            # Squared L2 values are nonnegative by construction.
            dists = np.sqrt(sq)  # lint: allow(N002)
            merge_span.set(parts=len(parts))
        degraded = bool(fallback)
        if degraded:
            registry.counter("serve.query.degraded").inc()
            get_tracer().annotate(
                degraded=True, source="sharded-fallback",
                fallback_shards=len(fallback),
            )
        else:
            registry.counter("serve.query.answered").inc()
            get_tracer().annotate(degraded=False, source="sharded")
        registry.histogram("serve.query.seconds").observe(time.perf_counter() - start)
        return ServeResult(
            ids=np.asarray(gids, dtype=int),
            distances=np.asarray(dists, dtype=float),
            degraded=degraded,
            cache_hit=cache_hit,
            source="sharded-fallback" if degraded else "sharded",
            seconds=time.perf_counter() - start,
            k=k,
        )

    def _shard_block(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """This shard's retained ``(embeddings, gids)``, stacked and cached."""
        with self._store_lock:
            cached = self._block_cache[shard]
            blocks = list(self._blocks[shard])
            gids = np.asarray(self._shard_gids[shard], dtype=int)
        if cached is not None and len(cached) == len(gids):
            return cached, gids
        stacked = (
            np.concatenate(blocks, axis=0) if blocks else np.zeros((0, self.dim))
        )
        with self._store_lock:
            self._block_cache[shard] = stacked
        return stacked, gids

    def _fallback_shard_topk(
        self, shard: int, embedding: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact brute scan of one shard's retained embedding block.

        Identical arithmetic to the worker's brute path (same rows, same
        stable tie order), so a degraded merge stays *exact* in embedding
        space — a dead shard costs latency, not correctness.
        """
        block, gids = self._shard_block(shard)
        if len(gids) == 0:
            return np.zeros(0), np.zeros(0, dtype=int)
        diffs = block - embedding[None, :]
        sq = (diffs**2).sum(axis=1)
        order = np.argsort(sq, kind="stable")[: min(k, len(gids))]
        return sq[order], gids[order]

    def _degraded_scan(
        self,
        points: np.ndarray,
        k: int,
        start: float,
        cache_hit: bool,
        reason: str = "unknown",
    ) -> ServeResult:
        """True-metric fallback over the coordinator's retained store.

        The tier below the embedding-space fallback: when no embedding
        could be obtained at all, the exact trajectory metric is
        evaluated against a bounded subset — same semantics and bound as
        the single-process engine's degraded path.
        """
        registry = get_registry()
        registry.counter("serve.query.degraded").inc()
        get_tracer().annotate(
            degraded=True, degraded_reason=reason, source="degraded-exact"
        )
        with self._store_lock:
            subset = list(self._trajs[: self.degraded_scan_limit])
        if not subset:
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=True,
                cache_hit=cache_hit,
                source="degraded-exact",
                seconds=time.perf_counter() - start,
                k=k,
            )
        order, dists = exact_metric_topk(points, subset, self.fallback_metric, k)
        return ServeResult(
            ids=np.asarray(order, dtype=int),
            distances=dists,
            degraded=True,
            cache_hit=cache_hit,
            source="degraded-exact",
            seconds=time.perf_counter() - start,
            k=k,
        )

    # ------------------------------------------------------------------
    def shard_stats(self, timeout_s: float = 2.0) -> Dict[int, dict]:
        """Per-shard worker stats (pid, size, index bytes, registry mirror).

        Sends a ``stats`` probe to every live worker and mirrors each
        returned registry snapshot into this process's registry under
        ``serve.shard.<i>.*`` gauges — the cross-process metrics handoff
        ``repro-tmn report`` and the bench read.
        """
        out: Dict[int, dict] = {}
        probes = []
        for handle in self._handles:
            if handle.dead:
                out[handle.idx] = {"dead": True}
                continue
            try:
                probes.append((handle, handle.request({"cmd": "stats"})))
            except Exception as exc:
                _LOG.debug(
                    "shard-stats-probe-failed",
                    shard=handle.idx,
                    error=type(exc).__name__,
                )
                out[handle.idx] = {"dead": True, "error": type(exc).__name__}
        registry = get_registry()
        for handle, future in probes:
            try:
                resp = future.result(timeout=timeout_s)
            except Exception as exc:
                _LOG.debug(
                    "shard-stats-timeout",
                    shard=handle.idx,
                    error=type(exc).__name__,
                )
                out[handle.idx] = {"dead": handle.dead, "error": type(exc).__name__}
                continue
            snapshot = resp.get("snapshot", {})
            mirror_snapshot(snapshot, f"serve.shard.{handle.idx}.", registry)
            out[handle.idx] = {
                "dead": False,
                "pid": resp.get("pid"),
                "size": resp.get("size", 0),
                "index_bytes": resp.get("index_bytes", 0),
            }
        with self._stats_lock:
            self._stats_refreshed_at = time.perf_counter()
        return out

    def _refresh_on_scrape(self) -> None:
        """Exposition scrape hook: keep ``serve.shard.N.*`` mirrors fresh."""
        self.refresh_shard_telemetry()

    def refresh_shard_telemetry(
        self, ttl_s: Optional[float] = None, timeout_s: float = 0.5
    ) -> bool:
        """Re-pull worker registry snapshots when the mirror has gone stale.

        Registered as a Prometheus scrape hook at construction, so the
        ``serve.shard.N.*`` gauges track live workers on every scrape
        instead of only moving when someone calls :meth:`shard_stats`.
        The TTL (``stats_ttl_s`` unless overridden) bounds scrape cost
        to at most one cheap per-worker probe per TTL window.  Returns
        True when a refresh actually ran.
        """
        with self._close_lock:
            if self._closed:
                return False
        ttl = self.stats_ttl_s if ttl_s is None else ttl_s
        now = time.perf_counter()
        with self._stats_lock:
            last = self._stats_refreshed_at
            if last is not None and now - last < ttl:
                return False
            # Claim the window before probing so concurrent scrapes
            # cannot stampede the workers with duplicate stats probes.
            self._stats_refreshed_at = now
        self.shard_stats(timeout_s=timeout_s)
        return True

    def dump_shard(self, shard: int, timeout_s: float = 60.0) -> dict:
        """One shard's index state and gid map (for in-process rebuilds)."""
        handle = self._handles[shard]
        resp = handle.request({"cmd": "dump"}).result(timeout=timeout_s)
        if "error" in resp:
            raise RuntimeError(f"shard {shard} dump failed: {resp['error']}")
        return {"state": resp["state"], "gids": resp["gids"]}

    def debug_shard(self, shard: int, timeout_s: float = 5.0, **hooks) -> dict:
        """Install fault-injection hooks (e.g. ``search_delay_s``) in a worker."""
        handle = self._handles[shard]
        resp = handle.request({"cmd": "debug", "hooks": hooks}).result(
            timeout=timeout_s
        )
        return resp.get("hooks", {})

    def echo_shard(self, shard: int, array: np.ndarray, timeout_s: float = 5.0) -> dict:
        """Round-trip an array through a worker's slab (lifecycle tests)."""
        handle = self._handles[shard]
        return handle.send_payload({"cmd": "echo"}, array).result(timeout=timeout_s)

    def stats(self) -> dict:
        """Coordinator-level serving counters snapshot."""
        with self._store_lock:
            n_trajs = len(self._trajs)
        return {
            "db_size": n_trajs,
            "n_shards": self.n_shards,
            "live_shards": len(self.live_shards),
            "cache_size": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
        }

    def memory_stats(self, registry=None) -> dict:
        """Byte audit across the process pool, mirrored into gauges.

        Accounts the coordinator's retained store (trajectories +
        fallback embedding blocks + cache) plus each live worker's index
        payload bytes and resident set (read from ``/proc/<pid>``), and
        derives ``bytes_per_trajectory`` over the accounted structures —
        the same gauges the memory SLOs and the bench gate read.
        """
        from ..obs.memory import rss_bytes, update_memory_gauges

        with self._store_lock:
            n_trajs = len(self._trajs)
            store_bytes = sum(t.nbytes for t in self._trajs)
            block_bytes = sum(b.nbytes for blocks in self._blocks for b in blocks)
        cache_bytes = self.cache.nbytes
        reg = registry if registry is not None else get_registry()
        shard_info = self.shard_stats()
        index_bytes = 0
        worker_rss = 0
        for idx, info in shard_info.items():
            if info.get("dead"):
                continue
            index_bytes += int(info.get("index_bytes", 0))
            pid = info.get("pid")
            if pid:
                rss = rss_bytes(pid=pid)
                worker_rss += rss
                reg.gauge(f"serve.shard.{idx}.rss_bytes").set(rss)
        total = store_bytes + block_bytes + cache_bytes + index_bytes
        per_traj = total / n_trajs if n_trajs else 0.0
        reg.gauge("serve.store.bytes").set(store_bytes + block_bytes)
        reg.gauge("serve.cache.bytes").set(cache_bytes)
        reg.gauge("serve.index.bytes").set(index_bytes)
        reg.gauge("serve.store.bytes_per_trajectory").set(per_traj)
        reg.gauge("serve.shard.worker_rss_bytes").set(worker_rss)
        process = update_memory_gauges(reg)
        return {
            "n_trajectories": n_trajs,
            "store_bytes": store_bytes,
            "block_bytes": block_bytes,
            "cache_bytes": cache_bytes,
            "index_bytes": index_bytes,
            "total_bytes": total,
            "bytes_per_trajectory": per_traj,
            "worker_rss_bytes": worker_rss,
            "rss_bytes": process["rss_bytes"],
            "peak_rss_bytes": process["peak_rss_bytes"],
        }

    def close(self) -> None:
        """Stop every worker, release every segment; idempotent, no raise."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        unregister_scrape_hook(self._refresh_on_scrape)
        for handle in self._handles:
            try:
                handle.stop()
            except Exception as exc:  # close must always complete
                _LOG.warning(
                    "shard-close-failed", shard=handle.idx, error=type(exc).__name__
                )
