"""Serving throughput/latency benchmark harness (``repro-tmn serve-bench``).

Measures the deployment workload the related work frames as the point of
trajectory embedding (top-k retrieval over a vector index): ``workers``
threads issue cache-miss ``topk`` queries against a
:class:`~repro.serve.engine.SimilarityServer`, and the same query set is
replayed through naive one-request-one-forward encoding as the baseline.
The headline number is the throughput ratio — how much the micro-batching
queue buys over per-request forwards — plus latency percentiles, cache
and degradation counters, and a zero-drop check.

The harness is deterministic given ``seed`` (corpus, query order and
model init all derive from it); wall-clock numbers of course vary by
machine.  Results serialise to a plain dict so the benchmark suite can
feed them into ``BENCH_serve.json`` via ``bench_record``.
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import TMN, TMNConfig
from ..data import make_dataset, prepare
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.sampler import StackSampler
from ..obs.slo import (
    DEADLINE_SERVE_SLOS,
    DEFAULT_MEMORY_SLOS,
    DEFAULT_SERVE_SLOS,
    DEFAULT_SHARD_SLOS,
    SLO,
    SLOStatus,
    assert_slos,
    check_slos,
    format_slos,
)
from ..obs.trace import get_tracer
from .cache import trajectory_key
from .engine import ServeResult, SimilarityServer

__all__ = [
    "ServeBenchResult",
    "ShardBenchResult",
    "format_serve_bench",
    "format_shard_bench",
    "run_serve_bench",
    "run_shard_bench",
]

_BENCH_LOG = get_logger("repro.serve.bench")

#: Env var naming a fallback metrics-snapshot path for every bench run;
#: the ``metrics_out`` parameter takes precedence.
METRICS_ENV = "REPRO_SERVE_METRICS"


@dataclass
class ServeBenchResult:
    """Outcome of one serve-bench run (all times in seconds)."""

    n_db: int
    n_queries: int
    workers: int
    batch_size: int
    served_seconds: float
    naive_seconds: float
    naive_queries: int
    completed: int
    dropped: int
    degraded: int
    cache_hits: int
    latency_p50: float
    latency_p99: float
    batch_size_mean: float
    #: One status per evaluated SLO (latency / degraded-rate / drop-rate
    #: / memory gauge ceilings).
    slo_statuses: List[SLOStatus] = field(default_factory=list)
    #: Exact accounted payload bytes per stored trajectory (store +
    #: cache + index), from ``SimilarityServer.memory_stats``.
    bytes_per_trajectory: float = 0.0
    #: Process high-water RSS at the end of the served phase.
    peak_rss_bytes: float = 0.0

    @property
    def slo_ok(self) -> bool:
        """Whether every evaluated SLO held over this run's traces."""
        return all(s.ok for s in self.slo_statuses)

    @property
    def served_qps(self) -> float:
        """Queries per second through the serving layer."""
        return self.n_queries / max(self.served_seconds, 1e-12)

    @property
    def naive_qps(self) -> float:
        """Queries per second for one-request-one-forward encoding."""
        return self.naive_queries / max(self.naive_seconds, 1e-12)

    @property
    def speedup(self) -> float:
        """Serving throughput over the naive baseline."""
        return self.served_qps / max(self.naive_qps, 1e-12)

    def to_dict(self) -> Dict[str, float]:
        """Flat JSON-ready summary (what the bench JSON records)."""
        return {
            "n_db": float(self.n_db),
            "n_queries": float(self.n_queries),
            "workers": float(self.workers),
            "batch_size": float(self.batch_size),
            "served_qps": self.served_qps,
            "naive_qps": self.naive_qps,
            "speedup": self.speedup,
            "completed": float(self.completed),
            "dropped": float(self.dropped),
            "degraded": float(self.degraded),
            "cache_hits": float(self.cache_hits),
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "batch_size_mean": self.batch_size_mean,
            "slo_failures": float(sum(1 for s in self.slo_statuses if not s.ok)),
            "bytes_per_trajectory": self.bytes_per_trajectory,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def _build_encoder(hidden_dim: int, seed: int) -> TMN:
    """A siamese (non-matching) TMN encoder for the serving benchmark.

    The bench measures the serving machinery, not model quality, so an
    untrained-but-deterministic encoder is the right substrate: encode
    cost is identical to a trained model's.
    """
    config = TMNConfig(hidden_dim=hidden_dim, matching=False, seed=seed)
    model = TMN(config)
    model.eval()
    return model


def run_serve_bench(
    n_db: int = 60,
    n_queries: int = 500,
    workers: int = 4,
    batch_size: int = 32,
    max_wait_ms: float = 4.0,
    hidden_dim: int = 32,
    kind: str = "porto",
    k: int = 5,
    seed: int = 0,
    naive_queries: Optional[int] = None,
    deadline_s: Optional[float] = None,
    traj_len: Optional[int] = None,
    slos: Optional[Sequence[SLO]] = None,
    enforce_slos: bool = True,
    trace_log: Optional[str] = None,
    sampler: Optional[StackSampler] = None,
    metrics_out: Optional[str] = None,
) -> ServeBenchResult:
    """Run the serving benchmark and return its measurements.

    ``n_db`` trajectories are indexed; ``n_queries`` *distinct* (cache
    miss) queries are then issued from ``workers`` threads.  The naive
    baseline replays ``naive_queries`` of them (default: min(100,
    n_queries), extrapolated) one forward at a time on one thread.

    ``traj_len`` overrides the corpus trajectory length (points per
    trajectory, ±20%).  Longer trajectories make each forward heavier,
    which isolates the batching effect from fixed per-request overhead —
    the regime the paper's Table III workload lives in.

    After the served phase the run's SLOs are evaluated over the request
    traces via :func:`repro.obs.slo.check_slos` (``slos`` defaults to
    :data:`DEFAULT_SERVE_SLOS`, or :data:`DEADLINE_SERVE_SLOS` when a
    per-request deadline makes degradation the designed behaviour); with
    ``enforce_slos`` a breach raises
    :class:`~repro.obs.slo.SLOViolation` — the bench *asserts* the
    serving promises, it does not merely report them.  ``trace_log``
    mirrors every request trace to a JSONL file for ``repro-tmn trace``.

    ``sampler`` (a :class:`~repro.obs.sampler.StackSampler`) is run over
    the measured phases when given — ``repro-tmn profile-serve`` passes
    one; a sampler already running stays caller-managed.  ``metrics_out``
    (or the ``REPRO_SERVE_METRICS`` env var) names a JSON file receiving
    the registry snapshot; it is written *before* any strict-SLO raise,
    so a failing run still leaves its evidence on disk.
    """
    rng = np.random.default_rng(seed)
    length_kwargs = {}
    if traj_len is not None:
        length_kwargs = {
            "min_len": max(traj_len - traj_len // 5, 2),
            "max_len": traj_len + traj_len // 5,
        }
    dataset = make_dataset(kind, n_db + n_queries + 40, seed=seed, **length_kwargs)
    dataset, _ = prepare(dataset)
    points = [t.points for t in dataset]
    if len(points) < n_db + n_queries:
        # Preprocessing drops some trajectories; synthesise the shortfall
        # by jittering existing ones (still distinct content hashes).
        while len(points) < n_db + n_queries:
            base = points[int(rng.integers(len(points)))]
            points.append(base + rng.normal(scale=1e-4, size=base.shape))
    db = points[:n_db]
    queries = points[n_db : n_db + n_queries]

    model = _build_encoder(hidden_dim, seed)
    server = SimilarityServer(
        model,
        dim=model.output_dim,
        max_batch_size=batch_size,
        max_wait_ms=max_wait_ms,
        cache_capacity=max(4 * n_db, 256),
        seed=seed,
    )
    registry = get_registry()
    batch_hist = registry.histogram("serve.batch.size")
    batches_before = batch_hist.count
    batch_total_before = batch_hist.total
    tracer = get_tracer()
    if trace_log is not None:
        tracer.configure(log_path=trace_log)

    # Server tuning, applied to BOTH phases for fairness: a longer GIL
    # switch interval stops worker wake-ups from preempting the encoder
    # mid-forward (numpy releases the GIL only around large ops).
    switch_before = sys.getswitchinterval()
    sys.setswitchinterval(0.02)
    # Run the caller's sampler over the measured phases (unless it is
    # already running, in which case its lifecycle stays with the caller).
    owns_sampler = sampler is not None and not sampler.running
    try:
        if owns_sampler:
            sampler.start()
        server.add_batch(db)

        results: List[Optional[ServeResult]] = [None] * n_queries
        next_query = {"i": 0}
        hand_out = threading.Lock()

        def worker() -> None:  # contract: never-raises
            """Pull query indices and serve them until the pool is drained.

            A raise escaping this loop would kill the worker thread and
            silently drop every query it still owned; E001 verifies none
            can.
            """
            i = -1
            while True:
                try:
                    with hand_out:
                        i = next_query["i"]
                        if i >= n_queries:
                            return
                        next_query["i"] = i + 1
                    # Slot i is handed to exactly one worker by the hand_out
                    # block above, so this write is index-partitioned — no
                    # two threads ever share a slot.
                    results[i] = server.topk(queries[i], k=k, deadline_s=deadline_s)  # lint: allow(C001)
                except Exception as exc:
                    # The slot stays None (counted as dropped); the worker
                    # lives on to serve the rest of the pool.
                    _BENCH_LOG.warning(
                        "serve-query-failed", error=type(exc).__name__, query=i
                    )

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        served_seconds = time.perf_counter() - start

        completed = sum(1 for r in results if r is not None)
        dropped = n_queries - completed
        degraded = sum(1 for r in results if r is not None and r.degraded)
        cache_hits = sum(1 for r in results if r is not None and r.cache_hit)
        latencies = sorted(r.seconds for r in results if r is not None)

        # Naive baseline: the same encoder, one forward per request.
        n_naive = naive_queries if naive_queries is not None else min(100, n_queries)
        start = time.perf_counter()
        for q in queries[:n_naive]:
            model.encode([q])
        naive_seconds = time.perf_counter() - start

        batch_count = batch_hist.count - batches_before
        batch_requests = batch_hist.total - batch_total_before
        batch_mean = batch_requests / batch_count if batch_count else 0.0
        # Memory audit after the served phase: sets the serve.*.bytes /
        # mem.* gauges the gauge_max SLOs below read.
        memory = server.memory_stats(registry=registry)
        # Evaluate the serving promises over this run's request traces
        # (the last n_queries serve.topk traces in the ring are ours),
        # plus the memory-budget gauges.  Evaluation is non-strict here:
        # the metrics snapshot must land on disk before any raise, so a
        # failing run still leaves its evidence behind (assert_slos at
        # the end turns breaches into the SLOViolation callers expect).
        if slos is None:
            slos = DEADLINE_SERVE_SLOS if deadline_s is not None else DEFAULT_SERVE_SLOS
            slos = tuple(slos) + tuple(DEFAULT_MEMORY_SLOS)
        slo_statuses = check_slos(
            slos,
            tracer=tracer,
            window=n_queries,
            totals={"requests": float(n_queries), "dropped": float(dropped)},
            strict=False,
            registry=registry,
        )
        result = ServeBenchResult(
            n_db=n_db,
            n_queries=n_queries,
            workers=workers,
            batch_size=batch_size,
            served_seconds=served_seconds,
            naive_seconds=naive_seconds,
            naive_queries=n_naive,
            completed=completed,
            dropped=dropped,
            degraded=degraded,
            cache_hits=cache_hits,
            latency_p50=latencies[len(latencies) // 2] if latencies else 0.0,
            latency_p99=latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
            if latencies
            else 0.0,
            batch_size_mean=batch_mean,
            slo_statuses=list(slo_statuses),
            bytes_per_trajectory=float(memory["bytes_per_trajectory"]),
            peak_rss_bytes=float(memory["peak_rss_bytes"]),
        )
        # Persist the registry snapshot BEFORE enforcing SLOs: a breach
        # must not cost us the measurements that explain it.
        _export_metrics(metrics_out, registry)
        if enforce_slos:
            assert_slos(slo_statuses)
        return result
    finally:
        if owns_sampler:
            sampler.stop()
        sys.setswitchinterval(switch_before)
        server.close()
        if trace_log is not None:
            tracer.configure(log_path=None)  # flush + close the JSONL log


def _export_metrics(metrics_out: Optional[str], registry) -> None:
    """Write the registry snapshot to ``metrics_out`` or ``$REPRO_SERVE_METRICS``.

    No-op when neither names a path.  Runs on the SLO-violation exit
    path too, so it must not assume a healthy run.
    """
    path = metrics_out if metrics_out is not None else os.environ.get(METRICS_ENV)
    if not path:
        return
    with open(path, "w") as fh:
        json.dump({"metrics": registry.snapshot()}, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_serve_bench(result: ServeBenchResult) -> str:
    """Human-readable serve-bench report (what the CLI prints)."""
    lines = [
        f"serve-bench: {result.n_queries} queries x {result.workers} workers "
        f"over {result.n_db} indexed trajectories",
        f"  served    {result.served_qps:10.1f} qps "
        f"({result.served_seconds:.3f}s total)",
        f"  naive     {result.naive_qps:10.1f} qps "
        f"({result.naive_queries} one-forward encodes)",
        f"  speedup   {result.speedup:10.2f}x",
        f"  latency   p50 {result.latency_p50 * 1e3:8.2f} ms   "
        f"p99 {result.latency_p99 * 1e3:8.2f} ms",
        f"  batching  mean batch {result.batch_size_mean:.1f} "
        f"(max {result.batch_size})",
        f"  health    completed {result.completed}/{result.n_queries}, "
        f"dropped {result.dropped}, degraded {result.degraded}, "
        f"cache hits {result.cache_hits}",
        f"  memory    {result.bytes_per_trajectory:,.0f} B/trajectory accounted, "
        f"peak rss {result.peak_rss_bytes / (1024 * 1024):,.1f} MiB",
    ]
    if result.slo_statuses:
        lines.append(format_slos(result.slo_statuses))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sharded closed-loop bench (``repro-tmn serve-bench --shards N``).
# ----------------------------------------------------------------------
@dataclass
class ShardBenchResult:
    """Outcome of one sharded serve-bench run (all times in seconds).

    ``single_seconds`` is the control arm: the *same* shard graphs and
    the same scatter-gather merge driven by ``workers`` threads inside
    one interpreter — so the sharded/single ratio isolates exactly what
    the process pool changes (GIL vs IPC), with total search work held
    equal.  ``agreement`` is the fraction of sampled queries whose
    process-pool answer is identical to the in-process answer;
    ``recall_at_k`` scores the merged answers against an exact brute
    force over the coordinator's retained embedding blocks.
    """

    n_db: int
    n_queries: int
    shards: int
    workers: int
    k: int
    build_seconds: float
    sharded_seconds: float
    single_seconds: float
    completed: int
    dropped: int
    degraded: int
    latency_p50: float
    latency_p99: float
    recall_at_k: float
    agreement: float
    checked: int
    cpu_count: int
    slo_statuses: List[SLOStatus] = field(default_factory=list)
    bytes_per_trajectory: float = 0.0
    peak_rss_bytes: float = 0.0
    #: Per-shard time attribution aggregated over the run's stitched
    #: traces: mean coordinator wait vs worker-side ipc/search time plus
    #: dead/deadline counts, keyed by shard id (empty with tracing off).
    shard_attribution: Dict[int, Dict[str, float]] = field(default_factory=dict)

    @property
    def slo_ok(self) -> bool:
        """Whether every evaluated SLO held over this run's traces."""
        return all(s.ok for s in self.slo_statuses)

    @property
    def sharded_qps(self) -> float:
        """Queries per second through the process-pool tier."""
        return self.n_queries / max(self.sharded_seconds, 1e-12)

    @property
    def single_qps(self) -> float:
        """Queries per second through the single-interpreter control arm."""
        return self.n_queries / max(self.single_seconds, 1e-12)

    @property
    def speedup(self) -> float:
        """Process-pool throughput over the single-process thread pool."""
        return self.sharded_qps / max(self.single_qps, 1e-12)

    def to_dict(self) -> Dict[str, float]:
        """Flat JSON-ready summary (what the bench JSON records)."""
        return {
            "n_db": float(self.n_db),
            "n_queries": float(self.n_queries),
            "workers": float(self.workers),
            "shards": float(self.shards),
            "k": float(self.k),
            "sharded_qps": self.sharded_qps,
            "single_qps": self.single_qps,
            "speedup": self.speedup,
            "build_seconds": self.build_seconds,
            "completed": float(self.completed),
            "dropped": float(self.dropped),
            "degraded": float(self.degraded),
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "recall_at_k": self.recall_at_k,
            "agreement": self.agreement,
            "checked": float(self.checked),
            "cpu_count": float(self.cpu_count),
            "slo_failures": float(sum(1 for s in self.slo_statuses if not s.ok)),
            "bytes_per_trajectory": self.bytes_per_trajectory,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def _make_walks(
    n: int, rng: np.random.Generator, min_len: int = 16, max_len: int = 32
) -> List[np.ndarray]:
    """``n`` random-walk trajectories with one bulk normal draw.

    Cheap enough to generate a 100k-trajectory corpus in seconds — the
    sharded bench needs store scale without paying dataset-pipeline cost.
    """
    lengths = rng.integers(min_len, max_len + 1, size=n)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    steps = rng.normal(scale=0.05, size=(int(offsets[-1]), 2))
    starts = rng.uniform(-1.0, 1.0, size=(n, 2))
    return [
        starts[i] + np.cumsum(steps[offsets[i] : offsets[i + 1]], axis=0)
        for i in range(n)
    ]


_SHARD_SPAN_NAME = re.compile(r"^shard-(\d+)$")


def _shard_attribution(traces) -> Dict[int, Dict[str, float]]:
    """Aggregate per-shard time attribution over stitched serve traces.

    For every shard: how long the coordinator waited on it (``shard-N``
    span, coordinator clock), where that time went on the worker side
    (grafted ``ipc-wait`` and ``search`` spans), and how often it was
    declared dead or blew the gather deadline.  Means are reported so
    shards with different gather counts stay comparable.
    """
    acc: Dict[int, Dict[str, float]] = {}

    def row(shard: int) -> Dict[str, float]:
        return acc.setdefault(
            int(shard),
            {
                "gathers": 0.0,
                "wait_s": 0.0,
                "ipc_s": 0.0,
                "search_s": 0.0,
                "dead": 0.0,
                "deadline": 0.0,
            },
        )

    for trace in traces:
        for event in trace.events:
            end = event.get("end")
            if end is None:
                continue
            duration = float(end) - float(event["start"])
            name = str(event.get("name", ""))
            shard = event.get("shard")
            if shard is not None:
                if name == "ipc-wait":
                    row(shard)["ipc_s"] += duration
                elif name == "search":
                    row(shard)["search_s"] += duration
                continue
            match = _SHARD_SPAN_NAME.match(name)
            if match is None:
                continue
            entry = row(match.group(1))
            entry["gathers"] += 1.0
            entry["wait_s"] += duration
            result = event.get("attrs", {}).get("result")
            if result in ("dead", "deadline"):
                entry[result] += 1.0
    for entry in acc.values():
        gathers = max(entry["gathers"], 1.0)
        entry["mean_wait_s"] = entry["wait_s"] / gathers
        entry["mean_ipc_s"] = entry["ipc_s"] / gathers
        entry["mean_search_s"] = entry["search_s"] / gathers
    return acc


def _drive_closed_loop(
    serve_fn, n_queries: int, workers: int
) -> "tuple[float, list]":
    """Closed-loop thread pool: ``workers`` threads drain a query pool.

    ``serve_fn(i)`` answers query ``i``; returns (wall seconds, results
    list with None for queries whose slot errored).
    """
    results: List[Optional[object]] = [None] * n_queries
    next_query = {"i": 0}
    hand_out = threading.Lock()

    def worker() -> None:  # contract: never-raises
        """Pull query indices and serve them until the pool is drained.

        A raise escaping this loop would kill the worker thread and
        silently drop every query it still owned; E001 verifies none can.
        """
        i = -1
        while True:
            try:
                with hand_out:
                    i = next_query["i"]
                    if i >= n_queries:
                        return
                    next_query["i"] = i + 1
                # Slot i is handed to exactly one worker by the hand_out
                # block above, so this write is index-partitioned — no
                # two threads ever share a slot.
                results[i] = serve_fn(i)  # lint: allow(C001)
            except Exception as exc:
                # The slot stays None (counted as dropped); the worker
                # lives on to serve the rest of the pool.
                _BENCH_LOG.warning(
                    "serve-query-failed", error=type(exc).__name__, query=i
                )

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, results


def run_shard_bench(
    n_db: int = 2000,
    n_queries: int = 400,
    shards: int = 4,
    workers: int = 4,
    dim: int = 16,
    k: int = 10,
    m: int = 4,
    ef_construction: int = 16,
    ef_search: Optional[int] = None,
    batch_size: int = 32,
    max_wait_ms: float = 2.0,
    brute_threshold: int = 64,
    shard_deadline_s: float = 5.0,
    strategy: str = "round-robin",
    check_sample: int = 64,
    seed: int = 0,
    slos: Optional[Sequence[SLO]] = None,
    enforce_slos: bool = True,
    metrics_out: Optional[str] = None,
    trace_log: Optional[str] = None,
    tracing: bool = True,
) -> ShardBenchResult:
    """Run the sharded serving benchmark and return its measurements.

    Phases: (1) build a ``shards``-worker
    :class:`~repro.serve.shard.ShardedSimilarityServer` over ``n_db``
    random-walk trajectories (workers insert their shards in parallel);
    (2) drive ``n_queries`` distinct queries from ``workers`` threads
    through the process pool; (3) dump every shard's graph, rebuild it
    in-process and drive the *same* queries through the same
    scatter-gather merge on ``workers`` threads inside this interpreter —
    the single-process control arm, identical data structures and total
    search work, zero IPC.

    Correctness riders on every run: for ``check_sample`` queries the
    process-pool answer must agree with the in-process answer (same
    graphs, same cached embedding ⇒ identical traversal), and merged
    answers are scored for recall against an exact brute force over the
    coordinator's retained embedding blocks.

    The encode substrate is the cheap deterministic
    :class:`~repro.serve.shard.FeatureEncoder` — the bench measures
    index/IPC/GIL behaviour, so encode cost must not dominate either arm.

    ``trace_log`` persists every stitched ``serve.topk`` trace to JSONL
    (same contract as :func:`run_serve_bench`); ``tracing=False`` runs
    the sharded phase with the tracer disabled — the arm the
    trace-collection overhead number in ``BENCH_serve.json`` compares
    against.  With tracing on, the result carries a per-shard
    time-attribution table aggregated from the stitched traces.
    """
    from ..index.hnsw import HNSWIndex
    from .shard import FeatureEncoder, ShardedSimilarityServer, _shard_search, merge_topk

    rng = np.random.default_rng(seed)
    corpus = _make_walks(n_db + n_queries, rng)
    db, queries = corpus[:n_db], corpus[n_db:]
    encoder = FeatureEncoder(dim=dim, seed=seed)
    registry = get_registry()
    tracer = get_tracer()
    tracing_before = tracer.set_enabled(tracing)
    if trace_log is not None:
        tracer.configure(log_path=trace_log)
    cpu_count = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    server = ShardedSimilarityServer(
        encoder,
        dim=dim,
        n_shards=shards,
        strategy=strategy,
        shard_deadline_s=shard_deadline_s,
        cache_capacity=max(4 * n_queries, 1024),
        max_batch_size=batch_size,
        max_wait_ms=max_wait_ms,
        m=m,
        ef_construction=ef_construction,
        ef_search=ef_search,
        brute_threshold=brute_threshold,
        seed=seed,
    )
    switch_before = sys.getswitchinterval()
    sys.setswitchinterval(0.02)
    try:
        build_start = time.perf_counter()
        chunk = 5000
        for lo in range(0, n_db, chunk):
            server.add_batch(db[lo : lo + chunk])
            _BENCH_LOG.info("shard-bench-build", inserted=min(lo + chunk, n_db), total=n_db)
        build_seconds = time.perf_counter() - build_start

        sharded_seconds, results = _drive_closed_loop(
            lambda i: server.topk(queries[i], k=k), n_queries, workers
        )
        completed = sum(1 for r in results if r is not None)
        dropped = n_queries - completed
        degraded = sum(1 for r in results if r is not None and r.degraded)
        latencies = sorted(r.seconds for r in results if r is not None)
        # Per-shard time attribution from the stitched traces, while the
        # sharded phase's traces are still the newest in the ring.
        shard_attribution = _shard_attribution(
            tracer.recent(n=n_queries, name="serve.topk") if tracing else ()
        )
        if trace_log is not None:
            tracer.configure(log_path=None)  # flush + close the JSONL log

        # --- correctness riders (non-timed) --------------------------------
        # Exact reference: the coordinator's retained embedding blocks,
        # reassembled into gid order — brute force over them is the ground
        # truth the merged answers are scored against.
        emb_by_gid = np.zeros((n_db, dim))
        for shard in range(shards):
            block, gids = server._shard_block(shard)
            if len(gids):
                emb_by_gid[gids] = block
        # In-process replicas of every shard graph (also the control arm).
        dumps = [server.dump_shard(i) for i in range(shards)]
        inline = [
            (HNSWIndex.from_state(d["state"]), np.asarray(d["gids"], dtype=int))
            for d in dumps
        ]
        spec = server._spec

        def inline_topk(embedding: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
            """The coordinator merge over in-process shard replicas."""
            parts = [
                _shard_search(index, gids, embedding, k, spec)
                for index, gids in inline
            ]
            sq, gid = merge_topk(parts, min(k, n_db))
            # Squared L2 values are nonnegative by construction.
            return np.sqrt(sq), gid  # lint: allow(N002)

        checked = agree = 0
        recall_total = 0.0
        step = max(len(queries) // max(check_sample, 1), 1)
        for i in range(0, len(queries), step):
            result = results[i]
            if result is None or result.degraded:
                continue
            cached = server.cache.get(trajectory_key(queries[i]))
            if cached is None:
                continue
            checked += 1
            in_dists, in_gids = inline_topk(cached)
            if np.array_equal(result.ids, in_gids) and np.array_equal(
                result.distances, in_dists
            ):
                agree += 1
            sq = ((emb_by_gid - cached[None, :]) ** 2).sum(axis=1)
            exact = np.argsort(sq, kind="stable")[: min(k, n_db)]
            recall_total += len(set(result.ids) & set(exact)) / max(len(exact), 1)
        agreement = agree / checked if checked else 0.0
        recall_at_k = recall_total / checked if checked else 0.0

        # --- memory + SLOs over the sharded phase --------------------------
        memory = server.memory_stats(registry=registry)
        if slos is None:
            slos = (
                tuple(DEFAULT_SERVE_SLOS)
                + tuple(DEFAULT_SHARD_SLOS)
                + tuple(DEFAULT_MEMORY_SLOS)
            )
        slo_statuses = check_slos(
            slos,
            tracer=tracer,
            window=n_queries,
            totals={"requests": float(n_queries), "dropped": float(dropped)},
            strict=False,
            registry=registry,
        )

        # --- single-interpreter control arm --------------------------------
        server.close()  # workers down first: the control arm must own the box

        def single_serve(i: int) -> object:
            embedding = np.asarray(encoder([queries[i]]), dtype=np.float64)[0]
            return inline_topk(embedding)

        single_seconds, single_results = _drive_closed_loop(
            single_serve, n_queries, workers
        )
        single_dropped = sum(1 for r in single_results if r is None)
        if single_dropped:
            raise RuntimeError(f"control arm dropped {single_dropped} queries")

        result = ShardBenchResult(
            n_db=n_db,
            n_queries=n_queries,
            shards=shards,
            workers=workers,
            k=k,
            build_seconds=build_seconds,
            sharded_seconds=sharded_seconds,
            single_seconds=single_seconds,
            completed=completed,
            dropped=dropped,
            degraded=degraded,
            latency_p50=latencies[len(latencies) // 2] if latencies else 0.0,
            latency_p99=latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
            if latencies
            else 0.0,
            recall_at_k=recall_at_k,
            agreement=agreement,
            checked=checked,
            cpu_count=cpu_count,
            slo_statuses=list(slo_statuses),
            bytes_per_trajectory=float(memory["bytes_per_trajectory"]),
            peak_rss_bytes=float(memory["peak_rss_bytes"]),
            shard_attribution=shard_attribution,
        )
        # Persist the registry snapshot BEFORE enforcing SLOs: a breach
        # must not cost us the measurements that explain it.
        _export_metrics(metrics_out, registry)
        if enforce_slos:
            assert_slos(slo_statuses)
        return result
    finally:
        sys.setswitchinterval(switch_before)
        tracer.set_enabled(tracing_before)
        if trace_log is not None:
            tracer.configure(log_path=None)
        server.close()


def format_shard_bench(result: ShardBenchResult) -> str:
    """Human-readable shard-bench report (what the CLI prints)."""
    lines = [
        f"shard-bench: {result.n_queries} queries x {result.workers} workers "
        f"over {result.n_db} trajectories in {result.shards} shards "
        f"({result.cpu_count} cpu)",
        f"  sharded   {result.sharded_qps:10.1f} qps "
        f"({result.sharded_seconds:.3f}s total)",
        f"  single    {result.single_qps:10.1f} qps "
        f"(same graphs, {result.workers} threads, one interpreter)",
        f"  speedup   {result.speedup:10.2f}x  (build {result.build_seconds:.1f}s)",
        f"  latency   p50 {result.latency_p50 * 1e3:8.2f} ms   "
        f"p99 {result.latency_p99 * 1e3:8.2f} ms",
        f"  quality   agreement {result.agreement:.3f}, "
        f"recall@{result.k} {result.recall_at_k:.3f} "
        f"({result.checked} checked)",
        f"  health    completed {result.completed}/{result.n_queries}, "
        f"dropped {result.dropped}, degraded {result.degraded}",
        f"  memory    {result.bytes_per_trajectory:,.0f} B/trajectory accounted, "
        f"peak rss {result.peak_rss_bytes / (1024 * 1024):,.1f} MiB",
    ]
    if result.shard_attribution:
        lines.append(
            "  shard      gathers   wait-ms    ipc-ms  search-ms   dead  deadline"
        )
        for shard in sorted(result.shard_attribution):
            row = result.shard_attribution[shard]
            lines.append(
                f"  shard-{shard:<4d} {row['gathers']:8.0f}  "
                f"{row['mean_wait_s'] * 1e3:8.2f}  {row['mean_ipc_s'] * 1e3:8.2f}  "
                f"{row['mean_search_s'] * 1e3:9.2f}  {row['dead']:5.0f}  "
                f"{row['deadline']:8.0f}"
            )
    if result.slo_statuses:
        lines.append(format_slos(result.slo_statuses))
    return "\n".join(lines)
