"""The similarity query engine: cache → micro-batch encode → index top-k.

This is the serving path the ROADMAP's "heavy traffic" north star needs:
a :class:`SimilarityServer` owns an encoder, an :class:`EmbeddingCache`,
a :class:`MicroBatcher` and an :class:`~repro.index.hnsw.HNSWIndex`, and
answers ``topk(traj, k)`` from any number of caller threads.

Degradation contract — **callers never see an exception** from
:meth:`SimilarityServer.topk`:

- embedding available in time → approximate HNSW answer (or brute-force
  over the embedding table when the database is small or ``k`` is large,
  which is *exact* in embedding space);
- encode misses the per-request deadline, or the batched forward fails →
  a *degraded-but-exact* answer: the true trajectory metric (default
  DTW) is evaluated against a bounded subset of the stored trajectories
  and its top-k returned, flagged ``degraded=True``.  Coverage shrinks,
  correctness of what is returned does not.

Every stage is observable: ``serve.query.*`` counters, per-stage spans
(``serve/encode``, ``serve/index``, ``serve/degraded``) on the default
recorder, plus the cache and batcher instruments they own.

Additionally every :meth:`SimilarityServer.topk` call opens one
``serve.topk`` request trace (:mod:`repro.obs.trace`): child spans for
the cache probe, queue wait, batched forward (both stamped across the
thread hop by the :class:`MicroBatcher` via a handoff token), index
search and the degraded fallback (with the degradation *reason* as an
attribute), so ``repro-tmn trace`` can show where any single slow
request spent its time.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..index.hnsw import HNSWIndex
from ..metrics import MetricSpec, get_metric, pad_trajectories
from ..obs.lockstats import new_lock
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.spans import span
from ..obs.trace import get_tracer, trace_span
from .batcher import MicroBatcher
from .cache import EmbeddingCache, trajectory_key

__all__ = ["ServeResult", "SimilarityServer", "exact_metric_topk"]

_LOG = get_logger("repro.serve.engine")


def exact_metric_topk(
    points: np.ndarray, subset: Sequence[np.ndarray], metric: MetricSpec, k: int
) -> "tuple[np.ndarray, np.ndarray]":
    """True-metric top-k of ``points`` against ``subset``: ``(order, dists)``.

    One padded batch evaluation of ``metric`` followed by a stable
    argsort, so ties resolve to the lowest subset index.  Shared by the
    single-process degraded path and the sharded coordinator's
    no-embedding fallback — both tiers must rank identically.
    """
    stacked, lengths = pad_trajectories([points] + list(subset))
    q_stack = np.repeat(stacked[:1], len(subset), axis=0)
    q_len = np.repeat(lengths[:1], len(subset))
    dists = metric.batch(q_stack, stacked[1:], q_len, lengths[1:])
    k_eff = min(k, len(subset))
    order = np.argsort(dists, kind="stable")[:k_eff]
    return order, np.asarray(dists[order], dtype=float)


@dataclass
class ServeResult:
    """Outcome of one ``topk`` request.

    Attributes
    ----------
    ids:
        Database ids, ascending by distance (may hold fewer than ``k``
        entries on a degraded answer over a small cached subset).
    distances:
        Matching distances.  Embedding-space L2 for normal answers; true
        trajectory-metric distances when ``degraded``.
    degraded:
        True when the deadline/fault fallback produced the answer.
    cache_hit:
        Whether the query embedding came from the cache.
    source:
        ``"hnsw"``, ``"brute"`` or ``"degraded-exact"``.
    seconds:
        End-to-end request wall time.
    """

    ids: np.ndarray
    distances: np.ndarray
    degraded: bool
    cache_hit: bool
    source: str
    seconds: float
    k: int = field(default=0)


class SimilarityServer:
    """Concurrent top-k similarity serving over learned embeddings.

    Parameters
    ----------
    encode_fn:
        Either a model exposing ``encode(trajs) -> (B, d)`` (any
        :class:`~repro.core.model.TrajectoryPairModel`) or a bare
        callable with that contract.
    dim:
        Embedding dimensionality (must match ``encode_fn`` output).
    cache_capacity / max_batch_size / max_wait_ms:
        Knobs of the embedding cache and the micro-batching queue.
    ef_search:
        HNSW beam width for queries (recall/latency trade-off).
    brute_threshold:
        Below this database size the engine answers by brute force over
        the embedding table instead of the graph (exact, and faster than
        graph traversal at small N).
    fallback_metric:
        True trajectory metric used for degraded answers (name or
        :class:`MetricSpec`).
    degraded_scan_limit:
        Maximum stored trajectories scanned by the degraded exact path,
        bounding its latency.
    """

    def __init__(
        self,
        encode_fn: Union[Callable[[Sequence], np.ndarray], object],
        dim: int,
        *,
        cache_capacity: int = 4096,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        idle_grace_ms: float = 0.5,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: Optional[int] = None,
        brute_threshold: int = 64,
        fallback_metric: Union[str, MetricSpec] = "dtw",
        degraded_scan_limit: int = 256,
        seed: int = 0,
    ):
        # Models expose .encode (and are also callable via Module.__call__),
        # so the attribute check must come first.
        if hasattr(encode_fn, "encode"):
            self._encode_raw = encode_fn.encode
        elif callable(encode_fn):
            self._encode_raw = encode_fn
        else:
            raise TypeError("encode_fn must be callable or expose .encode()")
        self.dim = dim
        self.ef_search = ef_search
        self.brute_threshold = brute_threshold
        self.degraded_scan_limit = degraded_scan_limit
        self.index = HNSWIndex(dim, m=m, ef_construction=ef_construction, seed=seed)
        self.cache = EmbeddingCache(capacity=cache_capacity)
        self.batcher = MicroBatcher(
            self._encode_batch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            idle_grace_ms=idle_grace_ms,
        )
        self.fallback_metric = (
            fallback_metric
            if isinstance(fallback_metric, MetricSpec)
            else get_metric(fallback_metric)
        )
        # Stored trajectories (by database id) for the degraded exact path.
        self._trajs: List[np.ndarray] = []
        self._trajs_lock = new_lock("serve.trajs")

    # ------------------------------------------------------------------
    def _encode_batch(self, trajs: Sequence) -> np.ndarray:
        """One padded forward over ``trajs``; runs on the batcher thread."""
        with span("serve-encode"):
            out = np.asarray(self._encode_raw(trajs), dtype=np.float64)
        if out.ndim != 2 or out.shape[1] != self.dim:
            raise ValueError(f"encoder returned {out.shape}, expected (B, {self.dim})")
        return out

    @staticmethod
    def _as_points(traj) -> np.ndarray:
        return np.asarray(
            traj.points if hasattr(traj, "points") else traj, dtype=np.float64
        )

    # ------------------------------------------------------------------
    def add(self, traj, embedding: Optional[np.ndarray] = None) -> int:
        """Insert one trajectory into the database; returns its id.

        The embedding is computed synchronously (bypassing the queue)
        unless supplied; it is cached so a later query for the identical
        trajectory is a cache hit.
        """
        points = self._as_points(traj)
        if embedding is None:
            embedding = self._encode_batch([points])[0]
        embedding = np.asarray(embedding, dtype=np.float64)
        self.cache.put(trajectory_key(points), embedding)
        with self._trajs_lock:
            self._trajs.append(points)
        node = self.index.add(embedding)
        get_registry().counter("serve.db.size").inc()
        return node

    def add_batch(self, trajs: Sequence) -> List[int]:
        """Insert many trajectories with one batched encode per chunk."""
        points = [self._as_points(t) for t in trajs]
        ids: List[int] = []
        chunk = max(self.batcher.max_batch_size, 1)
        for start in range(0, len(points), chunk):
            part = points[start : start + chunk]
            embeddings = self._encode_batch(part)
            for traj, emb in zip(part, embeddings):
                ids.append(self.add(traj, embedding=emb))
        return ids

    def __len__(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    def encode(self, traj, timeout: Optional[float] = None) -> np.ndarray:
        """Embedding for one trajectory via cache + micro-batch queue.

        Unlike :meth:`topk`, this *does* raise on encode failure or
        timeout — it is the building block, not the guarded endpoint.
        """
        key = trajectory_key(traj)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        embedding = self.batcher.submit(traj).result(timeout=timeout)
        self.cache.put(key, embedding)
        return embedding

    # The E001 pass statically verifies this annotation: every raise
    # reachable from topk must be caught before it gets back here.
    def topk(self, traj, k: int = 1, deadline_s: Optional[float] = None) -> ServeResult:  # contract: never-raises
        """Top-k most similar database trajectories; never raises.

        ``deadline_s`` bounds the time spent waiting for the encoder; a
        missed deadline (or a failed batch) yields the degraded exact
        answer.  ``k`` is clamped to the database size.
        """
        start = time.perf_counter()
        try:
            return self._topk_impl(traj, k, deadline_s, start)
        except Exception as exc:
            # Last-resort guard: the serving contract is "no exceptions
            # to the caller"; anything unexpected degrades instead.
            _LOG.error("topk-unexpected", error=type(exc).__name__, k=k)
            return self._last_resort(traj, k, start, exc)

    def _topk_impl(
        self, traj, k: int, deadline_s: Optional[float], start: float
    ) -> ServeResult:
        """The cache → micro-batch → index pipeline behind :meth:`topk`.

        May raise; :meth:`topk` owns the never-raises guard.
        """
        registry = get_registry()
        registry.counter("serve.query.requests").inc()
        with get_tracer().trace("serve.topk", k=k) as trace:
            if deadline_s is not None:
                trace.set(deadline_s=deadline_s)
            points = self._as_points(traj)
            key = trajectory_key(points)
            with trace.span("cache") as cache_span:
                cached = self.cache.get(key)
                cache_hit = cached is not None
                cache_span.set(result="hit" if cache_hit else "miss")
            trace.set(cache_hit=cache_hit)
            if cache_hit:
                embedding = cached
            else:
                remaining = deadline_s
                if deadline_s is not None:
                    remaining = deadline_s - (time.perf_counter() - start)
                    if remaining <= 0:
                        return self._degraded(
                            points, k, start, cache_hit=False,
                            reason="deadline-before-encode",
                        )
                with span("serve-wait"):
                    # Queue-wait/forward spans are stamped onto this
                    # trace by the batcher's flush thread (handoff).
                    try:
                        embedding = self.batcher.submit(points).result(timeout=remaining)
                    except FutureTimeoutError:
                        registry.counter("serve.query.deadline_missed").inc()
                        return self._degraded(
                            points, k, start, cache_hit=False,
                            reason="deadline-missed",
                        )
                    except Exception as exc:
                        _LOG.warning(
                            "batch-failed", error=type(exc).__name__,
                            trace_id=trace.trace_id, k=k,
                        )
                        return self._degraded(
                            points, k, start, cache_hit=False,
                            reason=f"batch-failed:{type(exc).__name__}",
                        )
                self.cache.put(key, embedding)
            return self._answer(embedding, k, start, cache_hit)

    def _last_resort(self, traj, k: int, start: float, exc: Exception) -> ServeResult:
        """Absolute fallback behind the never-raises contract.

        Tries the degraded exact path; if even that faults (the situation
        the contract exists for), answers with an empty result built from
        literals only — the one construction the exception model proves
        cannot raise.
        """
        try:
            get_registry().counter("serve.query.unexpected_errors").inc()
            return self._degraded(
                self._as_points(traj), k, start, cache_hit=False,
                reason=f"unexpected:{type(exc).__name__}",
            )
        except Exception as inner:
            _LOG.error("topk-last-resort", error=type(inner).__name__, k=k)
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=True,
                cache_hit=False,
                source="degraded-exact",
                seconds=time.perf_counter() - start,
                k=k,
            )

    # ------------------------------------------------------------------
    def _answer(
        self, embedding: np.ndarray, k: int, start: float, cache_hit: bool
    ) -> ServeResult:
        """Index-backed answer from a resolved embedding."""
        n = len(self.index)
        if n == 0:
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=False,
                cache_hit=cache_hit,
                source="brute",
                seconds=time.perf_counter() - start,
                k=k,
            )
        k_eff = min(k, n)
        with span("serve-index"), trace_span("index") as index_span:
            if n <= self.brute_threshold or k_eff > n // 2:
                diffs = np.asarray(self.index.vectors[:n]) - embedding[None, :]
                sq = (diffs**2).sum(axis=1)
                order = np.argsort(sq, kind="stable")[:k_eff]
                # Squared L2 values are nonnegative by construction.
                dists = np.sqrt(sq[order])  # lint: allow(N002)
                ids = order
                source = "brute"
            else:
                dists, ids = self.index.query(embedding, k=k_eff, ef=self.ef_search)
                source = "hnsw"
            index_span.set(source=source, n=n, k=k_eff)
        tracer = get_tracer()
        tracer.annotate(degraded=False, source=source)
        get_registry().counter("serve.query.answered").inc()
        get_registry().histogram("serve.query.seconds").observe(
            time.perf_counter() - start
        )
        return ServeResult(
            ids=np.asarray(ids, dtype=int),
            distances=np.asarray(dists, dtype=float),
            degraded=False,
            cache_hit=cache_hit,
            source=source,
            seconds=time.perf_counter() - start,
            k=k,
        )

    def _degraded(
        self,
        points: np.ndarray,
        k: int,
        start: float,
        cache_hit: bool,
        reason: str = "unknown",
    ) -> ServeResult:
        """Deadline/fault fallback: exact metric over a bounded subset.

        Scans up to ``degraded_scan_limit`` stored trajectories with the
        true trajectory metric — the answer is exact *on that subset*,
        trading coverage for bounded latency instead of raising.
        ``reason`` is recorded on the request trace so a degraded answer
        is attributable (deadline vs. fault vs. unexpected error).
        """
        registry = get_registry()
        registry.counter("serve.query.degraded").inc()
        get_tracer().annotate(degraded=True, degraded_reason=reason, source="degraded-exact")
        with self._trajs_lock:
            subset = list(self._trajs[: self.degraded_scan_limit])
        if not subset:
            return ServeResult(
                ids=np.zeros(0, dtype=int),
                distances=np.zeros(0),
                degraded=True,
                cache_hit=cache_hit,
                source="degraded-exact",
                seconds=time.perf_counter() - start,
                k=k,
            )
        with span("serve-degraded"), trace_span("degraded") as deg_span:
            deg_span.set(reason=reason, scanned=len(subset))
            order, dists = exact_metric_topk(points, subset, self.fallback_metric, k)
        return ServeResult(
            ids=np.asarray(order, dtype=int),
            distances=dists,
            degraded=True,
            cache_hit=cache_hit,
            source="degraded-exact",
            seconds=time.perf_counter() - start,
            k=k,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters snapshot (cache + queue + query totals)."""
        return {
            "db_size": len(self.index),
            "cache_size": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
        }

    def memory_stats(self, registry=None) -> dict:
        """Exact bytes held by the serving structures, plus process RSS.

        Audits the three stores the million-trajectory ROADMAP item must
        shrink — embedding cache, HNSW index, raw trajectory store — and
        derives the headline ``bytes_per_trajectory`` (accounted payload
        bytes divided by stored trajectories).  Every figure is mirrored
        into registry gauges (``serve.*.bytes``,
        ``serve.store.bytes_per_trajectory``, ``mem.rss_bytes``,
        ``mem.peak_rss_bytes``) so the SLO monitor and the bench gate
        read the same numbers this method returns.
        """
        from ..obs.memory import update_memory_gauges

        with self._trajs_lock:
            store_bytes = sum(t.nbytes for t in self._trajs)
            n_trajs = len(self._trajs)
        cache_bytes = self.cache.nbytes
        index_bytes = self.index.nbytes
        total = store_bytes + cache_bytes + index_bytes
        per_traj = total / n_trajs if n_trajs else 0.0
        reg = registry if registry is not None else get_registry()
        reg.gauge("serve.store.bytes").set(store_bytes)
        reg.gauge("serve.cache.bytes").set(cache_bytes)
        reg.gauge("serve.index.bytes").set(index_bytes)
        reg.gauge("serve.store.bytes_per_trajectory").set(per_traj)
        process = update_memory_gauges(reg)
        return {
            "n_trajectories": n_trajs,
            "store_bytes": store_bytes,
            "cache_bytes": cache_bytes,
            "index_bytes": index_bytes,
            "total_bytes": total,
            "bytes_per_trajectory": per_traj,
            "rss_bytes": process["rss_bytes"],
            "peak_rss_bytes": process["peak_rss_bytes"],
        }

    def close(self) -> None:
        """Shut down the batcher thread; pending encodes fail cleanly."""
        self.batcher.close()

    def __enter__(self) -> "SimilarityServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
