"""repro.serve — concurrent similarity serving over learned embeddings.

The paper's efficiency argument (Table III) is that similarity queries
collapse to embedding distances once trajectories are encoded; this
package is the subsystem that actually serves those queries:

- :mod:`repro.serve.cache` — thread-safe LRU embedding cache keyed by
  trajectory content hash, with hit/miss accounting;
- :mod:`repro.serve.batcher` — micro-batching encode queue coalescing
  concurrent requests into padded model batches (flush on size or
  deadline), with a fault-isolation boundary per batch;
- :mod:`repro.serve.engine` — :class:`SimilarityServer`: cache → queue →
  HNSW/brute top-k with per-request deadlines; a missed deadline or a
  poisoned batch yields a degraded-but-exact answer, never an exception;
- :mod:`repro.serve.bench` — the ``repro-tmn serve-bench`` harness
  measuring served vs naive one-forward-per-request throughput.

See DESIGN.md §11 for the architecture and the failure-mode table.
"""

from .batcher import MicroBatcher
from .bench import ServeBenchResult, format_serve_bench, run_serve_bench
from .cache import EmbeddingCache, trajectory_key
from .engine import ServeResult, SimilarityServer

__all__ = [
    "EmbeddingCache",
    "MicroBatcher",
    "ServeBenchResult",
    "ServeResult",
    "SimilarityServer",
    "format_serve_bench",
    "run_serve_bench",
    "trajectory_key",
]
