"""repro.serve — concurrent similarity serving over learned embeddings.

The paper's efficiency argument (Table III) is that similarity queries
collapse to embedding distances once trajectories are encoded; this
package is the subsystem that actually serves those queries:

- :mod:`repro.serve.cache` — thread-safe LRU embedding cache keyed by
  trajectory content hash, with hit/miss accounting;
- :mod:`repro.serve.batcher` — micro-batching encode queue coalescing
  concurrent requests into padded model batches (flush on size or
  deadline), with a fault-isolation boundary per batch;
- :mod:`repro.serve.engine` — :class:`SimilarityServer`: cache → queue →
  HNSW/brute top-k with per-request deadlines; a missed deadline or a
  poisoned batch yields a degraded-but-exact answer, never an exception;
- :mod:`repro.serve.shard` — :class:`ShardedSimilarityServer`: the
  process-pool tier — N spawned workers each owning an index shard and
  a MicroBatcher, shared-memory payload handoff, scatter-gather top-k
  merge with per-shard deadlines and the same never-raises contract;
- :mod:`repro.serve.bench` — the ``repro-tmn serve-bench`` harness
  measuring served vs naive one-forward-per-request throughput, plus
  the sharded closed-loop bench behind ``--shards``.

See DESIGN.md §11 for the single-process architecture and failure-mode
table, §16 for the sharded tier.
"""

from .batcher import MicroBatcher
from .bench import (
    ServeBenchResult,
    ShardBenchResult,
    format_serve_bench,
    format_shard_bench,
    run_serve_bench,
    run_shard_bench,
)
from .cache import EmbeddingCache, trajectory_key
from .engine import ServeResult, SimilarityServer, exact_metric_topk
from .shard import (
    FeatureEncoder,
    ShardDeadError,
    ShardedSimilarityServer,
    assign_shard,
    merge_topk,
)

__all__ = [
    "EmbeddingCache",
    "FeatureEncoder",
    "MicroBatcher",
    "ServeBenchResult",
    "ServeResult",
    "ShardBenchResult",
    "ShardDeadError",
    "ShardedSimilarityServer",
    "SimilarityServer",
    "assign_shard",
    "exact_metric_topk",
    "format_serve_bench",
    "format_shard_bench",
    "merge_topk",
    "run_serve_bench",
    "run_shard_bench",
    "trajectory_key",
]
