"""Bench-regression gate: diff fresh bench JSON against committed baselines.

``BENCH_results.json`` / ``BENCH_serve.json`` (written by the benchmark
suite via ``bench_record``) are the repo's perf/quality trajectory, but
until now nothing *enforced* them.  This module compares a freshly
produced bench file against a committed baseline with per-metric,
direction-aware tolerances and fails loudly on regression:

- config echoes (``n_db``, ``workers``, …) must match exactly — a diff
  against a differently-shaped run is meaningless, so it is an error,
  not a pass;
- wall-time metrics (``seconds``, ``latency_*``) may regress up to a
  generous relative bound (machines and CI load vary) but not beyond;
- throughput/quality metrics (``*_qps``, ``speedup``, ``hr*``, …) may
  only *drop* within their bound; improvements never fail;
- ``dropped`` may never increase — the serving layer's zero-drop
  promise is absolute.

``repro-tmn bench-diff`` is the CLI front-end; ``make bench-check``
wires it into the verify path against ``benchmarks/baselines/*.json``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "BenchDelta",
    "BenchDiff",
    "Tolerance",
    "compare_bench",
    "compare_bench_files",
    "load_bench",
    "tolerance_for",
]


@dataclass(frozen=True)
class Tolerance:
    """How one metric is allowed to move between baseline and current.

    ``direction`` is ``"lower"`` (regression = increase, e.g. latency),
    ``"higher"`` (regression = decrease, e.g. throughput), ``"both"``
    (any drift beyond the band regresses) or ``"exact"`` (must match).
    ``rel``/``abs`` define the allowed band: a move within
    ``max(rel * |baseline|, abs)`` of the baseline is ok.
    """

    direction: str
    rel: float = 0.0
    abs: float = 0.0

    def band(self, baseline: float) -> float:
        """Absolute slack allowed around ``baseline``."""
        return max(self.rel * abs(baseline), self.abs)


#: Config echoes recorded into bench quality dicts: exact match required.
_EXACT = {"n_db", "n_queries", "workers", "batch_size", "naive_queries"}

#: (pattern, tolerance) rules, first match wins.
_RULES: Tuple[Tuple[re.Pattern, Tolerance], ...] = (
    # The zero-drop promise is absolute: any increase fails.
    (re.compile(r"^dropped$"), Tolerance("lower", rel=0.0, abs=0.0)),
    # Degradation may wobble a little under CI load, not systematically.
    (re.compile(r"^degraded$"), Tolerance("lower", rel=0.25, abs=4.0)),
    # The compression headline: bytes/trajectory is deterministic given a
    # fixed workload shape, so the band is tight — growth is a regression,
    # shrinkage (a compression PR landing) is an improvement.
    (re.compile(r"bytes_per_trajectory"), Tolerance("lower", rel=0.10, abs=64.0)),
    # Process RSS moves with interpreter state and allocator reuse across
    # runs; generous one-sided band plus a flat allowance.
    (re.compile(r"rss_bytes"), Tolerance("lower", rel=0.60, abs=64 * 1024 * 1024)),
    # Other exact byte audits (store/cache/index payloads): near-
    # deterministic, modest one-sided band.
    (re.compile(r"_bytes$"), Tolerance("lower", rel=0.25, abs=4096.0)),
    # Wall-clock timings: machines vary; allow a generous one-sided band.
    (re.compile(r"(^|_)(seconds|latency)(_|$)|_s$|_ms$"), Tolerance("lower", rel=0.75, abs=0.05)),
    # Trace-collection overhead (percentage points of sharded qps lost
    # with tracing on): may drift at most 5 points above the committed
    # baseline — the cross-process stitching must stay near-free.
    (re.compile(r"^tracing_overhead_pct$"), Tolerance("lower", rel=0.0, abs=5.0)),
    # Throughput and speedups may only drop so far.
    (re.compile(r"(_qps$|^speedup$)"), Tolerance("higher", rel=0.40, abs=0.0)),
    # Quality scores (hit rate / recall / similar): small one-sided band.
    (re.compile(r"^(hr|recall|precision|ndcg)"), Tolerance("higher", rel=0.10, abs=0.02)),
    # Losses: lower is better, small band.
    (re.compile(r"loss"), Tolerance("lower", rel=0.10, abs=1e-3)),
    # Completion / cache counts: must not fall.
    (re.compile(r"^(completed|cache_hits)$"), Tolerance("higher", rel=0.0, abs=0.0)),
)

#: Fallback for unrecognised metrics: symmetric ±50% band.
_DEFAULT_TOLERANCE = Tolerance("both", rel=0.50, abs=1e-9)


def tolerance_for(metric: str, overrides: Optional[Dict[str, float]] = None) -> Tolerance:
    """The tolerance rule governing ``metric`` (with optional rel overrides).

    ``overrides`` maps exact metric names to a replacement relative
    tolerance, keeping the matched rule's direction.
    """
    if metric in _EXACT:
        tol = Tolerance("exact")
    else:
        tol = _DEFAULT_TOLERANCE
        for pattern, rule in _RULES:
            if pattern.search(metric):
                tol = rule
                break
    if overrides and metric in overrides and tol.direction != "exact":
        tol = Tolerance(tol.direction, rel=overrides[metric], abs=tol.abs)
    return tol


@dataclass
class BenchDelta:
    """One (bench, metric) comparison outcome."""

    bench: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    status: str  #: ok | improved | regressed | mismatch | missing | new

    @property
    def failed(self) -> bool:
        """Whether this delta fails the gate."""
        return self.status in ("regressed", "mismatch", "missing")

    def to_dict(self) -> dict:
        """JSON-ready form of this delta."""
        return {
            "bench": self.bench,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "status": self.status,
        }


@dataclass
class BenchDiff:
    """Full comparison of one bench file against one baseline file."""

    deltas: List[BenchDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no delta fails the gate."""
        return not any(d.failed for d in self.deltas)

    @property
    def failures(self) -> List[BenchDelta]:
        """Every delta that fails the gate."""
        return [d for d in self.deltas if d.failed]

    def to_dict(self) -> dict:
        """JSON-ready report (``repro-tmn bench-diff --json``)."""
        return {
            "ok": self.ok,
            "failures": len(self.failures),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def format_text(self, verbose: bool = False) -> str:
        """Human-readable report; quiet deltas are elided unless verbose."""
        lines = []
        shown = self.deltas if verbose else [
            d for d in self.deltas if d.status != "ok"
        ]
        for d in shown:
            base = "-" if d.baseline is None else f"{d.baseline:.6g}"
            cur = "-" if d.current is None else f"{d.current:.6g}"
            flag = "FAIL" if d.failed else "ok  "
            lines.append(
                f"  {flag} {d.status:<10s} {d.bench} :: {d.metric:<18s} "
                f"baseline {base:>12s} -> current {cur:>12s}"
            )
        checked = len(self.deltas)
        if self.ok:
            lines.append(f"bench gate ok: {checked} metric(s) within tolerance")
        else:
            lines.append(
                f"bench gate FAILED: {len(self.failures)} of {checked} "
                f"metric(s) out of tolerance"
            )
        return "\n".join(lines)


def load_bench(path: Union[str, Path]) -> dict:
    """Load one bench JSON file (``{"benches": {nodeid: {...}}}``)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "benches" not in data:
        raise ValueError(f"{path}: not a bench results file (no 'benches' key)")
    return data


def _judge(value: float, baseline: float, tol: Tolerance) -> str:
    if tol.direction == "exact":
        return "ok" if value == baseline else "mismatch"
    band = tol.band(baseline)
    delta = value - baseline
    if tol.direction == "lower":
        if delta > band:
            return "regressed"
        return "improved" if delta < -band else "ok"
    if tol.direction == "higher":
        if delta < -band:
            return "regressed"
        return "improved" if delta > band else "ok"
    # both
    return "ok" if abs(delta) <= band else "regressed"


def compare_bench(
    current: dict,
    baseline: dict,
    overrides: Optional[Dict[str, float]] = None,
) -> BenchDiff:
    """Compare two loaded bench payloads metric by metric.

    Every baseline bench must be present in ``current`` with a passing
    outcome; every baseline quality metric (plus the bench wall time)
    must sit inside its tolerance band.  Benches or metrics present only
    in ``current`` are reported as ``new`` and never fail.
    """
    diff = BenchDiff()
    cur_benches = current.get("benches", {})
    base_benches = baseline.get("benches", {})
    for bench in sorted(base_benches):
        base_entry = base_benches[bench]
        cur_entry = cur_benches.get(bench)
        if cur_entry is None:
            diff.deltas.append(BenchDelta(bench, "<bench>", None, None, "missing"))
            continue
        if cur_entry.get("outcome", "passed") != "passed":
            diff.deltas.append(BenchDelta(bench, "<outcome>", None, None, "mismatch"))
        base_quality = dict(base_entry.get("quality", {}))
        if "seconds" in base_entry:
            base_quality["seconds"] = base_entry["seconds"]
        cur_quality = dict(cur_entry.get("quality", {}))
        if "seconds" in cur_entry:
            cur_quality["seconds"] = cur_entry["seconds"]
        for metric in sorted(base_quality):
            base_value = float(base_quality[metric])
            if metric not in cur_quality:
                diff.deltas.append(BenchDelta(bench, metric, base_value, None, "missing"))
                continue
            cur_value = float(cur_quality[metric])
            status = _judge(cur_value, base_value, tolerance_for(metric, overrides))
            diff.deltas.append(BenchDelta(bench, metric, base_value, cur_value, status))
        for metric in sorted(set(cur_quality) - set(base_quality)):
            diff.deltas.append(
                BenchDelta(bench, metric, None, float(cur_quality[metric]), "new")
            )
    for bench in sorted(set(cur_benches) - set(base_benches)):
        diff.deltas.append(BenchDelta(bench, "<bench>", None, None, "new"))
    return diff


def compare_bench_files(
    current_path: Union[str, Path],
    baseline_path: Union[str, Path],
    overrides: Optional[Dict[str, float]] = None,
) -> BenchDiff:
    """Load two bench JSON files and compare them (see :func:`compare_bench`)."""
    return compare_bench(
        load_bench(current_path), load_bench(baseline_path), overrides=overrides
    )
