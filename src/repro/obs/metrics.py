"""Process-local metrics registry: counters, gauges and histograms.

The registry is the numeric backbone of :mod:`repro.obs`: subsystems
increment named instruments as they work (trainer steps, HNSW queries,
exact-metric timings) and callers read one consistent :meth:`snapshot`
at the end of a run.  Instruments are created on first use, so library
code never has to check whether observability is "configured" — an
unobserved counter costs one dict lookup and one float add.

Design constraints (see DESIGN.md §9):

- process-local; instrument updates are guarded by one shared lock so
  the serving layer's worker threads can increment counters without
  losing updates (an uncontended lock costs ~100ns — within the
  always-on overhead budget);
- instruments are plain objects callers may hold onto — :meth:`reset`
  clears their state in place rather than replacing them, so cached
  references stay valid;
- :meth:`snapshot` returns plain dicts of floats, directly serialisable
  into the JSONL run records of :mod:`repro.obs.run`.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, List, Optional, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "mirror_snapshot",
]

#: One shared mutation lock for every instrument: updates are tiny, so a
#: single lock beats per-instrument locks on memory and is never hot
#: enough to contend at reproduction scale.
_UPDATE_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing count (events, items, calls)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current accumulated count."""
        with _UPDATE_LOCK:
            return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with _UPDATE_LOCK:
            self._value += float(amount)

    def reset(self) -> None:
        """Zero the counter in place."""
        with _UPDATE_LOCK:
            self._value = 0.0

    def to_dict(self) -> Dict[str, float]:
        """Serialisable snapshot of this instrument."""
        with _UPDATE_LOCK:
            return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Last value set, or None if never set (or reset since)."""
        return self._value

    def set(self, value: Union[int, float]) -> None:
        """Record the current level of the measured quantity."""
        self._value = float(value)

    def reset(self) -> None:
        """Forget the recorded value."""
        self._value = None

    def to_dict(self) -> Dict[str, Optional[float]]:
        """Serialisable snapshot of this instrument."""
        return {"type": "gauge", "value": self._value}


class Histogram:
    """A distribution of observed values (timings, norms, sizes).

    Memory is bounded: up to ``reservoir_size`` observations (default
    8192) are stored, so quantiles are *exact* below the cap.  Beyond
    the cap, new observations replace stored ones via Vitter's
    Algorithm R (each of the ``n`` observations seen so far has equal
    probability of being in the reservoir), making quantiles an unbiased
    *approximation* — while ``count``/``total``/``min``/``max`` (and
    hence ``mean``) stay exact at any volume.  Long serve runs can
    therefore observe per-request latencies indefinitely without the
    instrument growing without limit.
    """

    __slots__ = ("name", "_values", "_count", "_total", "_min", "_max", "_cap", "_rng")

    #: Default stored-observation cap (exact quantiles below this).
    RESERVOIR_SIZE = 8192

    def __init__(self, name: str, reservoir_size: Optional[int] = None):
        self.name = name
        self._cap = reservoir_size if reservoir_size is not None else self.RESERVOIR_SIZE
        if self._cap < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # Deterministic per-instrument stream: replacement decisions are
        # reproducible for a fixed observation sequence.
        self._rng = np.random.default_rng(zlib.crc32(name.encode("utf-8")))

    @property
    def count(self) -> int:
        """Exact number of observations recorded (may exceed the reservoir)."""
        with _UPDATE_LOCK:
            return self._count

    @property
    def total(self) -> float:
        """Exact sum of all observations."""
        with _UPDATE_LOCK:
            return self._total

    @property
    def reservoir_len(self) -> int:
        """How many observations are currently stored (<= the cap)."""
        with _UPDATE_LOCK:
            return len(self._values)

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation (bounded memory, see class docstring)."""
        value = float(value)
        with _UPDATE_LOCK:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._values) < self._cap:
                self._values.append(value)
            else:
                # Algorithm R: keep each of the count observations with
                # equal probability cap/count.
                slot = int(self._rng.integers(0, self._count))
                if slot < self._cap:
                    self._values[slot] = value

    def percentile(self, q: float) -> float:
        """``q``-th percentile (0..100): exact below the reservoir cap,
        an unbiased estimate from the reservoir sample above it."""
        # Copy under the lock, run numpy outside it: percentile sorting
        # is O(n log n) and must not stall concurrent observers.
        with _UPDATE_LOCK:
            values = list(self._values)
        if not values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return float(np.percentile(values, q))

    def reset(self) -> None:
        """Drop all observations and exact totals (RNG stream continues)."""
        with _UPDATE_LOCK:
            self._values.clear()
            self._count = 0
            self._total = 0.0
            self._min = None
            self._max = None

    def to_dict(self) -> Dict[str, Union[str, float, int]]:
        """Serialisable summary: count/total/min/mean/max and p50/p90/p99.

        ``count``/``total``/``min``/``mean``/``max`` are exact; the
        percentiles are reservoir estimates once ``count`` exceeds the
        cap (exact below it).
        """
        # One consistent copy of the state under the lock; the percentile
        # math runs outside so the shared update lock is never held
        # across numpy calls.
        with _UPDATE_LOCK:
            count = self._count
            total = self._total
            lo = self._min
            hi = self._max
            values = list(self._values)
        if not count:
            return {"type": "histogram", "count": 0}
        arr = np.asarray(values)
        return {
            "type": "histogram",
            "count": int(count),
            "total": float(total),
            "min": float(lo),
            "mean": float(total / count),
            "max": float(hi),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
        }


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    under a name fixes its kind, and asking for the same name as a
    different kind raises ``TypeError`` (silent kind drift would corrupt
    every dashboard reading the snapshot).
    """

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, name: str, kind):
        # Lock-free fast path: dict reads are atomic under the GIL, and a
        # miss falls through to a locked setdefault that re-checks, so a
        # racing create is safe.
        existing = self._instruments.get(name)  # lint: allow(C002, C005)
        if existing is None:
            with _UPDATE_LOCK:
                existing = self._instruments.setdefault(name, kind(name))
        if not isinstance(existing, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, not {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        with _UPDATE_LOCK:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """One serialisable dict per instrument, keyed by name."""
        # Copy the instrument list under the lock, then serialise outside
        # it: each ``to_dict`` re-acquires the (non-reentrant) update
        # lock itself, so calling it while holding the lock would
        # self-deadlock.
        with _UPDATE_LOCK:
            instruments = sorted(self._instruments.items())
        return {name: instrument.to_dict() for name, instrument in instruments}

    def reset(self) -> None:
        """Clear every instrument's state in place (references stay valid)."""
        # Same copy-then-call shape as ``snapshot``: each instrument's
        # ``reset`` takes the update lock, so it must run outside it.
        with _UPDATE_LOCK:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


def mirror_snapshot(
    snapshot: Dict[str, dict],
    prefix: str,
    registry: Optional["MetricsRegistry"] = None,
) -> int:
    """Mirror another process's registry snapshot into local gauges.

    The cross-process metrics handoff for the sharded serving tier: a
    worker ships ``registry.snapshot()`` over its response queue and the
    coordinator replays it here under ``<prefix><name>`` names.  Every
    instrument lands as a *gauge* (last-shipped-value-wins — a remote
    counter is a level from this process's point of view, and re-mirroring
    must overwrite, not accumulate); histograms contribute their
    ``count``, ``mean`` and (when present) ``p50``/``p99`` quantiles as
    gauges — the per-shard latency levels the fleet SLOs and the
    shard-labelled exposition read.  Returns the number of gauges written.
    """
    registry = registry if registry is not None else get_registry()
    written = 0
    for name, payload in snapshot.items():
        kind = payload.get("type")
        if kind in ("counter", "gauge"):
            value = payload.get("value")
            if value is not None:
                registry.gauge(f"{prefix}{name}").set(value)
                written += 1
        elif kind == "histogram" and payload.get("count"):
            registry.gauge(f"{prefix}{name}.count").set(payload["count"])
            registry.gauge(f"{prefix}{name}.mean").set(payload.get("mean", 0.0))
            written += 2
            for key in ("p50", "p99"):
                if key in payload:
                    registry.gauge(f"{prefix}{name}.{key}").set(payload[key])
                    written += 1
    return written


#: The process-wide default registry used by the instrumented subsystems.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
