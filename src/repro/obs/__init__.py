"""repro.obs — structured run telemetry for the TMN reproduction.

The training loop is the part of the paper we must trust most, and
"runs as fast as the hardware allows" (ROADMAP) is only an honest claim
when the measurement layer exists first.  This package provides it:

- :mod:`repro.obs.metrics` — process-local registry of counters, gauges
  and histograms with snapshot/reset;
- :mod:`repro.obs.spans` — hierarchical wall-time spans (context manager
  + decorator): epoch → batch → forward/backward/optimizer/sampling;
- :mod:`repro.obs.profile` — opt-in autograd op profiler (per-op call
  counts, forward/backward seconds), near-zero overhead when disabled;
- :mod:`repro.obs.log` — leveled structured logging, human lines on
  stderr plus an optional JSONL mirror;
- :mod:`repro.obs.run` — JSONL run records (config, seed, per-epoch
  loss/grad-norm/timing, final eval) written by ``repro-tmn train
  --log-json`` and rendered by ``repro-tmn report``.

Overhead policy: always-on instrumentation (registry counters, batch-level
spans, the free-function op guard) must stay under a few hundred
nanoseconds per event; anything heavier (per-op timing) is opt-in and
documented as such.  See DESIGN.md §9.
"""

from .log import Logger, configure, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .profile import OpProfiler, OpStat, format_op_table
from .run import RunRecord, RunWriter, format_run, read_run
from .spans import SpanRecorder, default_recorder, diff_totals, format_spans, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Logger",
    "MetricsRegistry",
    "OpProfiler",
    "OpStat",
    "RunRecord",
    "RunWriter",
    "SpanRecorder",
    "configure",
    "default_recorder",
    "diff_totals",
    "format_op_table",
    "format_run",
    "format_spans",
    "get_logger",
    "get_registry",
    "read_run",
    "span",
]
