"""repro.obs — structured run telemetry for the TMN reproduction.

The training loop is the part of the paper we must trust most, and
"runs as fast as the hardware allows" (ROADMAP) is only an honest claim
when the measurement layer exists first.  This package provides it:

- :mod:`repro.obs.metrics` — process-local registry of counters, gauges
  and histograms with snapshot/reset;
- :mod:`repro.obs.spans` — hierarchical wall-time spans (context manager
  + decorator): epoch → batch → forward/backward/optimizer/sampling;
- :mod:`repro.obs.profile` — opt-in autograd op profiler (per-op call
  counts, forward/backward seconds), near-zero overhead when disabled;
- :mod:`repro.obs.log` — leveled structured logging, human lines on
  stderr plus an optional JSONL mirror;
- :mod:`repro.obs.run` — JSONL run records (config, seed, per-epoch
  loss/grad-norm/timing, final eval) written by ``repro-tmn train
  --log-json`` and rendered by ``repro-tmn report``;
- :mod:`repro.obs.trace` — request-scoped traces (per-request span trees
  with explicit cross-thread handoff and cross-process stitching via
  ``TraceContext``/``graft_subtree``, bounded recent-trace ring, JSONL
  trace log, critical-path rendering for ``repro-tmn trace``);
- :mod:`repro.obs.expo` — Prometheus-style text exposition over the
  registry (``repro-tmn metrics``), with scrape hooks for pull-time
  refresh and a ``shard`` label dimension over ``serve.shard.N.*``;
- :mod:`repro.obs.slo` — declarative SLOs (latency percentile, degraded
  rate, drop rate, per-shard imbalance and straggler rate) evaluated
  over the trace ring;
- :mod:`repro.obs.benchgate` — bench-regression gate diffing fresh bench
  JSON against committed baselines (``repro-tmn bench-diff``);
- :mod:`repro.obs.lockstats` — runtime lock sanitizer: instrumented
  ``SanitizedLock``/``SanitizedRLock`` shims behind the ``new_lock`` /
  ``new_rlock`` factories, a runtime lock-order graph that raises on
  observed cycles, and hold/wait/contention metrics per named lock
  (``REPRO_LOCK_SANITIZE=1`` or ``pytest --sanitize``);
- :mod:`repro.obs.sampler` — background wall-clock stack sampler
  (``sys._current_frames`` at a configurable hz), per-thread aggregated
  stack counts with trace-phase attribution, folded + speedscope export
  (``repro-tmn profile-serve``);
- :mod:`repro.obs.memory` — memory accounting: RSS/peak-RSS gauges,
  opt-in tracemalloc allocation spans, and exact byte audits feeding the
  ``bytes_per_trajectory`` bench gate.

Overhead policy: always-on instrumentation (registry counters, batch-level
spans, the free-function op guard) must stay under a few hundred
nanoseconds per event; anything heavier (per-op timing) is opt-in and
documented as such.  See DESIGN.md §9.
"""

from .benchgate import BenchDiff, compare_bench, compare_bench_files
from .expo import (
    register_scrape_hook,
    render_exposition,
    run_scrape_hooks,
    unregister_scrape_hook,
)
from .lockstats import (
    LockOrderError,
    LockStats,
    SanitizedLock,
    SanitizedRLock,
    get_lockstats,
    held_lock_names,
    new_lock,
    new_rlock,
)
from .log import Logger, configure, get_logger
from .memory import (
    AllocSpan,
    MemoryTracker,
    alloc_span,
    format_memory,
    peak_rss_bytes,
    rss_bytes,
    tracking_active,
    update_memory_gauges,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .profile import OpProfiler, OpStat, format_op_table
from .run import RunRecord, RunWriter, format_run, read_run
from .sampler import StackSampler, format_top_frames, merge_stacks, top_frames
from .slo import SLO, SLOStatus, SLOViolation, check_slos, evaluate_slos, format_slos
from .spans import SpanRecorder, default_recorder, diff_totals, format_spans, span
from .trace import (
    Handoff,
    Trace,
    TraceContext,
    Tracer,
    annotate,
    begin_remote,
    capture_context,
    current_trace,
    export_subtree,
    format_trace,
    get_tracer,
    graft_subtree,
    read_trace_log,
    trace_span,
)

__all__ = [
    "AllocSpan",
    "BenchDiff",
    "Counter",
    "Gauge",
    "Handoff",
    "Histogram",
    "LockOrderError",
    "LockStats",
    "Logger",
    "MemoryTracker",
    "MetricsRegistry",
    "OpProfiler",
    "OpStat",
    "RunRecord",
    "RunWriter",
    "SLO",
    "SLOStatus",
    "SLOViolation",
    "SanitizedLock",
    "SanitizedRLock",
    "SpanRecorder",
    "StackSampler",
    "Trace",
    "TraceContext",
    "Tracer",
    "alloc_span",
    "annotate",
    "begin_remote",
    "capture_context",
    "check_slos",
    "compare_bench",
    "compare_bench_files",
    "configure",
    "current_trace",
    "default_recorder",
    "diff_totals",
    "evaluate_slos",
    "export_subtree",
    "format_memory",
    "format_op_table",
    "format_run",
    "format_slos",
    "format_spans",
    "format_top_frames",
    "format_trace",
    "get_lockstats",
    "get_logger",
    "get_registry",
    "get_tracer",
    "graft_subtree",
    "held_lock_names",
    "merge_stacks",
    "new_lock",
    "new_rlock",
    "peak_rss_bytes",
    "read_run",
    "read_trace_log",
    "register_scrape_hook",
    "render_exposition",
    "rss_bytes",
    "run_scrape_hooks",
    "span",
    "top_frames",
    "trace_span",
    "tracking_active",
    "unregister_scrape_hook",
    "update_memory_gauges",
]
