"""Structured event logging: human lines on stderr, JSONL on request.

Library code (trainer, experiment runner) logs *events with fields*
rather than formatted strings::

    log = get_logger("repro.trainer")
    log.info("epoch", epoch=3, loss=0.0123, grad_norm=2.41, seconds=1.8)

By default events render as one human-readable line on ``sys.stderr`` —
keeping ``stdout`` clean for CLI result tables — and can additionally be
mirrored verbatim to a JSONL file via :func:`configure`.  This replaces
the bare ``print`` calls the lint rule R007 now forbids in library code.

The module is deliberately tiny (no stdlib ``logging`` hierarchy): one
global sink configuration, leveled loggers cached by name, dict events.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, IO, Optional

__all__ = ["Logger", "configure", "get_logger"]

#: Numeric severity per level name, stdlib-compatible ordering.
_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

# Module-global sink configuration (process-local, like the registry).
_STATE = {
    "level": _LEVELS["info"],
    "stream": None,  # None -> sys.stderr resolved at emit time
    "json_file": None,  # open file handle for the JSONL mirror
}

_LOGGERS: Dict[str, "Logger"] = {}


def configure(
    level: str = "info",
    stream: Optional[IO] = None,
    json_path: Optional[str] = None,
) -> None:
    """(Re)configure the global sinks.

    Parameters
    ----------
    level:
        Minimum severity emitted ("debug", "info", "warning", "error").
    stream:
        Text stream for human-readable lines; defaults to ``sys.stderr``
        (resolved at emit time so pytest capture works).
    json_path:
        When given, every emitted event is also appended to this file as
        one JSON object per line.  ``None`` closes any previous mirror.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}")
    _STATE["level"] = _LEVELS[level]
    _STATE["stream"] = stream
    if _STATE["json_file"] is not None:
        _STATE["json_file"].close()
    _STATE["json_file"] = open(json_path, "a") if json_path else None


def _emit(record: dict) -> None:
    stream = _STATE["stream"] or sys.stderr
    fields = " ".join(
        f"{k}={_short(v)}"
        for k, v in record.items()
        if k not in ("ts", "level", "logger", "event")
    )
    line = f"[{record['logger']}] {record['level']}: {record['event']}"
    stream.write(f"{line} {fields}\n" if fields else f"{line}\n")
    json_file = _STATE["json_file"]
    if json_file is not None:
        json_file.write(json.dumps(record) + "\n")
        json_file.flush()


def _short(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class Logger:
    """A named emitter of leveled, structured events."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, event: str, **fields) -> None:
        """Emit ``event`` with ``fields`` if ``level`` passes the threshold."""
        if _LEVELS[level] < _STATE["level"]:
            return
        record = {"ts": time.time(), "level": level, "logger": self.name, "event": event}
        record.update(fields)
        _emit(record)

    def debug(self, event: str, **fields) -> None:
        """Emit at debug severity."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        """Emit at info severity."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        """Emit at warning severity."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        """Emit at error severity."""
        self.log("error", event, **fields)


def get_logger(name: str) -> Logger:
    """The (cached) logger called ``name``."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = Logger(name)
    return logger
