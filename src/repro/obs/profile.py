"""Opt-in autograd op profiler: per-op call counts and forward/backward time.

While enabled, every autodiff op is timed at its outer boundary:

- **Tensor methods** (``__add__``, ``__matmul__``, ``sum``, ...) are
  intercepted by patching the method on the :class:`~repro.autograd.Tensor`
  class — dunder dispatch and attribute lookup both go through the class,
  so every call site is caught and a disabled profiler costs literally
  nothing;
- **free-function ops** (``softmax``, ``concat``, ``fused_lstm_step``, ...)
  are bound by name at their import sites, so they instead carry the
  definition-site guard :func:`repro.autograd.profiled_op`, whose disabled
  cost is one global read per call.

Forward time is wall time of the op body (inclusive: composite ops such as
``mean`` also count their inner ``sum``).  Backward time is exact per
closure: the profiler wraps each produced node's ``_backward`` so the time
spent inside it during :meth:`Tensor.backward` is attributed to the op
that created the node.  Wrapping changes no values — gradcheck results are
bit-identical with the profiler on (covered by ``tests/test_obs.py``).

Usage::

    with OpProfiler() as prof:
        trainer.fit(...)
    print(format_op_table(prof.snapshot()))
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Dict, List

from ..autograd import tensor as _tensor_mod
from ..autograd.tensor import Tensor
from .memory import MemoryTracker

__all__ = ["OpProfiler", "OpStat", "format_op_table"]

#: Tensor methods treated as ops.  ``__radd__``/``__rmul__`` alias the same
#: underlying functions but are patched under their own names so reflected
#: dispatch is caught too.
_TENSOR_OPS = (
    "__add__",
    "__radd__",
    "__sub__",
    "__rsub__",
    "__mul__",
    "__rmul__",
    "__truediv__",
    "__rtruediv__",
    "__neg__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "abs",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "swapaxes",
    "expand_dims",
    "squeeze",
    "broadcast_to",
)


class OpStat:
    """Accumulated profile of one op: calls, forward/backward seconds, bytes.

    ``total_bytes`` (net Python-heap allocation attributed to the op's
    forward bodies) stays 0 unless the profiler was built with
    ``track_memory=True``.
    """

    __slots__ = (
        "name",
        "calls",
        "forward_s",
        "backward_calls",
        "backward_s",
        "total_bytes",
    )

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.forward_s = 0.0
        self.backward_calls = 0
        self.backward_s = 0.0
        self.total_bytes = 0

    def to_dict(self) -> Dict[str, float]:
        """Serialisable snapshot (goes into the run record's ``op_profile``)."""
        return {
            "calls": self.calls,
            "forward_s": self.forward_s,
            "backward_calls": self.backward_calls,
            "backward_s": self.backward_s,
            "total_bytes": self.total_bytes,
        }


class OpProfiler:
    """Times every autograd op while enabled; see the module docstring.

    Off by default: construct, then either use as a context manager or
    call :meth:`enable`/:meth:`disable` explicitly.  Re-entrant enables
    are rejected — two live profilers would double-patch the class.

    With ``track_memory=True`` the profiler owns a
    :class:`~repro.obs.memory.MemoryTracker` for its enabled lifetime and
    attributes each op's net forward-allocation delta to its stat's
    ``total_bytes`` (tracemalloc roughly doubles allocation cost — the
    same opt-in economics as the timing patch itself).
    """

    def __init__(self, track_memory: bool = False):
        self._stats: Dict[str, OpStat] = {}
        self._originals: Dict[str, object] = {}
        self._memory = MemoryTracker() if track_memory else None
        self.track_memory = track_memory
        self.enabled = False

    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Patch Tensor methods and install the free-function hook."""
        if self.enabled:
            raise RuntimeError("profiler already enabled")
        if _tensor_mod._PROFILER is not None:
            raise RuntimeError("another profiler is already active")
        for name in _TENSOR_OPS:
            original = getattr(Tensor, name)
            self._originals[name] = original
            setattr(Tensor, name, self._wrap_method(name, original))
        if self._memory is not None:
            # Disable() is the paired release; R009's with/finally
            # discipline is owed by our callers, who hold *us*.
            self._memory.enable()  # lint: allow(R009)
        _tensor_mod._set_profiler(self)
        self.enabled = True

    def disable(self) -> None:
        """Restore the pristine Tensor class and remove the hook."""
        if not self.enabled:
            return
        for name, original in self._originals.items():
            setattr(Tensor, name, original)
        self._originals.clear()
        _tensor_mod._set_profiler(None)
        if self._memory is not None:
            self._memory.disable()
        self.enabled = False

    def __enter__(self) -> "OpProfiler":
        self.enable()
        return self

    def __exit__(self, *exc) -> None:
        self.disable()

    # ------------------------------------------------------------------
    def _stat(self, name: str) -> OpStat:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = OpStat(name)
        return stat

    def _wrap_method(self, name: str, fn):
        def method(*args, **kwargs):
            return self.call(name, fn, args, kwargs)

        method.__name__ = name
        method.__qualname__ = f"Tensor.{name}"
        method.__doc__ = fn.__doc__
        return method

    def call(self, name: str, fn, args, kwargs):
        """Run one op under timing; wrap its outputs' backward closures.

        This is the single entry point both interception mechanisms feed
        (also invoked by :func:`repro.autograd.profiled_op`).
        """
        stat = self._stat(name)
        tracing = self.track_memory and tracemalloc.is_tracing()
        if tracing:
            bytes_before, _ = tracemalloc.get_traced_memory()
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        stat.forward_s += time.perf_counter() - start
        if tracing:
            bytes_after, _ = tracemalloc.get_traced_memory()
            stat.total_bytes += bytes_after - bytes_before
        stat.calls += 1
        if isinstance(out, Tensor):
            self._wrap_backward(stat, out)
        elif isinstance(out, tuple):
            for item in out:
                if isinstance(item, Tensor):
                    self._wrap_backward(stat, item)
        return out

    def _wrap_backward(self, stat: OpStat, node: Tensor) -> None:
        original = node._backward
        if original is None:
            return

        def timed_backward(grad):
            t0 = time.perf_counter()
            try:
                return original(grad)
            finally:
                stat.backward_s += time.perf_counter() - t0
                stat.backward_calls += 1

        node._backward = timed_backward

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{op name: {calls, forward_s, backward_calls, backward_s}}``."""
        return {name: self._stats[name].to_dict() for name in sorted(self._stats)}

    def reset(self) -> None:
        """Drop accumulated stats (patching state is untouched)."""
        self._stats.clear()


def format_op_table(snapshot: Dict[str, Dict[str, float]]) -> str:
    """Render a profiler snapshot as a text table sorted by total time.

    A ``total_bytes`` column appears when memory accounting was on (any
    op carries a nonzero byte total); old snapshots without the field
    render as before.
    """
    if not snapshot:
        return "(no ops profiled)"
    rows: List[tuple] = []
    for name, s in snapshot.items():
        total = s["forward_s"] + s["backward_s"]
        rows.append((total, name, s))
    rows.sort(reverse=True)
    with_bytes = any(s.get("total_bytes", 0) for _, _, s in rows)
    header = (
        f"{'op':<20s} {'calls':>8s} {'forward_s':>10s} {'bwd_calls':>10s} "
        f"{'backward_s':>11s} {'total_s':>9s}"
    )
    if with_bytes:
        header += f" {'total_bytes':>12s}"
    lines = [header]
    for total, name, s in rows:
        line = (
            f"{name:<20s} {int(s['calls']):>8d} {s['forward_s']:>10.4f} "
            f"{int(s['backward_calls']):>10d} {s['backward_s']:>11.4f} {total:>9.4f}"
        )
        if with_bytes:
            line += f" {int(s.get('total_bytes', 0)):>12d}"
        lines.append(line)
    return "\n".join(lines)
