"""Hierarchical wall-time spans: where does a slow epoch spend its time?

A :class:`SpanRecorder` accumulates wall time under slash-joined paths
that mirror the dynamic nesting of ``with recorder.span(name)`` blocks:
the trainer produces ``epoch``, ``epoch/sampling``, ``epoch/batch``,
``epoch/batch/forward`` and so on.  A parent span's total always covers
its children plus the glue between them, which is exactly the breakdown
needed to decide what a perf PR should attack.

Overhead is one ``perf_counter`` pair and a dict update per span, so
batch-level spans are safe to leave on permanently; only per-op timing
needs the separate opt-in profiler (:mod:`repro.obs.profile`).

Thread-safety: the nesting stack is thread-local (each thread sees its
own span hierarchy — what the serving layer's worker threads need) and
total accumulation is lock-protected, so concurrent spans from many
threads never garble each other's paths or lose updates.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict, List

__all__ = [
    "SpanRecorder",
    "default_recorder",
    "diff_totals",
    "format_spans",
    "span",
]


class _Span:
    """Context manager for one timed section (created by ``SpanRecorder.span``)."""

    __slots__ = ("_recorder", "_name", "_path", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._recorder._thread_stack()
        stack.append(self._name)
        self._path = "/".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        recorder = self._recorder
        with recorder._totals_lock:
            prev = recorder._totals.get(self._path)
            if prev is None:
                recorder._totals[self._path] = [elapsed, 1]
            else:
                prev[0] += elapsed
                prev[1] += 1
        recorder._thread_stack().pop()


class SpanRecorder:
    """Accumulates nested span timings keyed by slash-joined path."""

    def __init__(self):
        self._local = threading.local()
        self._totals: Dict[str, list] = {}  # path -> [seconds, count]
        self._totals_lock = threading.Lock()

    def _thread_stack(self) -> List[str]:
        """The calling thread's private nesting stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> _Span:
        """A context manager timing one section nested under the current one."""
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        return _Span(self, name)

    def timed(self, name: str) -> Callable:
        """Decorator running the wrapped function inside ``span(name)``."""

        def deco(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def totals(self) -> Dict[str, Dict[str, float]]:
        """``{path: {"seconds": s, "count": n}}`` for every span seen so far."""
        with self._totals_lock:
            return {
                path: {"seconds": seconds, "count": count}
                for path, (seconds, count) in sorted(self._totals.items())
            }

    def reset(self) -> None:
        """Drop all accumulated spans (open spans keep timing correctly)."""
        with self._totals_lock:
            self._totals.clear()


def diff_totals(
    after: Dict[str, Dict[str, float]], before: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-interval span breakdown: ``after`` minus ``before`` snapshots.

    Used by the trainer to turn cumulative run totals into per-epoch
    records.  Paths absent from ``before`` pass through unchanged; paths
    with no activity in the interval are omitted.
    """
    out: Dict[str, Dict[str, float]] = {}
    for path, stat in after.items():
        prev = before.get(path, {"seconds": 0.0, "count": 0})
        seconds = stat["seconds"] - prev["seconds"]
        count = stat["count"] - prev["count"]
        if count > 0 or seconds > 1e-12:
            out[path] = {"seconds": seconds, "count": count}
    return out


def format_spans(totals: Dict[str, Dict[str, float]]) -> str:
    """Render span totals as an indented tree with seconds and counts."""
    if not totals:
        return "(no spans recorded)"
    lines = []
    for path in sorted(totals):
        stat = totals[path]
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        lines.append(
            f"{'  ' * depth}{name:<{24 - 2 * depth}s} "
            f"{stat['seconds']:10.4f}s  x{int(stat['count'])}"
        )
    return "\n".join(lines)


#: Default recorder used by module-level :func:`span` (experiment harness,
#: efficiency timers).  The trainer uses its own per-fit instance.
_DEFAULT = SpanRecorder()


def default_recorder() -> SpanRecorder:
    """The process-wide default :class:`SpanRecorder`."""
    return _DEFAULT


def span(name: str) -> _Span:
    """Open a span on the default recorder."""
    return _DEFAULT.span(name)
