"""JSONL run records: one file per training run, one event per line.

Schema (see DESIGN.md §9)::

    {"event": "run_start", "name": ..., "seed": ..., "metric": ...,
     "config": {...}, "ts": ...}
    {"event": "epoch", "epoch": 1, "loss": ..., "grad_norm": ...,
     "seconds": ..., "lr": ..., "spans": {path: {seconds, count}}}
    ...
    {"event": "run_end", "final_loss": ..., "eval": {...},
     "op_profile": {...}, "metrics": {...}, "ts": ...}

The writer appends and flushes line by line, so a crashed run still
leaves every completed epoch on disk.  :func:`read_run` parses a file
back into a :class:`RunRecord`; :func:`format_run` renders the
``repro-tmn report`` view.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .profile import format_op_table
from .sampler import format_top_frames
from .spans import format_spans

__all__ = ["RunRecord", "RunWriter", "format_run", "read_run"]


class RunWriter:
    """Writes one training run to ``path`` as JSONL, event by event.

    Usable as a context manager; :meth:`finish` (or ``__exit__``) writes
    the ``run_end`` line and closes the file.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: str,
        config: Optional[dict] = None,
        seed: Optional[int] = None,
        metric: Optional[str] = None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "w")
        self._finished = False
        self._write(
            {
                "event": "run_start",
                "name": name,
                "seed": seed,
                "metric": metric,
                "config": config or {},
                "ts": time.time(),
            }
        )

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def write_epoch(self, record: dict) -> None:
        """Append one per-epoch record (the trainer's ``on_epoch`` payload)."""
        out = {"event": "epoch"}
        out.update(record)
        self._write(out)

    def finish(
        self,
        final_loss: Optional[float] = None,
        eval_scores: Optional[Dict[str, float]] = None,
        op_profile: Optional[dict] = None,
        metrics: Optional[dict] = None,
        sample_profile: Optional[dict] = None,
    ) -> None:
        """Write the ``run_end`` line and close the file (idempotent).

        ``sample_profile`` is a :meth:`repro.obs.sampler.StackSampler.snapshot`
        dict (aggregated wall-clock stacks from ``train --sample-hz``).
        """
        if self._finished:
            return
        self._write(
            {
                "event": "run_end",
                "final_loss": final_loss,
                "eval": eval_scores,
                "op_profile": op_profile,
                "sample_profile": sample_profile,
                "metrics": metrics,
                "ts": time.time(),
            }
        )
        self._file.close()
        self._finished = True

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()


@dataclass
class RunRecord:
    """A parsed run-record file."""

    name: str
    seed: Optional[int]
    metric: Optional[str]
    config: dict
    epochs: List[dict] = field(default_factory=list)
    final: dict = field(default_factory=dict)

    @property
    def final_loss(self) -> Optional[float]:
        """Final loss from ``run_end``, falling back to the last epoch."""
        if self.final.get("final_loss") is not None:
            return self.final["final_loss"]
        if self.epochs:
            return self.epochs[-1].get("loss")
        return None


def read_run(path: Union[str, Path]) -> RunRecord:
    """Parse a JSONL run record written by :class:`RunWriter`."""
    path = Path(path)
    record: Optional[RunRecord] = None
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: bad JSONL line: {exc}") from None
        kind = event.get("event")
        if kind == "run_start":
            record = RunRecord(
                name=event.get("name", path.stem),
                seed=event.get("seed"),
                metric=event.get("metric"),
                config=event.get("config", {}),
            )
        elif record is None:
            raise ValueError(f"{path}: first event must be run_start, got {kind!r}")
        elif kind == "epoch":
            record.epochs.append(event)
        elif kind == "run_end":
            record.final = event
    if record is None:
        raise ValueError(f"{path}: no run_start event found")
    return record


def format_run(record: RunRecord) -> str:
    """Pretty-print a run record (the ``repro-tmn report`` output)."""
    lines = [f"run: {record.name}"]
    if record.metric is not None:
        lines.append(f"metric: {record.metric}")
    if record.seed is not None:
        lines.append(f"seed: {record.seed}")
    if record.config:
        lines.append("config:")
        for key in sorted(record.config):
            lines.append(f"  {key} = {record.config[key]}")
    if record.epochs:
        lines.append("")
        lines.append(f"{'epoch':>5s} {'loss':>12s} {'grad_norm':>12s} {'seconds':>9s}")
        for e in record.epochs:
            grad = e.get("grad_norm")
            lines.append(
                f"{e.get('epoch', '?'):>5} "
                f"{_num(e.get('loss')):>12s} {_num(grad):>12s} "
                f"{_num(e.get('seconds'), '.2f'):>9s}"
            )
        last_spans = record.epochs[-1].get("spans")
        if last_spans:
            lines.append("")
            lines.append("last-epoch span breakdown:")
            lines.append(format_spans(last_spans))
    if record.final.get("eval"):
        lines.append("")
        lines.append("eval:")
        for key, value in record.final["eval"].items():
            lines.append(f"  {key}: {_num(value)}")
    if record.final.get("final_loss") is not None:
        lines.append(f"final loss: {_num(record.final['final_loss'])}")
    totals = _aggregate_spans(record.epochs)
    if totals:
        lines.append("")
        lines.append("run span totals (all epochs):")
        lines.append(format_spans(totals))
    if record.final.get("metrics"):
        metric_lines = _format_metrics(record.final["metrics"])
        if metric_lines:
            lines.append("")
            lines.append("metrics:")
            lines.extend(metric_lines)
    sample_profile = record.final.get("sample_profile")
    op_profile = record.final.get("op_profile")
    if sample_profile or op_profile:
        # One unified section for both profiling views: the wall-clock
        # sampler (where time went, any code) and the autograd op
        # profiler (which ops, forward vs backward).
        lines.append("")
        lines.append("hot paths:")
        if sample_profile:
            stacks = sample_profile.get("stacks", {})
            lines.append(
                f"  sampled stacks ({int(sample_profile.get('samples', 0))} "
                f"sample(s) at {sample_profile.get('hz', 0.0):g} hz):"
            )
            for line in format_top_frames(stacks).splitlines():
                lines.append(f"  {line}")
        if op_profile:
            lines.append("  op profile:")
            for line in format_op_table(op_profile).splitlines():
                lines.append(f"  {line}")
    return "\n".join(lines)


def _aggregate_spans(epochs: List[dict]) -> Dict[str, Dict[str, float]]:
    """Sum per-epoch span breakdowns into whole-run totals."""
    totals: Dict[str, Dict[str, float]] = {}
    for epoch in epochs:
        for path, stat in (epoch.get("spans") or {}).items():
            agg = totals.setdefault(path, {"seconds": 0.0, "count": 0})
            agg["seconds"] += stat.get("seconds", 0.0)
            agg["count"] += stat.get("count", 0)
    return totals


def _format_metrics(metrics: Dict[str, dict]) -> List[str]:
    """Render a registry snapshot: serve-side derived rates first, then all.

    Serve-specific derivations (cache hit rate, degraded/dropped counts,
    batch-size distribution) are surfaced explicitly because they are
    the numbers the serving SLOs are stated over; every other instrument
    renders generically by kind.
    """
    lines: List[str] = []

    def value_of(name: str) -> Optional[float]:
        data = metrics.get(name)
        return data.get("value") if isinstance(data, dict) else None

    hits = value_of("serve.cache.hits")
    misses = value_of("serve.cache.misses")
    if hits is not None or misses is not None:
        hits = hits or 0.0
        misses = misses or 0.0
        total = hits + misses
        rate = hits / total if total else 0.0
        lines.append(
            f"  serve cache: {int(hits)} hit(s) / {int(total)} lookup(s) "
            f"(hit rate {rate:.1%})"
        )
    degraded = value_of("serve.query.degraded")
    requests = value_of("serve.query.requests")
    if requests is not None:
        lines.append(
            f"  serve queries: {int(requests)} request(s), "
            f"{int(degraded or 0)} degraded, "
            f"{int(value_of('serve.query.deadline_missed') or 0)} deadline miss(es)"
        )
    batch = metrics.get("serve.batch.size")
    if isinstance(batch, dict) and batch.get("count"):
        lines.append(
            f"  serve batches: {int(batch['count'])} flush(es), size "
            f"mean {batch.get('mean', 0.0):.1f} "
            f"p50 {batch.get('p50', 0.0):.0f} max {batch.get('max', 0.0):.0f}"
        )
    for name in sorted(metrics):
        data = metrics[name]
        if not isinstance(data, dict):
            continue
        kind = data.get("type")
        if kind == "counter":
            lines.append(f"  {name} = {_num(data.get('value'), 'g')}")
        elif kind == "gauge" and data.get("value") is not None:
            lines.append(f"  {name} = {_num(data.get('value'), 'g')}")
        elif kind == "histogram" and data.get("count"):
            lines.append(
                f"  {name}: n={int(data['count'])} mean={data.get('mean', 0.0):.6g} "
                f"p50={data.get('p50', 0.0):.6g} p99={data.get('p99', 0.0):.6g}"
            )
    return lines


def _num(value, spec: str = ".6f") -> str:
    if value is None:
        return "-"
    return format(float(value), spec)
