"""Request-scoped tracing: the causal story of one query or one epoch.

:mod:`repro.obs.spans` answers "where does the *aggregate* time go";
this module answers "where did *this request's* time go".  A
:class:`Trace` carries a process-unique id and an ordered list of span
events — name, wall-clock start/end, ``key=value`` attributes, recording
thread — forming a parent/child tree rooted at the trace itself.  The
serving path opens one trace per ``topk`` request, the trainer one per
epoch.

Cross-thread handoff is explicit: when work hops threads (a serve
request enters the :class:`~repro.serve.batcher.MicroBatcher` queue and
is finished by the flush thread), the submitting side captures a
:class:`Handoff` token via :meth:`Trace.handoff`.  The consuming thread
either stamps spans directly onto the token (:meth:`Handoff.record` —
used for the shared batched forward) or re-binds the trace as *current*
for a block (:meth:`Handoff.resume`), so queue-wait and forward time are
attributed to the request that paid for them, not to the flush thread.

Cross-*process* handoff builds on the same idea with an explicit wire
format: the dispatching side captures a :class:`TraceContext` (trace id
+ parent span id + clock offset) and ships it inside the request
message; the worker process opens a detached subtree via
:func:`begin_remote`, records its own spans (reusing :class:`Handoff`
for its local queue hops), serialises them with :func:`export_subtree`
and returns them alongside the answer; the coordinator stitches the
subtree under the request's own span with :func:`graft_subtree` —
remapping span ids, applying the clock offset, sanitising non-finite
attribute values and truncating oversized subtrees into
``dropped_events``.  Grafted events carry the owning shard id so the
renderer can show which process a span ran in (``s3:queue-wait``).
Timestamp comparability relies on ``time.perf_counter`` being
CLOCK_MONOTONIC shared across processes (true on Linux); the context's
``clock_offset`` is the explicit correction knob when it is not (see
DESIGN.md §17 for the caveats).

Finished traces land in a bounded in-memory ring (newest evicts oldest)
and, when configured, are mirrored to a JSONL trace log, one trace per
line.  ``repro-tmn trace`` renders the slowest recent traces as a
critical-path tree (see :func:`format_trace`).

Thread-safety: the *current trace/span* binding is thread-local; event
recording appends under a per-trace lock; the ring is guarded by the
tracer lock.  Recording after a trace has finished (a flush thread
completing work for a request that already timed out and returned
degraded) is dropped and counted, never raises.

Determinism: every timestamp comes from the tracer's injectable clock
(default ``time.perf_counter``), and trace/span ids are sequential
integers, so tests with a fake clock get byte-identical render output.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "Handoff",
    "Trace",
    "TraceContext",
    "TraceSpan",
    "Tracer",
    "annotate",
    "begin_remote",
    "capture_context",
    "current_trace",
    "export_subtree",
    "format_trace",
    "get_tracer",
    "graft_subtree",
    "read_trace_log",
    "trace_span",
]

#: Root span id: the trace itself acts as the parent of top-level spans.
ROOT = 0


@dataclass(frozen=True)
class TraceContext:
    """Serializable cross-process trace context: what ships with a request.

    The process-boundary analogue of :class:`Handoff`: the dispatching
    side captures one (:func:`capture_context`), serialises it into the
    request message (:meth:`to_wire`), and the worker rebuilds it
    (:meth:`from_wire`) to anchor its own span subtree.

    Attributes
    ----------
    trace_id:
        Id of the originating trace; :func:`graft_subtree` refuses a
        subtree whose context named a different trace.
    parent_span_id:
        Span id on the origin side the remote work is causally under
        (informational — the coordinator picks the actual graft point,
        normally the per-shard gather span).
    clock_offset:
        Seconds to *add* to remote timestamps to land on the origin
        clock.  Defaults to 0.0: ``time.perf_counter`` is shared
        CLOCK_MONOTONIC across processes on Linux.
    """

    trace_id: str
    parent_span_id: int = ROOT
    clock_offset: float = 0.0

    def to_wire(self) -> dict:
        """Plain-dict form safe to pickle into a request message."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": int(self.parent_span_id),
            "clock_offset": float(self.clock_offset),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "TraceContext":
        """Rebuild a context from its :meth:`to_wire` dict."""
        return cls(
            trace_id=str(data.get("trace_id", "t?")),
            parent_span_id=int(data.get("parent_span_id", ROOT)),
            clock_offset=float(data.get("clock_offset", 0.0)),
        )


class TraceSpan:
    """One *open* span: context manager handed out by :meth:`Trace.span`.

    Attributes may be attached while the span is open via :meth:`set`;
    the finished event is recorded on ``__exit__``.
    """

    __slots__ = ("_trace", "_tracer", "span_id", "parent_id", "name", "attrs", "_start")

    def __init__(self, trace: "Trace", tracer: "Tracer", name: str, attrs: dict):
        self._trace = trace
        self._tracer = tracer
        self.name = name
        self.attrs = dict(attrs)
        self.span_id: Optional[int] = None
        self.parent_id: int = ROOT
        self._start: float = 0.0

    def set(self, **attrs) -> "TraceSpan":
        """Attach ``key=value`` attributes to this span; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "TraceSpan":
        self.span_id = self._trace._next_span_id()
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack and stack[-1]._trace is self._trace else ROOT
        self._start = self._tracer._clock()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._trace._record(
            self.span_id, self.parent_id, self.name, self._start, end, self.attrs
        )


class Handoff:
    """A cross-thread continuation token for one trace.

    Captured on the submitting thread (``trace.handoff()``); the thread
    that eventually performs the work uses it to attribute time back to
    the originating request.
    """

    __slots__ = ("trace", "parent_id", "created_at", "_tracer")

    def __init__(self, trace: "Trace", parent_id: int, created_at: float, tracer: "Tracer"):
        self.trace = trace
        self.parent_id = parent_id
        self.created_at = created_at
        self._tracer = tracer

    def record(self, name: str, start: float, end: float, **attrs) -> None:
        """Stamp one finished span (explicit timestamps) under the handoff point.

        Used when the consuming thread did shared work (a batched
        forward) whose interval applies to several traces at once.
        """
        self.trace._record(self.trace._next_span_id(), self.parent_id, name, start, end, attrs)

    def record_wait(self, name: str = "queue-wait", end: Optional[float] = None, **attrs) -> None:
        """Stamp the span from handoff creation until ``end`` (default: now).

        This is the queue-wait attribution: the interval between the
        producer enqueuing the work and the consumer starting on it.
        """
        if end is None:
            end = self._tracer._clock()
        self.record(name, self.created_at, end, **attrs)

    def resume(self, wait_name: Optional[str] = "queue-wait") -> "_Resumed":
        """Context manager: bind the trace current on *this* thread.

        On entry records the wait span (``wait_name``, creation → now;
        pass ``None`` to skip) and pushes the handoff point as the
        current span, so nested ``span()`` calls land under it.
        """
        return _Resumed(self, wait_name)


class _Resumed:
    """Context manager returned by :meth:`Handoff.resume`."""

    __slots__ = ("_handoff", "_wait_name", "_anchor")

    def __init__(self, handoff: Handoff, wait_name: Optional[str]):
        self._handoff = handoff
        self._wait_name = wait_name

    def __enter__(self) -> "Trace":
        handoff = self._handoff
        if self._wait_name is not None:
            handoff.record_wait(self._wait_name)
        # Push an anchor entry so nested spans parent to the handoff point.
        anchor = TraceSpan(handoff.trace, handoff._tracer, "<resumed>", {})
        anchor.span_id = handoff.parent_id
        self._anchor = anchor
        handoff._tracer._stack().append(anchor)
        return handoff.trace

    def __exit__(self, *exc) -> None:
        stack = self._handoff._tracer._stack()
        if stack and stack[-1] is self._anchor:
            stack.pop()


class Trace:
    """One request's (or epoch's) causal record: id, attrs, span events.

    Span events are plain dicts ``{"id", "parent", "name", "start",
    "end", "thread", "attrs"}``; the event list is bounded by
    ``max_events`` (excess increments :attr:`dropped_events`).
    """

    def __init__(
        self,
        trace_id: str,
        name: str,
        tracer: "Tracer",
        start: float,
        attrs: Optional[dict] = None,
        max_events: int = 4096,
    ):
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.events: List[dict] = []
        self.dropped_events = 0
        self.max_events = max_events
        self._tracer = tracer
        self._lock = threading.Lock()
        self._span_counter = ROOT

    # -- recording ------------------------------------------------------
    def _next_span_id(self) -> int:
        with self._lock:
            self._span_counter += 1
            return self._span_counter

    def _record(
        self, span_id: int, parent_id: int, name: str, start: float, end: float, attrs: dict
    ) -> None:
        event = {
            "id": span_id,
            "parent": parent_id,
            "name": name,
            "start": start,
            "end": end,
            "thread": threading.current_thread().name,
            "attrs": dict(attrs),
        }
        with self._lock:
            if self.end is not None or len(self.events) >= self.max_events:
                # Late (trace already finished) or over budget: drop, count.
                self.dropped_events += 1
                return
            self.events.append(event)

    def span(self, name: str, **attrs) -> TraceSpan:
        """A child span context manager nested under the current span."""
        return TraceSpan(self, self._tracer, name, attrs)

    def handoff(self) -> Handoff:
        """Capture a cross-thread continuation token at the current span."""
        stack = self._tracer._stack()
        parent = stack[-1].span_id if stack and stack[-1]._trace is self else ROOT
        return Handoff(self, parent, self._tracer._clock(), self._tracer)

    def context(self, clock_offset: float = 0.0) -> TraceContext:
        """Capture a cross-process :class:`TraceContext` at the current span."""
        stack = self._tracer._stack()
        parent = stack[-1].span_id if stack and stack[-1]._trace is self else ROOT
        return TraceContext(self.trace_id, parent, clock_offset)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> int:
        """Record one finished span with explicit timestamps; returns its id.

        ``parent_id`` defaults to the calling thread's current span of
        this trace (the same parenting rule as :meth:`span`).  Used by
        the scatter-gather coordinator, which only knows a shard span's
        interval after the gather resolved and needs the id back to
        graft the worker's subtree under it.
        """
        if parent_id is None:
            stack = self._tracer._stack()
            parent_id = (
                stack[-1].span_id if stack and stack[-1]._trace is self else ROOT
            )
        span_id = self._next_span_id()
        self._record(span_id, parent_id, name, start, end, attrs)
        return span_id

    def set(self, **attrs) -> "Trace":
        """Attach ``key=value`` attributes to the trace root; returns self."""
        self.attrs.update(attrs)
        return self

    # -- reading --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Trace wall time in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def children(self, parent_id: int = ROOT) -> List[dict]:
        """Finished child events of ``parent_id``, ordered by start time."""
        with self._lock:
            kids = [e for e in self.events if e["parent"] == parent_id]
        return sorted(kids, key=lambda e: (e["start"], e["id"]))

    def to_dict(self) -> dict:
        """JSON-ready form (what the JSONL trace log stores per line)."""
        with self._lock:
            events = [dict(e) for e in self.events]
            dropped = self.dropped_events
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "dropped_events": dropped,
            "events": events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a finished trace (e.g. read back from a trace log)."""
        trace = cls(
            trace_id=str(data.get("trace_id", "t?")),
            name=str(data.get("name", "?")),
            tracer=get_tracer(),
            start=float(data.get("start", 0.0)),
            attrs=data.get("attrs") or {},
        )
        trace.end = data.get("end")
        trace.events = [dict(e) for e in data.get("events", [])]
        trace.dropped_events = int(data.get("dropped_events", 0))
        if trace.events:
            trace._span_counter = max(e["id"] for e in trace.events)
        return trace


class _TraceContext:
    """Context manager opening one root trace on the current thread."""

    __slots__ = ("_tracer", "_name", "_attrs", "_trace", "_anchor")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Trace:
        tracer = self._tracer
        self._trace = tracer._new_trace(self._name, self._attrs)
        anchor = TraceSpan(self._trace, tracer, "<root>", {})
        anchor.span_id = ROOT
        self._anchor = anchor
        tracer._stack().append(anchor)
        tracer._push_phase(self._name)
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        stack = tracer._stack()
        # Pop back to (and including) our anchor even if inner spans leaked.
        while stack:
            top = stack.pop()
            if top is self._anchor:
                break
        tracer._pop_phase()
        if exc_type is not None:
            self._trace.attrs.setdefault("error", exc_type.__name__)
        tracer._finish(self._trace)


class _NullSpan:
    """No-op stand-in returned by :func:`trace_span` with no active trace."""

    __slots__ = ()
    #: Inert id so graft call-sites can read ``span.span_id`` unconditionally.
    span_id = ROOT

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attributes (no trace is recording)."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _NullTrace:
    """Inert :class:`Trace` stand-in handed out while the tracer is disabled.

    Presents the full recording surface (``set`` / ``span`` /
    ``record_span`` / ``handoff`` / ``context``) as no-ops so
    instrumented code paths — including the never-raises serving
    contract — run unchanged with tracing off.  It is never bound as
    *current* (the span stack stays empty), so :func:`current_trace`
    returns None and downstream handoff capture short-circuits too.
    """

    __slots__ = ()
    trace_id = "t-disabled"
    name = "<disabled>"

    def set(self, **attrs) -> "_NullTrace":
        """Ignore attributes (tracing is disabled)."""
        return self

    def span(self, name: str, **attrs) -> _NullSpan:
        """A no-op span context manager."""
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> int:
        """Record nothing; returns :data:`ROOT` as the placeholder id."""
        return ROOT

    def handoff(self) -> "_NullHandoff":
        """A no-op cross-thread continuation token."""
        return _NULL_HANDOFF

    def context(self, clock_offset: float = 0.0) -> None:
        """No cross-process context while disabled (callers ship None)."""
        return None


class _NullHandoff:
    """No-op :class:`Handoff` twin returned by :meth:`_NullTrace.handoff`."""

    __slots__ = ()

    def record(self, name: str, start: float, end: float, **attrs) -> None:
        """Record nothing."""
        return None

    def record_wait(self, name: str = "queue-wait", end: Optional[float] = None, **attrs) -> None:
        """Record nothing."""
        return None

    def resume(self, wait_name: Optional[str] = "queue-wait") -> "_NullResumed":
        """A context manager yielding the inert trace."""
        return _NULL_RESUMED


class _NullResumed:
    """Context manager returned by :meth:`_NullHandoff.resume`."""

    __slots__ = ()

    def __enter__(self) -> _NullTrace:
        return _NULL_TRACE

    def __exit__(self, *exc) -> None:
        return None


class _NullTraceContext:
    """Context manager returned by :meth:`Tracer.trace` while disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullTrace:
        return _NULL_TRACE

    def __exit__(self, *exc) -> None:
        return None


_NULL_TRACE = _NullTrace()
_NULL_HANDOFF = _NullHandoff()
_NULL_RESUMED = _NullResumed()
_NULL_TRACE_CONTEXT = _NullTraceContext()


class Tracer:
    """Creates traces, tracks the per-thread current span, keeps the ring.

    Parameters
    ----------
    ring_size:
        How many finished traces the in-memory ring retains (newest wins).
    clock:
        Injectable time source; tests pass a fake for deterministic output.
    log_path:
        Optional JSONL trace log (one finished trace per line); also
        settable later via :meth:`configure`.
    """

    def __init__(
        self,
        ring_size: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        log_path: Union[str, Path, None] = None,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ring: List[Trace] = []
        self._ring_size = ring_size
        self._counter = 0
        self._log_file = None
        self._enabled = True
        #: thread ident -> stack of open root-trace names; the innermost
        #: one is that thread's current *phase* (read cross-thread by the
        #: wall-clock sampler to attribute samples to serve.topk etc.).
        self._phases: Dict[int, List[str]] = {}
        if log_path is not None:
            self.configure(log_path=log_path)

    # -- configuration --------------------------------------------------
    def configure(
        self, log_path: Union[str, Path, None] = None, ring_size: Optional[int] = None
    ) -> None:
        """Re-point the JSONL trace log (None closes it) / resize the ring."""
        with self._lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None
            if log_path is not None:
                path = Path(log_path)
                path.parent.mkdir(parents=True, exist_ok=True)
                self._log_file = open(path, "w")
            if ring_size is not None:
                self._ring_size = ring_size
                del self._ring[: max(0, len(self._ring) - ring_size)]

    # -- internals ------------------------------------------------------
    def _push_phase(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._phases.setdefault(ident, []).append(name)

    def _pop_phase(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            names = self._phases.get(ident)
            if names:
                names.pop()
            if not names:
                self._phases.pop(ident, None)

    def _stack(self) -> List[TraceSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_trace(self, name: str, attrs: dict) -> Trace:
        with self._lock:
            self._counter += 1
            trace_id = f"t{self._counter:06d}"
        return Trace(trace_id, name, self, self._clock(), attrs)

    def _finish(self, trace: Trace) -> None:
        end = self._clock()
        with trace._lock:
            trace.end = end
        with self._lock:
            self._ring.append(trace)
            if len(self._ring) > self._ring_size:
                del self._ring[: len(self._ring) - self._ring_size]
            if self._log_file is not None:
                self._log_file.write(json.dumps(trace.to_dict()) + "\n")
                self._log_file.flush()

    # -- public API -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether :meth:`trace` opens real traces (True by default)."""
        # Lock-free bool read: GIL-atomic, and a stale read only means one
        # extra (or one missed) trace around the toggle instant.
        return self._enabled  # lint: allow(C002)

    def set_enabled(self, enabled: bool) -> bool:
        """Toggle tracing; returns the previous state.

        While disabled, :meth:`trace` hands out an inert trace with the
        full recording surface as no-ops — instrumented code runs
        unchanged, nothing lands in the ring or the log.  Already-open
        real traces are unaffected.  This is how the sharded bench
        measures trace-collection overhead (qps with tracing on vs off).
        """
        with self._lock:
            previous = self._enabled
            self._enabled = bool(enabled)
        return previous

    def trace(self, name: str, **attrs) -> Union[_TraceContext, _NullTraceContext]:
        """Open a new root trace bound to the calling thread for the block."""
        if not self._enabled:  # lint: allow(C002)
            return _NULL_TRACE_CONTEXT
        return _TraceContext(self, name, attrs)

    def current(self) -> Optional[Trace]:
        """The trace bound to the calling thread, or None."""
        stack = self._stack()
        return stack[-1]._trace if stack else None

    def span(self, name: str, **attrs):
        """Child span of the current trace, or a no-op when none is active."""
        trace = self.current()
        if trace is None:
            return _NULL_SPAN
        return trace.span(name, **attrs)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (or the trace root).

        A no-op when no trace is active, so library code can annotate
        unconditionally.
        """
        stack = self._stack()
        if not stack:
            return
        top = stack[-1]
        if top.span_id == ROOT or top.name in ("<root>", "<resumed>"):
            top._trace.set(**attrs)
        else:
            top.set(**attrs)

    def active_phases(self) -> Dict[int, str]:
        """Innermost open root-trace name per thread ident.

        This is the cross-thread join point for the wall-clock sampler
        (:mod:`repro.obs.sampler`): a sampled stack is attributed to the
        phase (``serve.topk``, ``train.epoch``, ...) its thread is
        currently serving.  Threads with no open root trace are absent.
        """
        with self._lock:
            return {ident: names[-1] for ident, names in self._phases.items() if names}

    def recent(self, n: Optional[int] = None, name: Optional[str] = None) -> List[Trace]:
        """The most recent finished traces, oldest→newest, newest last.

        ``name`` filters by trace name; ``n`` keeps only the last n after
        filtering.
        """
        with self._lock:
            traces = list(self._ring)
        if name is not None:
            traces = [t for t in traces if t.name == name]
        if n is not None:
            traces = traces[-n:]
        return traces

    def reset(self) -> None:
        """Drop the ring and restart trace-id numbering (tests)."""
        with self._lock:
            self._ring.clear()
            self._counter = 0


#: Process-wide default tracer used by the instrumented subsystems.
_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return _DEFAULT


def current_trace() -> Optional[Trace]:
    """The calling thread's active trace on the default tracer, or None."""
    return _DEFAULT.current()


def trace_span(name: str, **attrs):
    """Child span of the current default-tracer trace (no-op without one)."""
    return _DEFAULT.span(name, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span on the default tracer."""
    _DEFAULT.annotate(**attrs)


def read_trace_log(path: Union[str, Path]) -> List[Trace]:
    """Parse a JSONL trace log back into finished :class:`Trace` objects."""
    traces: List[Trace] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            traces.append(Trace.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from None
    return traces


# ----------------------------------------------------------------------
# Cross-process stitching: capture -> remote subtree -> export -> graft.


def capture_context(
    tracer: Optional[Tracer] = None, clock_offset: float = 0.0
) -> Optional[TraceContext]:
    """The calling thread's :class:`TraceContext`, or None when not tracing.

    The dispatch-side half of cross-process tracing: serialise the
    result (``ctx.to_wire()``) into the request message.  Returns None
    when no trace is active (or tracing is disabled) so dispatch sites
    can ship ``None`` and workers skip subtree recording entirely.
    """
    tracer = tracer if tracer is not None else _DEFAULT
    trace = tracer.current()
    if trace is None:
        return None
    return trace.context(clock_offset)


def begin_remote(
    ctx: Optional[TraceContext],
    name: str = "remote",
    tracer: Optional[Tracer] = None,
    start: Optional[float] = None,
) -> Union[Trace, _NullTrace]:
    """Open a *detached* worker-side subtree for one cross-process request.

    The returned :class:`Trace` shares the originating trace's id but is
    never registered in any ring or log — it exists only to collect this
    request's worker-side spans (via :meth:`Trace.span`,
    :meth:`Trace.record_span` or the :class:`Handoff` machinery) until
    :func:`export_subtree` serialises them for the response message.

    ``ctx=None`` (an untraced request) returns the inert null trace, so
    worker handlers instrument unconditionally and pay nothing when the
    coordinator was not tracing.
    """
    if ctx is None:
        return _NULL_TRACE
    tracer = tracer if tracer is not None else _DEFAULT
    start = start if start is not None else tracer._clock()
    return Trace(ctx.trace_id, name, tracer, start)


def export_subtree(trace: Trace) -> dict:
    """Serialise a detached subtree's events for the response message.

    The inverse half is :func:`graft_subtree` on the coordinator; the
    payload is a plain dict (picklable over an ``mp.Queue``) carrying
    the trace id (so a mismatched graft can be refused), the raw span
    events with worker-local ids, and the worker-side dropped count.
    """
    with trace._lock:
        events = [dict(e) for e in trace.events]
        dropped = trace.dropped_events
    return {"trace_id": trace.trace_id, "events": events, "dropped": dropped}


def _sanitize_attrs(attrs: dict) -> dict:
    """Attrs with non-finite floats replaced by their repr strings.

    A worker can legitimately compute ``nan``/``inf`` attribute values
    (an empty-shard mean, a div-by-zero rate); strict JSON cannot carry
    them, so the graft turns them into ``"nan"``/``"inf"`` strings
    rather than poisoning the whole trace-log line.
    """
    clean: dict = {}
    for key, value in attrs.items():
        if isinstance(value, float) and not math.isfinite(value):
            clean[str(key)] = repr(value)
        else:
            clean[str(key)] = value
    return clean


def graft_subtree(
    trace: Trace,
    parent_id: int,
    payload: object,
    clock_offset: float = 0.0,
    shard: Optional[int] = None,
    max_spans: int = 256,
) -> int:
    """Stitch an exported worker subtree under ``parent_id``; returns spans kept.

    The coordinator-side half of cross-process tracing.  Worker-local
    span ids are remapped onto this trace's sequence (id order is
    preserved, so remote parents stay below their children); remote
    parents outside the subtree re-anchor to ``parent_id``;
    ``clock_offset`` shifts every remote timestamp onto the origin
    clock; attrs are sanitised via non-finite → repr strings; every
    grafted event is tagged with the owning ``shard`` id (rendered as
    ``s<shard>:<name>``).  Oversized subtrees are truncated to
    ``max_spans`` (lowest ids — the outermost spans — survive) and the
    excess, the worker-side drops, and any malformed events are counted
    into :attr:`Trace.dropped_events`.  A payload naming a different
    trace id grafts nothing.  Never raises on malformed payloads: the
    serving path calls this inside the never-raises contract.
    """
    if not isinstance(payload, dict):
        return 0
    events = payload.get("events")
    events = list(events) if isinstance(events, (list, tuple)) else []
    dropped = 0
    try:
        dropped += int(payload.get("dropped", 0) or 0)
    except (TypeError, ValueError):
        dropped += 1
    if str(payload.get("trace_id")) != trace.trace_id:
        # Wrong request's subtree: refuse the graft, surface the loss.
        with trace._lock:
            trace.dropped_events += len(events) + dropped
        return 0
    def _sort_id(event: object) -> int:
        # Defensive: a malformed event must not break the sort (the id
        # could be anything picklable); it is dropped in the loop below.
        try:
            return int(event["id"])  # type: ignore[index]
        except (TypeError, ValueError, KeyError):
            return 0

    events.sort(key=_sort_id)
    if len(events) > max_spans:
        dropped += len(events) - max_spans
        events = events[:max_spans]
    id_map: Dict[int, int] = {}
    grafted = 0
    for event in events:
        try:
            old_id = int(event["id"])
            old_parent = int(event.get("parent", ROOT))
            start = float(event.get("start", 0.0)) + clock_offset
            end = float(event.get("end", start - clock_offset)) + clock_offset
            name = str(event.get("name", "?"))
            attrs = _sanitize_attrs(dict(event.get("attrs") or {}))
            thread = str(event.get("thread", "remote"))
        except (TypeError, ValueError, KeyError):
            dropped += 1
            continue
        new_id = trace._next_span_id()
        id_map[old_id] = new_id
        out = {
            "id": new_id,
            "parent": id_map.get(old_parent, parent_id),
            "name": name,
            "start": start,
            "end": end,
            "thread": thread,
            "attrs": attrs,
        }
        if shard is not None:
            out["shard"] = int(shard)
        with trace._lock:
            if trace.end is not None or len(trace.events) >= trace.max_events:
                dropped += 1
                continue
            trace.events.append(out)
        grafted += 1
    if dropped:
        with trace._lock:
            trace.dropped_events += dropped
    return grafted


# ----------------------------------------------------------------------
# Rendering: critical-path trees for `repro-tmn trace`.


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def _critical_child(children: Sequence[dict]) -> Optional[int]:
    """Index of the longest child span (the critical hop), or None."""
    if not children:
        return None
    durations = [e["end"] - e["start"] for e in children]
    return max(range(len(children)), key=lambda i: durations[i])


def format_trace(trace: Trace, deadline_s: Optional[float] = None) -> str:
    """Render one trace as an indented tree with a ``*``-marked critical path.

    Each line shows the span's duration, its share of the trace wall
    time, and — when the trace carries a ``deadline_s`` attribute (or
    one is passed explicitly) — its share of the deadline budget.  The
    critical path (longest child at each level, i.e. who the parent
    spent most of its time waiting on) is marked with ``*``.
    """
    total = trace.duration
    if deadline_s is None:
        raw = trace.attrs.get("deadline_s")
        deadline_s = float(raw) if isinstance(raw, (int, float)) else None
    header = (
        f"trace {trace.trace_id} {trace.name}  {total * 1e3:.2f}ms"
        f"{_fmt_attrs(trace.attrs)}"
    )
    lines = [header]
    if trace.dropped_events:
        lines.append(f"  ({trace.dropped_events} event(s) dropped: over budget or late)")

    def emit(parent_id: int, depth: int, on_critical: bool) -> None:
        children = trace.children(parent_id)
        critical = _critical_child(children)
        for i, event in enumerate(children):
            seconds = event["end"] - event["start"]
            share = seconds / total if total > 1e-12 else 0.0
            mark = "*" if (on_critical and i == critical) else " "
            budget = (
                f"  {seconds / deadline_s * 100:5.1f}% of deadline"
                if deadline_s
                else ""
            )
            # Process-crossing spans carry the shard id they ran on.
            label = (
                f"s{event['shard']}:{event['name']}"
                if "shard" in event
                else event["name"]
            )
            lines.append(
                f"{mark} {'  ' * depth}{label:<{max(24 - 2 * depth, 1)}s}"
                f"{seconds * 1e3:9.2f}ms {share * 100:5.1f}%"
                f"{budget}{_fmt_attrs(event['attrs'])}"
            )
            emit(event["id"], depth + 1, on_critical and i == critical)

    emit(ROOT, 1, True)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)
