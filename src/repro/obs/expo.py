"""Prometheus-style text exposition over the metrics registry.

Renders the numeric state of a :class:`~repro.obs.metrics.MetricsRegistry`
(or a serialised ``snapshot()`` of one, e.g. the ``metrics`` field of a
JSONL run record) in the Prometheus text format version 0.0.4: one
``# TYPE`` header per metric family, counters suffixed ``_total``,
histograms as summaries with ``quantile`` labels plus ``_sum``/``_count``
series.  Span totals from :class:`~repro.obs.spans.SpanRecorder` are
exposed as two counter families labelled by span path.

The renderer is pure (dict in, text out) so output is deterministic for
a fixed snapshot — the property the exposition snapshot tests pin down.
``repro-tmn metrics`` is the CLI front-end.

Two fleet-telemetry extensions on top of the plain renderer:

- **Scrape hooks**: callables registered via :func:`register_scrape_hook`
  run before a *live* registry is rendered (snapshot-dict input stays
  pure).  The sharded server registers a TTL-throttled worker-registry
  refresh here, so ``serve.shard.N.*`` mirrors track live workers on
  every scrape instead of only moving when someone calls ``stats()``.
  Hooks must never break a scrape: exceptions are swallowed and counted.
- **Shard label dimension**: instrument names shaped
  ``serve.shard.<N>.<rest>`` render as one Prometheus family
  ``<prefix>_serve_shard_<rest>{shard="N"}`` instead of N distinct
  per-shard families, so fleet dashboards can aggregate across shards.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional, Tuple, Union

from .log import get_logger
from .metrics import MetricsRegistry, get_registry

__all__ = [
    "metric_name",
    "register_scrape_hook",
    "render_exposition",
    "run_scrape_hooks",
    "unregister_scrape_hook",
]

_LOG = get_logger("repro.obs.expo")

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: Histogram quantiles exposed per summary family.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))

#: Instrument names carrying a shard dimension: ``serve.shard.<N>.<rest>``.
_SHARD_SERIES = re.compile(r"^serve\.shard\.(\d+)\.(.+)$")

# Scrape hooks run unlabelled-lock-free: a plain mutex guards only the
# list itself; hooks are invoked outside it so a hook may take arbitrary
# serving-layer locks without ordering against this one.
_HOOKS_LOCK = threading.Lock()
_SCRAPE_HOOKS: List[Callable[[], None]] = []


def register_scrape_hook(hook: Callable[[], None]) -> None:
    """Run ``hook()`` before every live-registry exposition render.

    Duplicate registrations collapse to one (idempotent), so re-entrant
    construction paths cannot stack refreshes.
    """
    with _HOOKS_LOCK:
        if hook not in _SCRAPE_HOOKS:
            _SCRAPE_HOOKS.append(hook)


def unregister_scrape_hook(hook: Callable[[], None]) -> None:
    """Remove a scrape hook; unknown hooks are ignored (idempotent)."""
    with _HOOKS_LOCK:
        if hook in _SCRAPE_HOOKS:
            _SCRAPE_HOOKS.remove(hook)


def run_scrape_hooks() -> int:
    """Invoke every registered scrape hook; returns how many succeeded.

    A failing hook is logged and skipped — a worker refresh that races a
    server shutdown must cost one stale scrape, never the scrape itself.
    """
    with _HOOKS_LOCK:
        hooks = list(_SCRAPE_HOOKS)
    ok = 0
    for hook in hooks:
        try:
            hook()
            ok += 1
        except Exception as exc:  # a scrape must survive any hook fault
            _LOG.warning("scrape-hook-failed", error=type(exc).__name__)
    return ok


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a dotted instrument name into a Prometheus metric name.

    ``serve.cache.hits`` → ``repro_serve_cache_hits``; characters outside
    ``[a-zA-Z0-9_]`` become underscores.
    """
    flat = _INVALID.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    # Integral values render without a trailing .0 (Prometheus style).
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _labelset(
    labels: Tuple[Tuple[str, str], ...], extra: Tuple[Tuple[str, str], ...] = ()
) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _render_series(
    lines: List[str],
    base: str,
    kind: Optional[str],
    data: dict,
    header: bool,
    labels: Tuple[Tuple[str, str], ...] = (),
) -> bool:
    """Append one instrument's series; returns True if anything rendered.

    ``labels`` (e.g. ``(("shard", "3"),)``) apply to every emitted
    sample; ``header`` controls the one-per-family ``# TYPE`` line so
    labelled series from many instruments can share a family.
    """
    lset = _labelset(labels)
    if kind == "counter":
        if header:
            lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total{lset} {_fmt(data.get('value', 0.0))}")
        return True
    if kind == "gauge":
        value = data.get("value")
        if value is None:
            return False  # never set: nothing meaningful to expose
        if header:
            lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base}{lset} {_fmt(value)}")
        return True
    if kind == "histogram":
        if header:
            lines.append(f"# TYPE {base} summary")
        count = data.get("count", 0)
        if count:
            for quantile, key in _QUANTILES:
                if key in data:
                    qset = _labelset(labels, (("quantile", quantile),))
                    lines.append(f"{base}{qset} {_fmt(data[key])}")
        lines.append(f"{base}_sum{lset} {_fmt(data.get('total', 0.0))}")
        lines.append(f"{base}_count{lset} {_fmt(count)}")
        return True
    return False


def render_exposition(
    metrics: Union[MetricsRegistry, Dict[str, dict], None] = None,
    span_totals: Optional[Dict[str, Dict[str, float]]] = None,
    prefix: str = "repro",
) -> str:
    """Render metrics (and optional span totals) as Prometheus text.

    Parameters
    ----------
    metrics:
        A live registry or an already-serialised ``snapshot()`` dict;
        defaults to the process registry.
    span_totals:
        Optional ``SpanRecorder.totals()`` mapping, exposed as
        ``<prefix>_span_seconds_total{path="..."}`` and
        ``<prefix>_span_count_total{path="..."}``.
    prefix:
        Metric-name prefix (empty string for none).
    """
    if metrics is None:
        metrics = get_registry()
    if isinstance(metrics, MetricsRegistry):
        # Live render = a scrape: let registered producers (e.g. the
        # sharded server's worker-telemetry refresh) update first.
        run_scrape_hooks()
        snapshot = metrics.snapshot()
    else:
        snapshot = metrics

    lines: List[str] = []
    #: family rest-name -> (kind, [(shard, data), ...]) for shard series.
    sharded: Dict[str, Tuple[str, List[Tuple[int, dict]]]] = {}
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        shard_match = _SHARD_SERIES.match(name)
        if shard_match is not None:
            rest = shard_match.group(2)
            family = sharded.setdefault(rest, (kind, []))
            if family[0] == kind:  # mixed-kind collisions expose verbatim
                family[1].append((int(shard_match.group(1)), data))
                continue
        base = metric_name(name, prefix)
        _render_series(lines, base, kind, data, header=True)

    for rest in sorted(sharded):
        kind, series = sharded[rest]
        base = metric_name(f"serve.shard.{rest}", prefix)
        header = True
        for shard, data in sorted(series, key=lambda item: item[0]):
            emitted = _render_series(
                lines, base, kind, data,
                header=header, labels=(("shard", str(shard)),),
            )
            header = header and not emitted

    if span_totals:
        sec = metric_name("span.seconds", prefix)
        cnt = metric_name("span.count", prefix)
        lines.append(f"# TYPE {sec}_total counter")
        for path in sorted(span_totals):
            lines.append(
                f'{sec}_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(span_totals[path]['seconds'])}"
            )
        lines.append(f"# TYPE {cnt}_total counter")
        for path in sorted(span_totals):
            lines.append(
                f'{cnt}_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(span_totals[path]['count'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
