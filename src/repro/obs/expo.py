"""Prometheus-style text exposition over the metrics registry.

Renders the numeric state of a :class:`~repro.obs.metrics.MetricsRegistry`
(or a serialised ``snapshot()`` of one, e.g. the ``metrics`` field of a
JSONL run record) in the Prometheus text format version 0.0.4: one
``# TYPE`` header per metric family, counters suffixed ``_total``,
histograms as summaries with ``quantile`` labels plus ``_sum``/``_count``
series.  Span totals from :class:`~repro.obs.spans.SpanRecorder` are
exposed as two counter families labelled by span path.

The renderer is pure (dict in, text out) so output is deterministic for
a fixed snapshot — the property the exposition snapshot tests pin down.
``repro-tmn metrics`` is the CLI front-end.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Union

from .metrics import MetricsRegistry, get_registry

__all__ = ["metric_name", "render_exposition"]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: Histogram quantiles exposed per summary family.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a dotted instrument name into a Prometheus metric name.

    ``serve.cache.hits`` → ``repro_serve_cache_hits``; characters outside
    ``[a-zA-Z0-9_]`` become underscores.
    """
    flat = _INVALID.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    # Integral values render without a trailing .0 (Prometheus style).
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_exposition(
    metrics: Union[MetricsRegistry, Dict[str, dict], None] = None,
    span_totals: Optional[Dict[str, Dict[str, float]]] = None,
    prefix: str = "repro",
) -> str:
    """Render metrics (and optional span totals) as Prometheus text.

    Parameters
    ----------
    metrics:
        A live registry or an already-serialised ``snapshot()`` dict;
        defaults to the process registry.
    span_totals:
        Optional ``SpanRecorder.totals()`` mapping, exposed as
        ``<prefix>_span_seconds_total{path="..."}`` and
        ``<prefix>_span_count_total{path="..."}``.
    prefix:
        Metric-name prefix (empty string for none).
    """
    if metrics is None:
        metrics = get_registry()
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics

    lines = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        base = metric_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total {_fmt(data.get('value', 0.0))}")
        elif kind == "gauge":
            value = data.get("value")
            if value is None:
                continue  # never set: nothing meaningful to expose
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_fmt(value)}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} summary")
            count = data.get("count", 0)
            if count:
                for quantile, key in _QUANTILES:
                    if key in data:
                        lines.append(
                            f'{base}{{quantile="{quantile}"}} {_fmt(data[key])}'
                        )
            lines.append(f"{base}_sum {_fmt(data.get('total', 0.0))}")
            lines.append(f"{base}_count {_fmt(count)}")

    if span_totals:
        sec = metric_name("span.seconds", prefix)
        cnt = metric_name("span.count", prefix)
        lines.append(f"# TYPE {sec}_total counter")
        for path in sorted(span_totals):
            lines.append(
                f'{sec}_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(span_totals[path]['seconds'])}"
            )
        lines.append(f"# TYPE {cnt}_total counter")
        for path in sorted(span_totals):
            lines.append(
                f'{cnt}_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(span_totals[path]['count'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
