"""Memory accounting: RSS gauges, opt-in allocation spans, exact byte audits.

The ROADMAP's million-trajectory story ("quantised, memory-mapped
embedding store") needs a measurement layer before a compression PR can
claim anything: *Contrast & Compress* (PAPERS.md) frames
bytes-per-trajectory as the number compression is gated on.  This module
provides the three tiers of that evidence:

- **Process gauges** — :func:`rss_bytes` / :func:`peak_rss_bytes` read
  ``/proc/self/status`` (``VmRSS`` / ``VmHWM``) with a ``resource``
  fallback; :func:`update_memory_gauges` mirrors them into the metrics
  registry (``mem.rss_bytes``, ``mem.peak_rss_bytes``) so run records,
  exposition and the SLO monitor all see them.
- **Allocation spans** — :class:`MemoryTracker` owns an opt-in
  ``tracemalloc`` session (heavy: ~2x allocation cost while tracing, so
  never on by default); while one is active, :func:`alloc_span` records
  net/peak allocation deltas for a named section into
  ``mem.alloc.<name>`` histograms.  When no tracker is active the span
  is a no-op, so library code may use it unconditionally.
- **Exact structure audits** — the serving structures expose ``nbytes``
  payload accounting (:class:`~repro.serve.cache.EmbeddingCache`,
  :class:`~repro.index.hnsw.HNSWIndex`) which
  :meth:`~repro.serve.engine.SimilarityServer.memory_stats` divides into
  the headline ``bytes_per_trajectory`` gauge the bench gate pins.

Lifecycle: a :class:`MemoryTracker` must be context-managed (or
stopped in a ``finally``); lint rule R009 flags stray sessions.
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, Optional

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "AllocSpan",
    "MemoryTracker",
    "alloc_span",
    "format_memory",
    "peak_rss_bytes",
    "rss_bytes",
    "tracking_active",
    "update_memory_gauges",
]


def _proc_status_kib(field: str, pid: Optional[int] = None) -> Optional[int]:
    """One ``kB`` field of ``/proc/<pid>/status`` in bytes, or None."""
    who = "self" if pid is None else str(pid)
    try:
        with open(f"/proc/{who}/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def rss_bytes(pid: Optional[int] = None) -> int:
    """Current resident set size of a process in bytes.

    Reads ``VmRSS`` from ``/proc/<pid>/status`` (``pid=None`` means this
    process) — the sharded serving tier passes worker pids to account the
    whole pool.  Without procfs the self-reading falls back to
    ``ru_maxrss`` (the *peak*, the closest portable proxy — documented so
    a flat reading off Linux is not misread); for a foreign pid the
    fallback is 0, there is no portable cross-process probe.
    """
    value = _proc_status_kib("VmRSS", pid=pid)
    if value is not None:
        return value
    if pid is not None:
        return 0
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (``VmHWM``)."""
    value = _proc_status_kib("VmHWM")
    if value is not None:
        return value
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def update_memory_gauges(registry: Optional[MetricsRegistry] = None) -> Dict[str, int]:
    """Refresh the process memory gauges; returns the values set.

    Always sets ``mem.rss_bytes`` / ``mem.peak_rss_bytes``; while a
    tracemalloc session is active, also ``mem.traced_bytes`` /
    ``mem.traced_peak_bytes`` (Python-heap allocation totals, a strict
    subset of RSS).
    """
    registry = registry if registry is not None else get_registry()
    values = {"rss_bytes": rss_bytes(), "peak_rss_bytes": peak_rss_bytes()}
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        values["traced_bytes"] = current
        values["traced_peak_bytes"] = peak
    for name, value in values.items():
        registry.gauge(f"mem.{name}").set(value)
    return values


def tracking_active() -> bool:
    """Whether a tracemalloc session is live (alloc spans will record)."""
    return tracemalloc.is_tracing()


class MemoryTracker:
    """Owns one opt-in tracemalloc session; context-manage it.

    Tracing roughly doubles allocation cost, so this is never ambient:
    ``train --track-memory`` / ``Trainer.fit(track_memory=True)`` turn
    it on for a bounded scope.  If tracemalloc is already tracing (an
    outer tracker, or a test harness), enabling is a no-op join — the
    outer owner keeps the session, so trackers nest safely.
    """

    def __init__(self, nframes: int = 1):
        if nframes < 1:
            raise ValueError("nframes must be >= 1")
        self._nframes = nframes
        self._owns_session = False
        self.enabled = False

    def enable(self) -> None:
        """Start (or join) the tracemalloc session."""
        if self.enabled:
            raise RuntimeError("memory tracker already enabled")
        if not tracemalloc.is_tracing():
            # Stopped by disable(); R009's finally/with discipline is the
            # caller's contract with *this* class, which it satisfies.
            tracemalloc.start(self._nframes)  # lint: allow(R009)
            self._owns_session = True
        self.enabled = True

    def disable(self) -> None:
        """Stop the session if this tracker started it (idempotent)."""
        if not self.enabled:
            return
        if self._owns_session:
            tracemalloc.stop()
            self._owns_session = False
        self.enabled = False

    def __enter__(self) -> "MemoryTracker":
        self.enable()
        return self

    def __exit__(self, *exc) -> None:
        self.disable()


class AllocSpan:
    """One measured allocation section (handed out by :func:`alloc_span`).

    Attributes are populated on ``__exit__``: ``net_bytes`` (allocations
    minus frees over the section, may be negative), ``peak_bytes``
    (high-water mark above the entry level) and ``tracked`` (False when
    no tracemalloc session was active — both byte fields stay 0).
    """

    __slots__ = ("name", "net_bytes", "peak_bytes", "tracked", "_before", "_registry")

    def __init__(self, name: str, registry: Optional[MetricsRegistry]):
        self.name = name
        self.net_bytes = 0
        self.peak_bytes = 0
        self.tracked = False
        self._before: Optional[int] = None
        self._registry = registry

    def __enter__(self) -> "AllocSpan":
        if tracemalloc.is_tracing():
            self._before, _ = tracemalloc.get_traced_memory()
        return self

    def __exit__(self, *exc) -> None:
        if self._before is None or not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        self.net_bytes = current - self._before
        self.peak_bytes = max(peak - self._before, 0)
        self.tracked = True
        registry = self._registry if self._registry is not None else get_registry()
        registry.histogram(f"mem.alloc.{self.name}").observe(self.net_bytes)


def alloc_span(name: str, registry: Optional[MetricsRegistry] = None) -> AllocSpan:
    """Context manager measuring a section's allocation delta by name.

    A no-op (``tracked=False``) unless a :class:`MemoryTracker` (or any
    tracemalloc session) is active, so hot paths can wear it
    permanently; when active, the net delta lands in the
    ``mem.alloc.<name>`` histogram.
    """
    return AllocSpan(name, registry)


def format_memory(stats: Dict[str, float]) -> str:
    """Human-readable one-liner block for a memory-stats dict.

    Accepts the dict shapes produced by :func:`update_memory_gauges` and
    :meth:`~repro.serve.engine.SimilarityServer.memory_stats`; unknown
    keys render generically in sorted order.
    """
    if not stats:
        return "(no memory stats)"
    lines = []
    for key in sorted(stats):
        value = stats[key]
        if key.endswith("bytes_per_trajectory"):
            lines.append(f"  {key:<24s} {value:12.1f} B/traj")
        elif key.endswith("_bytes"):
            lines.append(f"  {key:<24s} {_human_bytes(float(value)):>12s}")
        else:
            lines.append(f"  {key:<24s} {value:12g}")
    return "\n".join(lines)


def _human_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"
