"""Declarative SLOs evaluated over the recent-trace ring.

The serving layer makes promises — bounded latency, bounded degradation,
no drops — that ``BENCH_serve.json`` measures but nothing enforced.  An
:class:`SLO` states one promise declaratively; :func:`check_slos`
evaluates a set of them over the finished traces in a
:class:`~repro.obs.trace.Tracer` ring (each serve request leaves one
``serve.topk`` trace carrying its wall time and degradation attributes)
and returns one :class:`SLOStatus` per spec.  ``strict=True`` turns a
breach into an :class:`SLOViolation` — which is how
:func:`repro.serve.bench.run_serve_bench` asserts the serving layer
still honours its contract on every bench run.

Spec kinds:

- ``"latency"`` — the ``percentile``-th percentile of trace wall time
  must not exceed ``threshold`` seconds;
- ``"degraded_rate"`` — the fraction of traces with a truthy
  ``degraded`` attribute must not exceed ``threshold``;
- ``"drop_rate"`` — dropped/requests (from explicit ``totals``, since a
  dropped request by definition leaves no complete trace) must not
  exceed ``threshold``;
- ``"gauge_max"`` — the named registry gauge (``metric``) must not
  exceed ``threshold``; this is how the memory budget
  (``mem.peak_rss_bytes``, ``serve.store.bytes_per_trajectory``) rides
  the same enforcement path as latency.
- ``"shard_imbalance"`` — over stitched ``serve.topk`` traces, the
  ``percentile``-th percentile of each trace's max/mean ratio of its
  per-shard span durations (``shard-<N>`` children) must not exceed
  ``threshold``: a balanced scatter-gather keeps every shard near the
  mean, a hot shard drags the ratio up.
- ``"straggler_rate"`` — the fraction of traces whose slowest shard
  span exceeds the trace's median shard span by more than ``gap_s``
  seconds must not exceed ``threshold``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .metrics import MetricsRegistry, get_registry
from .trace import Trace, Tracer, get_tracer

__all__ = [
    "DEADLINE_SERVE_SLOS",
    "DEFAULT_MEMORY_SLOS",
    "DEFAULT_SERVE_SLOS",
    "DEFAULT_SHARD_SLOS",
    "SLO",
    "SLOStatus",
    "SLOViolation",
    "assert_slos",
    "check_slos",
    "evaluate_slos",
    "format_slos",
]

_KINDS = (
    "latency",
    "degraded_rate",
    "drop_rate",
    "gauge_max",
    "shard_imbalance",
    "straggler_rate",
)

#: The per-shard spans a stitched scatter-gather trace records.
_SHARD_SPAN = re.compile(r"^shard-\d+$")


def _shard_durations(trace: Trace) -> List[float]:
    """Durations of one trace's ``shard-<N>`` spans (coordinator clock)."""
    out: List[float] = []
    for event in trace.events:
        if event.get("end") is None:
            continue
        if _SHARD_SPAN.match(str(event.get("name", ""))):
            out.append(float(event["end"]) - float(event["start"]))
    return out


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    Attributes
    ----------
    name:
        Stable identifier shown in reports.
    kind:
        One of ``latency``, ``degraded_rate``, ``drop_rate``,
        ``gauge_max``, ``shard_imbalance``, ``straggler_rate``.
    threshold:
        Upper bound: seconds for latency, a 0..1 ratio for the rates,
        the gauge's own unit (bytes, usually) for ``gauge_max``, a
        max/mean ratio for ``shard_imbalance``.
    percentile:
        Which percentile the bound applies to (``latency`` and
        ``shard_imbalance``).
    trace_name:
        Which traces the SLO is computed over (trace kinds only).
    metric:
        Which registry gauge the bound applies to (``gauge_max`` only).
    gap_s:
        Straggler definition for ``straggler_rate``: a trace counts as
        stragglered when its slowest shard span exceeds the median
        shard span by more than this many seconds.
    """

    name: str
    kind: str
    threshold: float
    percentile: float = 99.0
    trace_name: str = "serve.topk"
    metric: Optional[str] = None
    gap_s: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} (want one of {_KINDS})")
        if self.threshold < 0:
            raise ValueError("SLO threshold must be >= 0")
        if self.kind == "gauge_max" and not self.metric:
            raise ValueError("gauge_max SLOs must name a registry gauge via metric=")
        if self.gap_s < 0:
            raise ValueError("SLO gap_s must be >= 0")


@dataclass
class SLOStatus:
    """Evaluation outcome of one :class:`SLO` over a trace window."""

    slo: SLO
    value: Optional[float]  #: measured value (None: no data to evaluate)
    samples: int  #: traces (or requests) the value was computed over
    ok: bool

    def to_dict(self) -> dict:
        """JSON-ready summary of this status."""
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "threshold": self.slo.threshold,
            "value": self.value,
            "samples": self.samples,
            "ok": self.ok,
        }


class SLOViolation(AssertionError):
    """Raised by :func:`check_slos(strict=True)` when any SLO is breached."""


#: Serving SLOs for normal (no-deadline) traffic: generous enough to hold
#: on a loaded CI machine, tight enough to catch a real serving regression.
DEFAULT_SERVE_SLOS = (
    SLO(name="p99-latency", kind="latency", threshold=1.0, percentile=99.0),
    SLO(name="degraded-rate", kind="degraded_rate", threshold=0.25),
    SLO(name="drop-rate", kind="drop_rate", threshold=0.0),
)

#: Serving SLOs for deadline-bearing traffic, where degradation is the
#: designed behaviour: only drops and pathological latency are breaches.
DEADLINE_SERVE_SLOS = (
    SLO(name="p99-latency", kind="latency", threshold=2.0, percentile=99.0),
    SLO(name="drop-rate", kind="drop_rate", threshold=0.0),
)

#: Fleet SLOs over stitched scatter-gather traces.  Thresholds are CI-safe
#: by intent: on a loaded single-CPU box every shard's coordinator-side
#: wait is dominated by the same gather window, so only a genuinely hot
#: or hung shard moves these — which is exactly the regression to catch.
DEFAULT_SHARD_SLOS = (
    SLO(
        name="shard-imbalance",
        kind="shard_imbalance",
        threshold=20.0,
        percentile=99.0,
    ),
    SLO(name="straggler-rate", kind="straggler_rate", threshold=0.5, gap_s=0.25),
)

#: Memory-budget SLOs over the gauges ``memory_stats`` maintains.  The
#: per-trajectory ceiling is deliberately loose for today's float64
#: store (~hundreds of KiB headroom) — it exists to catch unbounded
#: growth now, and to be *tightened* by the quantised-store ROADMAP PR.
DEFAULT_MEMORY_SLOS = (
    SLO(
        name="peak-rss",
        kind="gauge_max",
        threshold=4.0 * 1024**3,
        metric="mem.peak_rss_bytes",
    ),
    SLO(
        name="bytes-per-trajectory",
        kind="gauge_max",
        threshold=512.0 * 1024,
        metric="serve.store.bytes_per_trajectory",
    ),
)


def evaluate_slos(
    slos: Sequence[SLO],
    traces: Sequence[Trace],
    totals: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, float]] = None,
) -> List[SLOStatus]:
    """Evaluate each spec over ``traces`` (+ optional request ``totals``).

    ``totals`` supplies ``{"requests": n, "dropped": m}`` for drop-rate
    SLOs; ``gauges`` supplies ``{metric_name: value}`` for gauge_max
    SLOs.  SLOs with no data evaluate as ok with ``value=None``.
    """
    statuses: List[SLOStatus] = []
    by_name: Dict[str, List[Trace]] = {}
    for trace in traces:
        by_name.setdefault(trace.name, []).append(trace)
    for slo in slos:
        window = by_name.get(slo.trace_name, [])
        if slo.kind == "gauge_max":
            value = (gauges or {}).get(slo.metric)
            if value is None:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            value = float(value)
            statuses.append(SLOStatus(slo, value, 1, value <= slo.threshold))
        elif slo.kind == "latency":
            durations = [t.duration for t in window]
            if not durations:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            value = float(np.percentile(durations, slo.percentile))
            statuses.append(SLOStatus(slo, value, len(durations), value <= slo.threshold))
        elif slo.kind == "degraded_rate":
            if not window:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            degraded = sum(1 for t in window if t.attrs.get("degraded"))
            value = degraded / len(window)
            statuses.append(SLOStatus(slo, value, len(window), value <= slo.threshold))
        elif slo.kind == "shard_imbalance":
            ratios: List[float] = []
            for t in window:
                durations = _shard_durations(t)
                if len(durations) < 2:
                    continue
                mean = float(np.mean(durations))
                if mean > 0:
                    ratios.append(float(np.max(durations)) / mean)
            if not ratios:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            value = float(np.percentile(ratios, slo.percentile))
            statuses.append(SLOStatus(slo, value, len(ratios), value <= slo.threshold))
        elif slo.kind == "straggler_rate":
            gaps: List[float] = []
            for t in window:
                durations = _shard_durations(t)
                if len(durations) < 2:
                    continue
                gaps.append(float(np.max(durations) - np.median(durations)))
            if not gaps:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            stragglers = sum(1 for gap in gaps if gap > slo.gap_s)
            value = stragglers / len(gaps)
            statuses.append(SLOStatus(slo, value, len(gaps), value <= slo.threshold))
        else:  # drop_rate
            requests = float((totals or {}).get("requests", 0))
            dropped = float((totals or {}).get("dropped", 0))
            if requests <= 0:
                statuses.append(SLOStatus(slo, None, 0, True))
                continue
            value = dropped / requests
            statuses.append(
                SLOStatus(slo, value, int(requests), value <= slo.threshold)
            )
    return statuses


def check_slos(
    slos: Sequence[SLO] = DEFAULT_SERVE_SLOS,
    tracer: Optional[Tracer] = None,
    window: Optional[int] = None,
    totals: Optional[Dict[str, float]] = None,
    strict: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> List[SLOStatus]:
    """Evaluate ``slos`` over the tracer's recent-trace ring.

    ``window`` bounds how many recent traces (per trace name) are
    considered; gauge_max SLOs read their gauges from ``registry``
    (default: the process registry).  With ``strict=True`` a breached
    SLO raises :class:`SLOViolation` naming every failure.  Callers
    that must do cleanup (persist metrics, close resources) before the
    raise should call with ``strict=False`` and hand the statuses to
    :func:`assert_slos` afterwards.
    """
    tracer = tracer if tracer is not None else get_tracer()
    names = {slo.trace_name for slo in slos if slo.kind != "gauge_max"}
    traces: List[Trace] = []
    for name in sorted(names):
        traces.extend(tracer.recent(n=window, name=name))
    gauges: Dict[str, float] = {}
    metrics = [slo.metric for slo in slos if slo.kind == "gauge_max"]
    if metrics:
        reg = registry if registry is not None else get_registry()
        for metric in metrics:
            value = reg.gauge(metric).value
            if value is not None:
                gauges[metric] = value
    statuses = evaluate_slos(slos, traces, totals=totals, gauges=gauges)
    if strict:
        assert_slos(statuses)
    return statuses


def assert_slos(statuses: Sequence[SLOStatus]) -> None:
    """Raise :class:`SLOViolation` naming every breached status (if any).

    The strict half of :func:`check_slos`, split out so callers can
    evaluate first, persist evidence, and only then raise.
    """
    failures = [s for s in statuses if not s.ok]
    if failures:
        detail = "; ".join(
            f"{s.slo.name}: {s.value:.6g} > {s.slo.threshold:.6g} "
            f"(over {s.samples} sample(s))"
            for s in failures
        )
        raise SLOViolation(f"SLO breach: {detail}")


def format_slos(statuses: Sequence[SLOStatus]) -> str:
    """Human-readable one-line-per-SLO report (serve-bench output)."""
    if not statuses:
        return "(no SLOs evaluated)"
    lines = []
    for s in statuses:
        flag = "ok  " if s.ok else "FAIL"
        value = "-" if s.value is None else f"{s.value:.6g}"
        lines.append(
            f"  slo {flag} {s.slo.name:<16s} value {value:>10s}  "
            f"limit {s.slo.threshold:.6g}  ({s.samples} sample(s))"
        )
    return "\n".join(lines)
