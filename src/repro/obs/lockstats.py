"""Runtime lock sanitizer: instrumented locks, order graph, contention.

The static C-rules (:mod:`repro.analysis.rules.concurrency`) prove lock
discipline lexically; this module checks it *dynamically*.  When the
sanitizer is enabled, the :func:`new_lock` / :func:`new_rlock` factories
hand out :class:`SanitizedLock` / :class:`SanitizedRLock` shims instead
of plain ``threading`` locks.  Each shim:

- records the per-thread **acquisition stack** (which named locks this
  thread currently holds, in order);
- feeds every held->acquired pair into a process-wide **runtime
  lock-order graph** and raises :class:`LockOrderError` *before
  blocking* when the new edge would close a cycle — an observed
  deadlock schedule fails loudly instead of hanging the suite;
- detects same-thread re-acquisition of a non-reentrant lock (certain
  self-deadlock) and raises instead of freezing;
- reports **hold-time** and **wait-time** histograms plus contention
  and acquisition counters through the process metrics registry
  (``lock.<name>.hold_seconds`` / ``.wait_seconds`` / ``.contended`` /
  ``.acquisitions``), so lock behaviour shows up in ``repro-tmn
  metrics`` and the Prometheus exposition like any other instrument.

Enablement: set ``REPRO_LOCK_SANITIZE=1`` in the environment, call
:func:`enable`, or run the test suite with ``pytest --sanitize``.  The
factories consult the flag at *construction* time, so enable the
sanitizer before building the objects under test.  When disabled the
factories return plain ``threading.Lock``/``RLock`` objects — zero
overhead on production paths.

The metrics registry's own ``_UPDATE_LOCK`` (and this module's graph
lock) are deliberately plain locks, never sanitized: observing a
hold-time histogram acquires the registry lock, so sanitizing it would
recurse the instrumentation into itself.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Set, Tuple, Union

from .metrics import get_registry

__all__ = [
    "LockOrderError",
    "LockStats",
    "SanitizedLock",
    "SanitizedRLock",
    "enable",
    "disable",
    "is_enabled",
    "new_lock",
    "new_rlock",
    "get_lockstats",
    "held_lock_names",
]

#: Environment variable that switches the sanitizer on at import time.
ENV_FLAG = "REPRO_LOCK_SANITIZE"


class LockOrderError(RuntimeError):
    """An observed acquisition would deadlock (cycle or re-acquire)."""


class LockStats:
    """Process-wide runtime lock-order graph and per-thread held stacks.

    One instance exists per process (:func:`get_lockstats`); the shims
    report every acquisition edge into it.  The internal bookkeeping
    lock is a plain ``threading.Lock`` held only for short dict walks —
    it is itself never sanitized (see module docstring).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: lock name -> names acquired while it was held
        self._edges: Dict[str, Set[str]] = {}
        #: (src, dst) -> thread name that first observed the edge
        self._edge_threads: Dict[Tuple[str, str], str] = {}
        self._tls = threading.local()

    # -- per-thread stacks ---------------------------------------------
    def _stack(self) -> List[dict]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_names(self) -> List[str]:
        """Names of locks the calling thread currently holds, in order."""
        return [entry["name"] for entry in self._stack()]

    def find_entry(self, lock: object) -> Optional[dict]:
        """The calling thread's stack entry for ``lock``, if held."""
        for entry in self._stack():
            if entry["lock"] is lock:
                return entry
        return None

    def push(self, lock: object, name: str) -> None:
        """Record that the calling thread now holds ``lock``."""
        self._stack().append(
            {"lock": lock, "name": name, "acquired_at": time.perf_counter(),
             "depth": 1}
        )

    def pop(self, lock: object) -> dict:
        """Remove and return the calling thread's entry for ``lock``."""
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i]["lock"] is lock:
                return stack.pop(i)
        raise RuntimeError("release of a sanitized lock this thread never acquired")

    # -- order graph ---------------------------------------------------
    def check_and_add(self, held: List[str], target: str) -> None:
        """Add held->target edges; raise before a cycle-closing acquire.

        Called by the shims *before* they block on the inner lock, so an
        observed deadlock schedule surfaces as :class:`LockOrderError`
        with the offending chain instead of a hung test run.
        """
        thread = threading.current_thread().name
        with self._lock:
            for src in dict.fromkeys(held):  # dedup, keep order
                if src == target:
                    continue  # same name on two instances: order unknowable
                path = self._path(target, src)
                if path is not None:
                    chain = " -> ".join(path + [target])
                    first = self._edge_threads.get((path[0], path[1]), "?") if (
                        len(path) > 1
                    ) else thread
                    raise LockOrderError(
                        f"lock-order cycle closed by thread {thread!r} "
                        f"acquiring {target!r} while holding {src!r}: "
                        f"{chain} (reverse order first seen on thread "
                        f"{first!r})"
                    )
            for src in dict.fromkeys(held):
                if src == target:
                    continue
                if target not in self._edges.setdefault(src, set()):
                    self._edges[src].add(target)
                    self._edge_threads.setdefault((src, target), thread)
                self._edges.setdefault(target, set())

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """A path start -> ... -> goal in the edge graph, else None."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(self._edges.get(node, ())):
                stack.append((nxt, path + [nxt]))
        return None

    def order_graph(self) -> Dict[str, Set[str]]:
        """A copy of the observed acquisition-order graph."""
        with self._lock:
            return {src: set(dsts) for src, dsts in self._edges.items()}

    def cycles(self) -> List[List[str]]:
        """Cycles currently present in the observed graph (should be [])."""
        graph = self.order_graph()
        out: List[List[str]] = []
        for start in sorted(graph):
            for mid in sorted(graph.get(start, ())):
                with self._lock:
                    path = self._path(mid, start)
                if path is not None and start != mid:
                    cycle = sorted(set([start] + path))
                    if cycle not in out:
                        out.append(cycle)
        return out

    def reset(self) -> None:
        """Forget the observed order graph (held stacks are untouched)."""
        with self._lock:
            self._edges.clear()
            self._edge_threads.clear()


class _SanitizedBase:
    """Shared shim machinery over an inner ``threading`` lock."""

    _reentrant = False

    def __init__(self, name: str):
        self.name = name
        self._inner = (
            threading.RLock() if self._reentrant else threading.Lock()
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire with order checking, wait timing and stack recording."""
        stats = get_lockstats()
        entry = stats.find_entry(self)
        if entry is not None:
            if not self._reentrant:
                raise LockOrderError(
                    f"thread {threading.current_thread().name!r} re-acquired "
                    f"non-reentrant lock {self.name!r} it already holds "
                    f"(certain self-deadlock)"
                )
            got = self._inner.acquire(blocking, timeout)
            if got:
                entry["depth"] += 1
            return got
        stats.check_and_add(stats.held_names(), self.name)
        registry = get_registry()
        got = self._inner.acquire(False)
        if not got:
            if not blocking:
                return False
            registry.counter(f"lock.{self.name}.contended").inc()
            started = time.perf_counter()
            got = self._inner.acquire(True, timeout)
            registry.histogram(f"lock.{self.name}.wait_seconds").observe(
                time.perf_counter() - started
            )
            if not got:
                return False
        stats.push(self, self.name)
        registry.counter(f"lock.{self.name}.acquisitions").inc()
        return True

    def release(self) -> None:
        """Release, recording hold time on the outermost release."""
        stats = get_lockstats()
        entry = stats.find_entry(self)
        if entry is None:
            raise RuntimeError(
                f"release of sanitized lock {self.name!r} not held by "
                f"thread {threading.current_thread().name!r}"
            )
        if self._reentrant and entry["depth"] > 1:
            entry["depth"] -= 1
            self._inner.release()
            return
        stats.pop(self)
        hold = time.perf_counter() - entry["acquired_at"]
        self._inner.release()
        get_registry().histogram(f"lock.{self.name}.hold_seconds").observe(hold)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "SanitizedRLock" if self._reentrant else "SanitizedLock"
        return f"<{kind} {self.name!r}>"


class SanitizedLock(_SanitizedBase):
    """Drop-in non-reentrant lock with order checking and lock metrics."""

    _reentrant = False

    def locked(self) -> bool:
        """Whether the inner lock is currently held by any thread."""
        return self._inner.locked()


class SanitizedRLock(_SanitizedBase):
    """Drop-in reentrant lock; only the outermost acquire/release count."""

    _reentrant = True


#: Process-wide sanitizer state; flipped by :func:`enable`/:func:`disable`.
_STATE = {"enabled": os.environ.get(ENV_FLAG, "").lower() in ("1", "true", "yes")}

_STATS = LockStats()


def get_lockstats() -> LockStats:
    """The process-wide :class:`LockStats` instance."""
    return _STATS


def enable() -> None:
    """Turn the sanitizer on for locks created from now on."""
    _STATE["enabled"] = True


def disable() -> None:
    """Turn the sanitizer off for locks created from now on."""
    _STATE["enabled"] = False


def is_enabled() -> bool:
    """Whether :func:`new_lock`/:func:`new_rlock` return sanitized shims."""
    return _STATE["enabled"]


def new_lock(name: str) -> Union[SanitizedLock, "threading.Lock"]:
    """A named mutex: sanitized when enabled, plain ``threading.Lock`` not."""
    return SanitizedLock(name) if is_enabled() else threading.Lock()


def new_rlock(name: str) -> Union[SanitizedRLock, "threading.RLock"]:
    """A named reentrant lock: sanitized when enabled, plain otherwise."""
    return SanitizedRLock(name) if is_enabled() else threading.RLock()


def held_lock_names() -> List[str]:
    """Sanitized-lock names the calling thread currently holds (in order)."""
    return get_lockstats().held_names()
