"""Continuous wall-clock stack sampling: which *frames* burn the time.

The span/trace layers (:mod:`repro.obs.spans`, :mod:`repro.obs.trace`)
attribute time to sections the author thought to instrument.  The
sampler needs no such foresight: a background thread snapshots every
thread's Python stack via ``sys._current_frames()`` at a configurable
rate and aggregates identical stacks into counts, so the hot frames of
an *uninstrumented* path — the DP-metric recurrences, an accidental
quadratic in the batcher — surface with statistical weight proportional
to the wall time they actually consumed.

Design points:

- **Per-thread aggregation.**  ``sys._current_frames()`` returns one
  frame per live thread; each thread's stack is folded and counted
  separately, so a worker pool's stacks never interleave frames from
  two threads into one impossible call path.
- **Phase attribution.**  Each sample is joined to the request-scoped
  tracing layer: when the sampled thread has an open root trace
  (``serve.topk``, ``train.epoch``), that trace's name becomes the
  synthetic root frame of the folded stack, so flamegraphs split by the
  phase that paid for the time (see :meth:`Tracer.active_phases`).
- **Export formats.**  :meth:`StackSampler.folded` emits the classic
  collapsed-stack format (``root;child;leaf count`` — flamegraph.pl /
  inferno input) and :meth:`StackSampler.to_speedscope` a
  speedscope-loadable JSON document (one sampled profile per thread,
  shared frame table).
- **Overhead.**  Work per tick is one C-level frames snapshot plus a
  Python walk of each stack; at the default ~100 hz this stays well
  under the 5% budget asserted by ``tests/test_obs_sampler.py``.  The
  sampler's own thread is excluded from its samples.

Lifecycle is context-managed (``with StackSampler(hz=50) as s: ...``);
lint rule R009 flags ``start()`` calls with no guaranteed ``stop()``.

Determinism: aggregation is exercised in tests through the injectable
``frames_fn``/``clock`` hooks — feeding a fixed frame dict produces a
byte-identical folded snapshot, no live thread needed.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .lockstats import new_lock
from .metrics import get_registry
from .trace import Tracer, get_tracer

__all__ = [
    "StackSampler",
    "format_top_frames",
    "merge_stacks",
    "top_frames",
]

#: Aggregated stacks for one thread: folded tuple (root first) -> samples.
_StackCounts = Dict[Tuple[str, ...], int]


def _frame_label(frame) -> str:
    """``module.function`` label for one frame (stable across samples)."""
    module = frame.f_globals.get("__name__") or frame.f_code.co_filename
    return f"{module}.{frame.f_code.co_name}"


class StackSampler:
    """Background wall-clock sampler over every live thread's stack.

    Parameters
    ----------
    hz:
        Target sampling rate.  The default (97) is deliberately not a
        round number so the sampler does not phase-lock with periodic
        work scheduled on whole milliseconds.
    max_depth:
        Stacks deeper than this keep their ``max_depth`` leaf-most
        frames under a ``<truncated>`` root (and are counted).
    clock / frames_fn / tracer:
        Injectable time source, frame provider and tracer — tests feed
        fixed frames through ``frames_fn`` for deterministic snapshots.
    """

    def __init__(
        self,
        hz: float = 97.0,
        max_depth: int = 64,
        clock: Callable[[], float] = time.perf_counter,
        frames_fn: Optional[Callable[[], Dict[int, object]]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._clock = clock
        self._frames_fn = frames_fn if frames_fn is not None else sys._current_frames
        self._tracer = tracer if tracer is not None else get_tracer()
        self._lock = new_lock("obs.sampler")
        self._counts: Dict[int, _StackCounts] = {}
        self._thread_names: Dict[int, str] = {}
        self._samples = 0
        self._truncated = 0
        self._seconds = 0.0
        self._started_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the background sampling thread is currently live."""
        with self._lock:
            return self._thread is not None

    def start(self) -> None:
        """Launch the background sampling thread (error if already live)."""
        thread = threading.Thread(target=self._loop, name="obs-sampler", daemon=True)
        # The event is its own synchroniser; touch it outside the lock.
        self._stop_event.clear()
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("sampler already running")
            self._started_at = self._clock()
            self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop and join the sampling thread (idempotent)."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        # Join outside the lock: the sampling loop takes it per sample.
        thread.join()
        with self._lock:
            self._thread = None
            if self._started_at is not None:
                self._seconds += self._clock() - self._started_at
                self._started_at = None

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        counter = get_registry().counter("obs.sampler.samples")
        while not self._stop_event.wait(interval):
            counter.inc(self.sample_once())

    # -- sampling -------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every thread; returns how many were recorded.

        Normally driven by the background thread, but callable directly
        (tests, or embedding the sampler in an existing scheduler).
        """
        frames = self._frames_fn()
        phases = self._tracer.active_phases()
        with self._lock:
            own = self._thread.ident if self._thread is not None else None
        names = {t.ident: t.name for t in threading.enumerate()}
        updates: List[Tuple[int, Tuple[str, ...]]] = []
        truncated = 0
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root first, leaf last (folded order)
            if depth > self.max_depth:
                stack = ["<truncated>"] + stack[-self.max_depth :]
                truncated += 1
            phase = phases.get(ident)
            if phase is not None:
                stack.insert(0, phase)
            updates.append((ident, tuple(stack)))
        with self._lock:
            for ident, stack in updates:
                per_thread = self._counts.setdefault(ident, {})
                per_thread[stack] = per_thread.get(stack, 0) + 1
                name = names.get(ident)
                if name is not None:
                    self._thread_names[ident] = name
            self._samples += len(updates)
            self._truncated += truncated
        return len(updates)

    # -- reading --------------------------------------------------------
    @property
    def samples(self) -> int:
        """Total per-thread stack samples recorded so far."""
        with self._lock:
            return self._samples

    @property
    def seconds(self) -> float:
        """Wall time spent sampling across completed start/stop windows."""
        with self._lock:
            return self._seconds

    def counts(self) -> Dict[int, _StackCounts]:
        """Per-thread aggregated stacks: ``{ident: {stack tuple: n}}``."""
        with self._lock:
            return {ident: dict(stacks) for ident, stacks in self._counts.items()}

    def thread_names(self) -> Dict[int, str]:
        """Last observed thread name per sampled thread ident."""
        with self._lock:
            return dict(self._thread_names)

    def merged_stacks(self) -> Dict[str, int]:
        """Folded stacks merged across threads: ``{"a;b;c": count}``."""
        merged: Dict[str, int] = {}
        for stacks in self.counts().values():
            for stack, count in stacks.items():
                key = ";".join(stack)
                merged[key] = merged.get(key, 0) + count
        return merged

    def reset(self) -> None:
        """Drop every aggregated stack and counter (sampler keeps running)."""
        with self._lock:
            self._counts.clear()
            self._thread_names.clear()
            self._samples = 0
            self._truncated = 0
            self._seconds = 0.0

    # -- exports --------------------------------------------------------
    def folded(self) -> str:
        """Collapsed-stack text: one ``frame;frame;... count`` line per stack.

        The classic flamegraph.pl / inferno input format, merged across
        threads and sorted for deterministic output.
        """
        merged = self.merged_stacks()
        return "\n".join(f"{stack} {count}" for stack, count in sorted(merged.items()))

    def snapshot(self) -> dict:
        """JSON-ready summary persisted into run records.

        ``{"hz", "samples", "seconds", "truncated", "stacks": {fold: n},
        "threads": {ident: {"name", "samples"}}}``.
        """
        with self._lock:
            seconds = self._seconds
            if self._started_at is not None:
                seconds += self._clock() - self._started_at
            threads = {
                str(ident): {
                    "name": self._thread_names.get(ident, f"thread-{ident}"),
                    "samples": sum(stacks.values()),
                }
                for ident, stacks in self._counts.items()
            }
            truncated = self._truncated
            samples = self._samples
        return {
            "hz": self.hz,
            "samples": samples,
            "seconds": seconds,
            "truncated": truncated,
            "stacks": self.merged_stacks(),
            "threads": threads,
        }

    def to_speedscope(self, name: str = "repro-tmn profile") -> dict:
        """Speedscope file-format document: one sampled profile per thread.

        Each distinct folded stack becomes one sample whose weight is its
        count — losslessly loadable at https://www.speedscope.app (the
        temporal *order* of samples is not preserved; aggregation trades
        it for bounded memory).
        """
        frame_index: Dict[str, int] = {}
        frames: List[dict] = []

        def index_of(label: str) -> int:
            idx = frame_index.get(label)
            if idx is None:
                idx = frame_index[label] = len(frames)
                frames.append({"name": label})
            return idx

        profiles = []
        names = self.thread_names()
        for ident, stacks in sorted(self.counts().items()):
            samples = []
            weights = []
            for stack, count in sorted(stacks.items()):
                samples.append([index_of(label) for label in stack])
                weights.append(count)
            profiles.append(
                {
                    "type": "sampled",
                    "name": names.get(ident, f"thread-{ident}"),
                    "unit": "none",
                    "startValue": 0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro-tmn",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": profiles,
        }

    def write_speedscope(
        self, path: Union[str, Path], name: str = "repro-tmn profile"
    ) -> Path:
        """Serialise :meth:`to_speedscope` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_speedscope(name)) + "\n")
        return path

    def write_folded(self, path: Union[str, Path]) -> Path:
        """Write :meth:`folded` collapsed stacks to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.folded() + "\n")
        return path


# ----------------------------------------------------------------------
# Snapshot analysis: hot-frame tables over merged folded stacks.


def merge_stacks(*stack_dicts: Dict[str, int]) -> Dict[str, int]:
    """Merge several ``{fold: count}`` dicts by summing counts."""
    merged: Dict[str, int] = {}
    for stacks in stack_dicts:
        for fold, count in stacks.items():
            merged[fold] = merged.get(fold, 0) + count
    return merged


def top_frames(stacks: Dict[str, int], n: int = 10) -> List[dict]:
    """Hot frames of a ``{fold: count}`` dict, hottest self-time first.

    ``self`` counts samples where the frame was the leaf (it was
    executing); ``total`` counts samples where it appears anywhere on
    the stack (it or a callee was executing; recursion counted once).
    Works on a live :meth:`StackSampler.merged_stacks` result or on the
    ``stacks`` entry of a persisted snapshot read back from JSON.
    """
    self_counts: Dict[str, int] = {}
    total_counts: Dict[str, int] = {}
    for fold, count in stacks.items():
        frames = fold.split(";")
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count
    ranked = sorted(
        total_counts,
        key=lambda frame: (-self_counts.get(frame, 0), -total_counts[frame], frame),
    )
    return [
        {
            "frame": frame,
            "self": self_counts.get(frame, 0),
            "total": total_counts[frame],
        }
        for frame in ranked[:n]
    ]


def format_top_frames(stacks: Dict[str, int], n: int = 10) -> str:
    """Render :func:`top_frames` as an aligned text table."""
    rows = top_frames(stacks, n=n)
    if not rows:
        return "(no samples recorded)"
    grand_total = sum(stacks.values())
    lines = [f"{'self':>6s} {'self%':>6s} {'total':>6s}  frame"]
    for row in rows:
        share = row["self"] / grand_total if grand_total else 0.0
        lines.append(
            f"{row['self']:>6d} {share * 100:>5.1f}% {row['total']:>6d}  {row['frame']}"
        )
    return "\n".join(lines)
