"""Persistence for models, datasets and distance matrices.

Checkpoints are plain ``.npz`` archives plus a JSON sidecar describing the
model class and configuration, so a checkpoint can be reloaded without
pickle (and inspected with nothing but numpy).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from .baselines import SRN, NeuTraj, T3S, Traj2SimVec
from .core import TMN, TMNConfig
from .data import Trajectory, TrajectoryDataset

__all__ = ["save_model", "load_model", "save_dataset", "load_dataset"]

_MODEL_CLASSES = {
    "TMN": TMN,
    "SRN": SRN,
    "NeuTraj": NeuTraj,
    "T3S": T3S,
    "Traj2SimVec": Traj2SimVec,
}


def save_model(model, path: Union[str, Path]) -> Path:
    """Write a model checkpoint: ``<path>.npz`` weights + ``<path>.json`` meta.

    Returns the weights path.  Models are reconstructed by class name and
    TMNConfig, so only the classes registered in this module round-trip.
    """
    path = Path(path)
    cls_name = type(model).__name__
    if cls_name not in _MODEL_CLASSES:
        raise KeyError(f"unsupported model class {cls_name!r}")
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    state = model.state_dict()
    np.savez(weights_path, **state)
    meta = {
        "class": cls_name,
        "config": dataclasses.asdict(model.config),
        "format_version": 1,
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return weights_path


def load_model(path: Union[str, Path]):
    """Reconstruct a model saved by :func:`save_model`.

    NeuTraj checkpoints restore weights but not the grid memory — call
    ``prepare`` (or refit) before encoding, as after any fresh construction.
    """
    path = Path(path)
    meta = json.loads(path.with_suffix(".json").read_text())
    cls = _MODEL_CLASSES.get(meta["class"])
    if cls is None:
        raise KeyError(f"unknown model class {meta['class']!r} in checkpoint")
    config = TMNConfig(**meta["config"])
    model = cls(config)
    with np.load(path.with_suffix(".npz")) as archive:
        model.load_state_dict({k: archive[k] for k in archive.files})
    return model


def save_dataset(dataset: TrajectoryDataset, path: Union[str, Path]) -> Path:
    """Serialise a trajectory dataset to one ``.npz`` archive."""
    path = Path(path).with_suffix(".npz")
    arrays = {}
    has_ts = []
    for i, t in enumerate(dataset):
        arrays[f"points_{i}"] = t.points
        if t.timestamps is not None:
            arrays[f"ts_{i}"] = t.timestamps
            has_ts.append(i)
    arrays["_ids"] = np.array([t.traj_id for t in dataset])
    arrays["_has_ts"] = np.array(has_ts, dtype=int)
    np.savez(path, **arrays)
    meta = {"name": dataset.name, "meta": _json_safe(dataset.meta), "n": len(dataset)}
    path.with_suffix(".json").write_text(json.dumps(meta, indent=2))
    return path


def load_dataset(path: Union[str, Path]) -> TrajectoryDataset:
    """Inverse of :func:`save_dataset`."""
    path = Path(path).with_suffix(".npz")
    meta = json.loads(path.with_suffix(".json").read_text())
    with np.load(path) as archive:
        ids = archive["_ids"]
        with_ts = set(archive["_has_ts"].tolist())
        trajs = []
        for i in range(meta["n"]):
            ts = archive[f"ts_{i}"] if i in with_ts else None
            trajs.append(
                Trajectory(archive[f"points_{i}"], traj_id=int(ids[i]), timestamps=ts)
            )
    return TrajectoryDataset(trajs, name=meta["name"], meta=meta["meta"])


def _json_safe(obj):
    """Coerce numpy scalars/containers in dataset meta into JSON types."""
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    return obj
