"""Discrete Fréchet distance (Eiter & Mannila coupling distance)."""

from __future__ import annotations

import numpy as np

from ._dp import frechet_batch
from .point import as_points, cross_dist

__all__ = ["frechet"]


def frechet(a, b) -> float:
    """Discrete Fréchet distance between two trajectories.

    The minimal, over all order-preserving couplings, of the maximal matched
    point distance — the "dog-leash" distance restricted to vertices.
    """
    a = as_points(a)
    b = as_points(b)
    cost = cross_dist(a, b)[None, :, :]
    return float(frechet_batch(cost, np.array([len(a)]), np.array([len(b)]))[0])
