"""Longest Common Subsequence distance (Vlachos et al., ICDE 2002) — Eq. 3."""

from __future__ import annotations

import numpy as np

from ._dp import lcss_batch
from .point import as_points, cross_dist

__all__ = ["lcss", "lcss_length", "DEFAULT_EPS"]

#: Matching tolerance on normalised coordinates (see ``edr.DEFAULT_EPS``).
DEFAULT_EPS = 0.25


def lcss_length(a, b, eps: float = DEFAULT_EPS) -> int:
    """Length of the longest common subsequence under tolerance ``eps``."""
    if eps <= 0:
        raise ValueError("LCSS eps must be positive")
    a = as_points(a)
    b = as_points(b)
    match = (cross_dist(a, b) <= eps)[None, :, :]
    return int(lcss_batch(match, np.array([len(a)]), np.array([len(b)]))[0])


def lcss(a, b, eps: float = DEFAULT_EPS) -> float:
    """LCSS distance: ``1 - LCSS(a, b) / min(|a|, |b|)`` in [0, 1].

    The similarity count is normalised by the shorter length, the standard
    conversion used when LCSS serves as a distance.
    """
    a = as_points(a)
    b = as_points(b)
    count = lcss_length(a, b, eps=eps)
    return 1.0 - count / min(len(a), len(b))
