"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004) — paper Eq. 1."""

from __future__ import annotations

import numpy as np

from ._dp import erp_batch
from .point import as_points, cross_dist, dist_to_point

__all__ = ["erp", "DEFAULT_GAP"]

#: Default gap point g.  Chen & Ng use the origin; trajectories in this repo
#: are normalised around it, which keeps gap penalties commensurate with
#: point distances.
DEFAULT_GAP = (0.0, 0.0)


def erp(a, b, gap=DEFAULT_GAP) -> float:
    """ERP distance: an edit distance whose deletions cost ``d(point, g)``.

    Unlike EDR/LCSS, ERP is a metric (it satisfies the triangle inequality)
    because real distances, not unit penalties, are accumulated.
    """
    a = as_points(a)
    b = as_points(b)
    cost = cross_dist(a, b)[None, :, :]
    gap_a = dist_to_point(a, gap)[None, :]
    gap_b = dist_to_point(b, gap)[None, :]
    return float(
        erp_batch(cost, gap_a, gap_b, np.array([len(a)]), np.array([len(b)]))[0]
    )
