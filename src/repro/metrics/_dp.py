"""Batched anti-diagonal dynamic-programming engines.

Every matching-based trajectory metric in the paper (DTW, discrete Fréchet,
ERP, EDR, LCSS) is an O(m·n) dynamic program whose cell (i, j) depends only
on cells (i-1, j), (i, j-1) and (i-1, j-1).  Cells on the same anti-diagonal
``k = i + j`` are therefore independent, which lets us vectorise both along
the diagonal *and across a whole batch of trajectory pairs at once*.  This
is what makes computing the paper's ground-truth distance matrices feasible
on CPU without compiled extensions.

All engines operate on a padded cost (or match) tensor of shape
``(P, m_max, n_max)`` together with per-pair true lengths.  Because the DP is
causal — cell (i, j) never reads beyond row i / column j — padded entries
cannot influence the read-out cell ``(len_a, len_b)``, so padding values are
irrelevant.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "dtw_batch",
    "frechet_batch",
    "erp_batch",
    "edr_batch",
    "lcss_batch",
]

_INF = np.inf


def _check_inputs(cost: np.ndarray, len_a: np.ndarray, len_b: np.ndarray) -> Tuple[int, int, int]:
    if cost.ndim != 3:
        raise ValueError(f"cost tensor must be (P, m, n), got {cost.shape}")
    pairs, m, n = cost.shape
    len_a = np.asarray(len_a)
    len_b = np.asarray(len_b)
    if len_a.shape != (pairs,) or len_b.shape != (pairs,):
        raise ValueError("length arrays must match the pair axis of the cost tensor")
    if np.any(len_a < 1) or np.any(len_b < 1):
        raise ValueError("trajectory lengths must be >= 1")
    if np.any(len_a > m) or np.any(len_b > n):
        raise ValueError("lengths exceed padded cost dimensions")
    return pairs, m, n


def _diag_interior(k: int, m: int, n: int) -> np.ndarray:
    """Grid rows I with 1 <= I <= m, 1 <= J = k - I <= n on diagonal k."""
    lo = max(1, k - n)
    hi = min(m, k - 1)
    return np.arange(lo, hi + 1)


def _run_dp(cost, len_a, len_b, init_border_row, init_border_col, combine):
    """Shared anti-diagonal driver.

    ``combine(cost_vals, up, left, diag)`` computes interior cells; the
    border callbacks give D[I, 0] and D[0, J].  Returns D[len_a, len_b] for
    every pair.
    """
    pairs, m, n = _check_inputs(cost, len_a, len_b)
    len_a = np.asarray(len_a, dtype=int)
    len_b = np.asarray(len_b, dtype=int)
    target_k = len_a + len_b
    result = np.empty(pairs)

    prev2 = np.full((pairs, m + 1), _INF)
    prev1 = np.full((pairs, m + 1), _INF)
    # Diagonal k = 0 holds only D[0, 0].
    prev1[:, 0] = init_border_col(0)
    for k in range(1, m + n + 1):
        cur = np.full((pairs, m + 1), _INF)
        if k <= n:
            cur[:, 0] = init_border_col(k)  # D[0, k]
        if k <= m:
            cur[:, k] = init_border_row(k)  # D[k, 0]
        rows = _diag_interior(k, m, n)
        if rows.size:
            cols = k - rows
            c = cost[:, rows - 1, cols - 1]
            up = prev1[:, rows - 1]
            left = prev1[:, rows]
            diag = prev2[:, rows - 1]
            cur[:, rows] = combine(c, up, left, diag)
        hits = target_k == k
        if np.any(hits):
            result[hits] = cur[hits, len_a[hits]]
        prev2, prev1 = prev1, cur
    return result


def dtw_batch(cost: np.ndarray, len_a, len_b) -> np.ndarray:
    """Dynamic Time Warping distances for a batch of pairs.

    D[i, j] = cost[i, j] + min(D[i-1, j], D[i, j-1], D[i-1, j-1]).
    """

    def combine(c, up, left, diag):
        return c + np.minimum(np.minimum(up, left), diag)

    return _run_dp(
        cost,
        len_a,
        len_b,
        init_border_row=lambda i: 0.0 if i == 0 else _INF,
        init_border_col=lambda j: 0.0 if j == 0 else _INF,
        combine=combine,
    )


def frechet_batch(cost: np.ndarray, len_a, len_b) -> np.ndarray:
    """Discrete Fréchet distances (coupling distance of Eiter & Mannila).

    D[i, j] = max(cost[i, j], min(D[i-1, j], D[i, j-1], D[i-1, j-1])).
    """

    def combine(c, up, left, diag):
        return np.maximum(c, np.minimum(np.minimum(up, left), diag))

    return _run_dp(
        cost,
        len_a,
        len_b,
        init_border_row=lambda i: 0.0 if i == 0 else _INF,
        init_border_col=lambda j: 0.0 if j == 0 else _INF,
        combine=combine,
    )


def erp_batch(
    cost: np.ndarray,
    gap_a: np.ndarray,
    gap_b: np.ndarray,
    len_a,
    len_b,
) -> np.ndarray:
    """Edit distance with Real Penalty (paper Eq. 1).

    ``gap_a[p, i]`` is the cost of deleting point i of trajectory a (its
    distance to the gap point g); similarly ``gap_b``.  The recurrence is

    D[i, j] = min(D[i-1, j] + gap_a[i],
                  D[i, j-1] + gap_b[j],
                  D[i-1, j-1] + cost[i, j]).
    """
    pairs, m, n = _check_inputs(cost, len_a, len_b)
    if gap_a.shape != (pairs, m) or gap_b.shape != (pairs, n):
        raise ValueError("gap arrays must be (P, m) and (P, n)")
    prefix_a = np.concatenate([np.zeros((pairs, 1)), np.cumsum(gap_a, axis=1)], axis=1)
    prefix_b = np.concatenate([np.zeros((pairs, 1)), np.cumsum(gap_b, axis=1)], axis=1)

    len_a = np.asarray(len_a, dtype=int)
    len_b = np.asarray(len_b, dtype=int)
    target_k = len_a + len_b
    result = np.empty(pairs)

    prev2 = np.full((pairs, m + 1), _INF)
    prev1 = np.full((pairs, m + 1), _INF)
    prev1[:, 0] = 0.0
    for k in range(1, m + n + 1):
        cur = np.full((pairs, m + 1), _INF)
        if k <= n:
            cur[:, 0] = prefix_b[:, k]  # delete the first k points of b
        if k <= m:
            cur[:, k] = prefix_a[:, k]  # delete the first k points of a
        rows = _diag_interior(k, m, n)
        if rows.size:
            cols = k - rows
            c = cost[:, rows - 1, cols - 1]
            up = prev1[:, rows - 1] + gap_a[:, rows - 1]
            left = prev1[:, rows] + gap_b[:, cols - 1]
            diag = prev2[:, rows - 1] + c
            cur[:, rows] = np.minimum(np.minimum(up, left), diag)
        hits = target_k == k
        if np.any(hits):
            result[hits] = cur[hits, len_a[hits]]
        prev2, prev1 = prev1, cur
    return result


def edr_batch(match: np.ndarray, len_a, len_b) -> np.ndarray:
    """Edit Distance on Real sequence (paper Eq. 2).

    ``match[p, i, j]`` is True when points i/j are within the EDR tolerance.
    D[i, j] = min(D[i-1, j] + 1, D[i, j-1] + 1, D[i-1, j-1] + (0 if match else 1)).
    """
    subcost = np.where(np.asarray(match, dtype=bool), 0.0, 1.0)

    def combine(c, up, left, diag):
        return np.minimum(np.minimum(up + 1.0, left + 1.0), diag + c)

    return _run_dp(
        subcost,
        len_a,
        len_b,
        init_border_row=lambda i: float(i),
        init_border_col=lambda j: float(j),
        combine=combine,
    )


def lcss_batch(match: np.ndarray, len_a, len_b) -> np.ndarray:
    """Longest Common Subsequence *lengths* (paper Eq. 3).

    Returns the raw LCSS count; callers convert to a distance, conventionally
    ``1 - lcss / min(m, n)``.
    """
    match_f = np.asarray(match, dtype=bool)
    pairs, m, n = _check_inputs(match_f.astype(float), len_a, len_b)
    len_a = np.asarray(len_a, dtype=int)
    len_b = np.asarray(len_b, dtype=int)
    target_k = len_a + len_b
    result = np.empty(pairs)

    neg = -1.0  # invalid cells must never win a max
    prev2 = np.full((pairs, m + 1), neg)
    prev1 = np.full((pairs, m + 1), neg)
    prev1[:, 0] = 0.0
    for k in range(1, m + n + 1):
        cur = np.full((pairs, m + 1), neg)
        if k <= n:
            cur[:, 0] = 0.0
        if k <= m:
            cur[:, k] = 0.0
        rows = _diag_interior(k, m, n)
        if rows.size:
            cols = k - rows
            is_match = match_f[:, rows - 1, cols - 1]
            extend = prev2[:, rows - 1] + 1.0
            skip = np.maximum(prev1[:, rows - 1], prev1[:, rows])
            cur[:, rows] = np.where(is_match, extend, skip)
        hits = target_k == k
        if np.any(hits):
            result[hits] = cur[hits, len_a[hits]]
        prev2, prev1 = prev1, cur
    return result
