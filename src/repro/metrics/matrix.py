"""Ground-truth distance matrices (the paper's matrix ``D``).

Training every model in the paper requires the exact pairwise distances of
the training set under the chosen metric; evaluation requires the
query-by-database matrix.  Both are produced here in vectorised chunks via
the batched DP engines, which is what keeps CPU-only reproduction feasible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .point import as_points
from .registry import MetricSpec, get_metric

__all__ = ["pad_trajectories", "pairwise_distance_matrix", "cross_distance_matrix"]


def _resolve(metric: Union[str, MetricSpec], **params) -> MetricSpec:
    if isinstance(metric, MetricSpec):
        return metric
    return get_metric(metric, **params)


def pad_trajectories(trajs: Sequence) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length trajectories into (N, L, 2) plus lengths (N,).

    Padding is zeros; every consumer must honour the returned lengths (the
    DP engines do so by construction).
    """
    points: List[np.ndarray] = [as_points(t) for t in trajs]
    lengths = np.array([len(p) for p in points], dtype=int)
    if lengths.size == 0:
        raise ValueError("cannot pad an empty trajectory collection")
    longest = int(lengths.max())
    stacked = np.zeros((len(points), longest, 2))
    for i, p in enumerate(points):
        stacked[i, : len(p)] = p
    return stacked, lengths


def pairwise_distance_matrix(
    trajs: Sequence,
    metric: Union[str, MetricSpec] = "dtw",
    chunk_size: int = 512,
    eps: Optional[float] = None,
    gap=None,
) -> np.ndarray:
    """Symmetric N x N exact distance matrix under ``metric``.

    Only the upper triangle is computed; the diagonal is zero by the
    identity property of every supported metric.

    Parameters
    ----------
    trajs:
        Sequence of trajectories (arrays or ``Trajectory`` objects).
    metric:
        Metric name or a prepared :class:`MetricSpec`.
    chunk_size:
        Number of trajectory pairs evaluated per vectorised batch; bounds
        peak memory at roughly ``chunk_size * L^2`` floats.
    """
    spec = _resolve(metric, eps=eps, gap=gap)
    stacked, lengths = pad_trajectories(trajs)
    n = len(lengths)
    result = np.zeros((n, n))
    rows, cols = np.triu_indices(n, k=1)
    for start in range(0, rows.size, chunk_size):
        i_idx = rows[start : start + chunk_size]
        j_idx = cols[start : start + chunk_size]
        dists = spec.batch(stacked[i_idx], stacked[j_idx], lengths[i_idx], lengths[j_idx])
        result[i_idx, j_idx] = dists
        result[j_idx, i_idx] = dists
    return result


def cross_distance_matrix(
    queries: Sequence,
    base: Sequence,
    metric: Union[str, MetricSpec] = "dtw",
    chunk_size: int = 512,
    eps: Optional[float] = None,
    gap=None,
) -> np.ndarray:
    """Exact Q x N distance matrix between two trajectory collections."""
    spec = _resolve(metric, eps=eps, gap=gap)
    q_pts = [as_points(t) for t in queries]
    b_pts = [as_points(t) for t in base]
    longest = max(max(len(p) for p in q_pts), max(len(p) for p in b_pts))
    q_stack = np.zeros((len(q_pts), longest, 2))
    for i, p in enumerate(q_pts):
        q_stack[i, : len(p)] = p
    b_stack = np.zeros((len(b_pts), longest, 2))
    for i, p in enumerate(b_pts):
        b_stack[i, : len(p)] = p
    q_len = np.array([len(p) for p in q_pts], dtype=int)
    b_len = np.array([len(p) for p in b_pts], dtype=int)

    result = np.zeros((len(q_pts), len(b_pts)))
    q_idx, b_idx = np.meshgrid(np.arange(len(q_pts)), np.arange(len(b_pts)), indexing="ij")
    q_idx = q_idx.ravel()
    b_idx = b_idx.ravel()
    for start in range(0, q_idx.size, chunk_size):
        qi = q_idx[start : start + chunk_size]
        bi = b_idx[start : start + chunk_size]
        dists = spec.batch(q_stack[qi], b_stack[bi], q_len[qi], b_len[bi])
        result[qi, bi] = dists
    return result
