"""Dynamic Time Warping, including the alignment used in Figure 1.

DTW matches every point of one trajectory to one or more points of the
other while preserving order, and sums the matched point distances.  The
paper's motivating example (Figure 1) shows these match pairs; the
:func:`dtw_alignment` backtracking here regenerates them.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ._dp import dtw_batch
from .point import as_points, cross_dist

__all__ = ["dtw", "dtw_matrix", "dtw_alignment"]


def dtw(a, b) -> float:
    """Exact DTW distance between two trajectories."""
    a = as_points(a)
    b = as_points(b)
    cost = cross_dist(a, b)[None, :, :]
    return float(dtw_batch(cost, np.array([len(a)]), np.array([len(b)]))[0])


def dtw_matrix(a, b) -> np.ndarray:
    """Full (m+1) x (n+1) DTW dynamic-programming table.

    Row/column 0 are the infinity borders; ``result[m, n]`` is the distance.
    Exposed for tests and for alignment backtracking.
    """
    a = as_points(a)
    b = as_points(b)
    m, n = len(a), len(b)
    cost = cross_dist(a, b)
    table = np.full((m + 1, n + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            best = min(table[i - 1, j], table[i, j - 1], table[i - 1, j - 1])
            table[i, j] = cost[i - 1, j - 1] + best
    return table


def dtw_alignment(a, b) -> List[Tuple[int, int]]:
    """Optimal DTW point-match pairs (the red lines of Figure 1).

    Returns index pairs (i, j), ordered from the start of the trajectories,
    such that point i of ``a`` is matched to point j of ``b`` on the optimal
    warping path.
    """
    a = as_points(a)
    b = as_points(b)
    table = dtw_matrix(a, b)
    i, j = len(a), len(b)
    path: List[Tuple[int, int]] = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (
            (table[i - 1, j - 1], i - 1, j - 1),
            (table[i - 1, j], i - 1, j),
            (table[i, j - 1], i, j - 1),
        )
        _, i, j = min(moves, key=lambda t: t[0])
    path.reverse()
    return path
