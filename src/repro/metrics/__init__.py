"""Exact trajectory distance metrics (the paper's ground-truth substrate).

Implements the six metrics evaluated in the paper — DTW, discrete Fréchet,
Hausdorff, ERP, EDR and LCSS — with scalar per-pair functions, batched
anti-diagonal DP engines, and pairwise/cross matrix builders.
"""

from .dtw import dtw, dtw_alignment, dtw_matrix
from .edr import edr
from .erp import erp
from .frechet import frechet
from .hausdorff import hausdorff
from .lcss import lcss, lcss_length
from .matrix import cross_distance_matrix, pad_trajectories, pairwise_distance_matrix
from .point import as_points, cross_dist
from .pruning import PrunedSearchStats, lb_kim, lb_pointwise, pruned_dtw_topk
from .registry import METRIC_NAMES, MetricSpec, get_metric

__all__ = [
    "dtw",
    "dtw_matrix",
    "dtw_alignment",
    "frechet",
    "hausdorff",
    "erp",
    "edr",
    "lcss",
    "lcss_length",
    "pairwise_distance_matrix",
    "cross_distance_matrix",
    "pad_trajectories",
    "as_points",
    "cross_dist",
    "MetricSpec",
    "get_metric",
    "METRIC_NAMES",
    "lb_kim",
    "lb_pointwise",
    "pruned_dtw_topk",
    "PrunedSearchStats",
]
