"""Hausdorff distance between trajectories viewed as point sets."""

from __future__ import annotations

from .point import as_points, cross_dist

__all__ = ["hausdorff"]


def hausdorff(a, b) -> float:
    """Symmetric Hausdorff distance.

    max( max_i min_j d(a_i, b_j), max_j min_i d(a_i, b_j) ) — order of points
    is ignored, unlike DTW/Fréchet.
    """
    a = as_points(a)
    b = as_points(b)
    dists = cross_dist(a, b)
    forward = dists.min(axis=1).max()
    backward = dists.min(axis=0).max()
    return float(max(forward, backward))
