"""Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005) — Eq. 2."""

from __future__ import annotations

import numpy as np

from ._dp import edr_batch
from .point import as_points, cross_dist

__all__ = ["edr", "DEFAULT_EPS"]

#: Matching tolerance.  Trajectories in this repo are normalised to roughly
#: unit scale, so 0.25 plays the role the literature's quarter-std threshold
#: plays on raw GPS tracks.
DEFAULT_EPS = 0.25


def edr(a, b, eps: float = DEFAULT_EPS) -> float:
    """EDR distance: count of edit operations with an eps matching tolerance.

    Two points "match" (cost 0) when within ``eps``; otherwise substitution,
    insertion and deletion all cost 1.
    """
    if eps <= 0:
        raise ValueError("EDR eps must be positive")
    a = as_points(a)
    b = as_points(b)
    match = (cross_dist(a, b) <= eps)[None, :, :]
    return float(edr_batch(match, np.array([len(a)]), np.array([len(b)]))[0])
