"""Lower-bound pruning for exact DTW top-k search.

The paper's introduction contrasts learning-based approximation with
non-learning methods built on "indexing and pruning strategy".  This module
implements that baseline for DTW: cheap lower bounds filter candidates so
the full dynamic program runs only when a candidate could enter the top-k.
The pruned search is exact — the test suite asserts it returns precisely
the brute-force answer.

Bounds used (both admissible for DTW with Euclidean point costs):

- ``lb_kim``: every warping path matches the two start points and the two
  end points, so ``d(a_1, b_1) + d(a_m, b_n)`` (or the max of the two when
  either trajectory has a single point) lower-bounds the distance.
- ``lb_pointwise``: every point of each trajectory appears in at least one
  matched pair, so the sum over points of the distance to the *closest*
  point of the other trajectory is a lower bound; we take the larger of
  the two directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .dtw import dtw
from .point import as_points, cross_dist

__all__ = ["lb_kim", "lb_pointwise", "pruned_dtw_topk", "PrunedSearchStats"]


def lb_kim(a, b) -> float:
    """First/last-point lower bound for DTW."""
    a = as_points(a)
    b = as_points(b)
    first = float(np.linalg.norm(a[0] - b[0]))
    last = float(np.linalg.norm(a[-1] - b[-1]))
    if len(a) == 1 and len(b) == 1:
        return first
    # With more than one cell on the path both endpoint matches contribute.
    return first + last if (len(a) > 1 or len(b) > 1) else first


def lb_pointwise(a, b) -> float:
    """Closest-point-sum lower bound for DTW.

    Every point of ``a`` occurs in >= 1 matched pair whose cost is at least
    its distance to the nearest point of ``b`` (and symmetrically), so both
    directed sums lower-bound DTW; return the larger.
    """
    a = as_points(a)
    b = as_points(b)
    dists = cross_dist(a, b)
    return float(max(dists.min(axis=1).sum(), dists.min(axis=0).sum()))


@dataclass
class PrunedSearchStats:
    """Bookkeeping from one pruned top-k query."""

    candidates: int
    pruned_by_kim: int
    pruned_by_pointwise: int
    dtw_evaluations: int

    @property
    def prune_rate(self) -> float:
        """Fraction of candidates skipped without a full DTW evaluation."""
        if self.candidates == 0:
            return 0.0
        return 1.0 - self.dtw_evaluations / self.candidates


def pruned_dtw_topk(
    query,
    database: Sequence,
    k: int,
) -> Tuple[List[int], PrunedSearchStats]:
    """Exact DTW top-k of ``query`` against ``database`` with LB pruning.

    Returns the indices of the k nearest database trajectories (ascending
    DTW) together with pruning statistics.  Exactness: a candidate is only
    skipped when a lower bound already exceeds the current k-th best
    distance.
    """
    if not 1 <= k <= len(database):
        raise ValueError(f"k must be in [1, {len(database)}]")
    query = as_points(query)

    # Seed the heap with the first k candidates computed exactly.
    best: List[Tuple[float, int]] = []
    stats = PrunedSearchStats(len(database), 0, 0, 0)
    order = np.argsort([abs(len(as_points(t)) - len(query)) for t in database])
    for idx in order:
        candidate = database[int(idx)]
        if len(best) >= k:
            threshold = max(d for d, _ in best)
            if lb_kim(query, candidate) > threshold:
                stats.pruned_by_kim += 1
                continue
            if lb_pointwise(query, candidate) > threshold:
                stats.pruned_by_pointwise += 1
                continue
        stats.dtw_evaluations += 1
        dist = dtw(query, candidate)
        if len(best) < k:
            best.append((dist, int(idx)))
        else:
            worst = max(range(k), key=lambda i: best[i][0])
            if dist < best[worst][0]:
                best[worst] = (dist, int(idx))
    best.sort()
    return [i for _, i in best], stats
