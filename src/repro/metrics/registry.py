"""Metric registry: one uniform handle per distance metric.

The learning models are metric-agnostic (the paper's key "generic" claim);
experiments select a metric by name.  A :class:`MetricSpec` bundles the
scalar two-trajectory function with a batched implementation used to build
ground-truth distance matrices quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from . import _dp
from .dtw import dtw
from .edr import DEFAULT_EPS as EDR_EPS
from .edr import edr
from .erp import DEFAULT_GAP, erp
from .frechet import frechet
from .hausdorff import hausdorff
from .lcss import DEFAULT_EPS as LCSS_EPS
from .lcss import lcss

__all__ = ["MetricSpec", "get_metric", "METRIC_NAMES"]

#: The six distance metrics evaluated in the paper.
METRIC_NAMES: Tuple[str, ...] = ("dtw", "frechet", "hausdorff", "erp", "edr", "lcss")


def _batch_cost(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Cross point-distance tensor for stacked pairs: (P, L, 2) x2 -> (P, L, L)."""
    diff = points_a[:, :, None, :] - points_b[:, None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def _hausdorff_batch(points_a, points_b, len_a, len_b) -> np.ndarray:
    dists = _batch_cost(points_a, points_b)
    pairs, la_max, lb_max = dists.shape
    col_idx = np.arange(lb_max)
    row_idx = np.arange(la_max)
    invalid_b = col_idx[None, None, :] >= np.asarray(len_b)[:, None, None]
    invalid_a = row_idx[None, :, None] >= np.asarray(len_a)[:, None, None]
    masked_min = np.where(invalid_b, np.inf, dists)
    forward = np.where(invalid_a[:, :, 0], -np.inf, masked_min.min(axis=2)).max(axis=1)
    masked_min2 = np.where(invalid_a, np.inf, dists)
    backward = np.where(invalid_b[:, 0, :], -np.inf, masked_min2.min(axis=1)).max(axis=1)
    return np.maximum(forward, backward)


@dataclass(frozen=True)
class MetricSpec:
    """A named trajectory distance metric with scalar and batched forms.

    Attributes
    ----------
    name:
        Registry key ("dtw", "frechet", "hausdorff", "erp", "edr", "lcss").
    scalar:
        ``f(a, b) -> float`` on raw (n, 2) arrays.
    batch:
        ``f(points_a, points_b, len_a, len_b) -> (P,)`` on padded stacks.
    params:
        The resolved metric parameters (eps / gap) for provenance.
    """

    name: str
    scalar: Callable[[np.ndarray, np.ndarray], float]
    batch: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    params: Dict[str, object] = field(default_factory=dict)

    def __call__(self, a, b) -> float:
        return self.scalar(a, b)


def get_metric(
    name: str,
    eps: Optional[float] = None,
    gap: Optional[Tuple[float, float]] = None,
) -> MetricSpec:
    """Look up a metric by name, resolving its parameters.

    Parameters
    ----------
    name:
        One of :data:`METRIC_NAMES` (case-insensitive).
    eps:
        Matching tolerance for EDR/LCSS (ignored by the others).
    gap:
        Gap reference point for ERP (ignored by the others).
    """
    key = name.lower()
    if key == "dtw":

        def batch(pa, pb, la, lb):
            return _dp.dtw_batch(_batch_cost(pa, pb), la, lb)

        return MetricSpec("dtw", dtw, batch)

    if key == "frechet":

        def batch(pa, pb, la, lb):
            return _dp.frechet_batch(_batch_cost(pa, pb), la, lb)

        return MetricSpec("frechet", frechet, batch)

    if key == "hausdorff":
        return MetricSpec("hausdorff", hausdorff, _hausdorff_batch)

    if key == "erp":
        gap_point = np.asarray(gap if gap is not None else DEFAULT_GAP, dtype=float)

        def scalar(a, b):
            return erp(a, b, gap=gap_point)

        def batch(pa, pb, la, lb):
            cost = _batch_cost(pa, pb)
            gap_a = np.sqrt(((pa - gap_point) ** 2).sum(axis=-1))
            gap_b = np.sqrt(((pb - gap_point) ** 2).sum(axis=-1))
            return _dp.erp_batch(cost, gap_a, gap_b, la, lb)

        return MetricSpec("erp", scalar, batch, params={"gap": tuple(gap_point)})

    if key == "edr":
        tol = eps if eps is not None else EDR_EPS

        def scalar(a, b):
            return edr(a, b, eps=tol)

        def batch(pa, pb, la, lb):
            match = _batch_cost(pa, pb) <= tol
            return _dp.edr_batch(match, la, lb)

        return MetricSpec("edr", scalar, batch, params={"eps": tol})

    if key == "lcss":
        tol = eps if eps is not None else LCSS_EPS

        def scalar(a, b):
            return lcss(a, b, eps=tol)

        def batch(pa, pb, la, lb):
            match = _batch_cost(pa, pb) <= tol
            counts = _dp.lcss_batch(match, la, lb)
            shorter = np.minimum(np.asarray(la), np.asarray(lb))
            return 1.0 - counts / shorter

        return MetricSpec("lcss", scalar, batch, params={"eps": tol})

    raise KeyError(f"unknown metric {name!r}; choose from {METRIC_NAMES}")
