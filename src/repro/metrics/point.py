"""Point-level distance kernels shared by all trajectory metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["as_points", "cross_dist", "dist_to_point"]


def as_points(traj) -> np.ndarray:
    """Coerce a trajectory-like object into an (n, 2) float array.

    Accepts raw arrays, lists of (lon, lat) pairs, or objects exposing a
    ``points`` attribute (``repro.data.Trajectory``).
    """
    if hasattr(traj, "points"):
        traj = traj.points
    arr = np.asarray(traj, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"trajectory must have shape (n, 2), got {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("trajectory must contain at least one point")
    return arr


def cross_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between the points of two trajectories.

    ``a`` is (m, 2), ``b`` is (n, 2); result is (m, n).
    """
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def dist_to_point(a: np.ndarray, g) -> np.ndarray:
    """Distance of every point of ``a`` to a fixed reference point ``g``."""
    g = np.asarray(g, dtype=np.float64)
    return np.sqrt(((a - g) ** 2).sum(axis=-1))
