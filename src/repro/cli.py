"""Command-line interface for the TMN reproduction.

Subcommands::

    repro-tmn generate   --kind porto --n 200 --seed 0 --out corpus
    repro-tmn train      --kind porto --metric dtw --model TMN --out ckpt \
                         [--profile] [--log-json runs/run.jsonl]
    repro-tmn evaluate   --checkpoint ckpt --kind porto --metric dtw
    repro-tmn experiment table2 --dataset porto --metric dtw [--fast]
    repro-tmn report     runs/run.jsonl
    repro-tmn serve-bench --queries 500 --workers 4 [--json] \
                         [--trace-log traces.jsonl] [--metrics-out m.json]
    repro-tmn profile-serve --speedscope profile.json [--folded profile.folded]
    repro-tmn metrics    [--demo]
    repro-tmn trace      [traces.jsonl] [--demo] [--top 3]
    repro-tmn bench-diff BENCH_serve.json benchmarks/baselines/BENCH_serve.json \
                         [--json] [--tolerance METRIC=REL ...]
    repro-tmn lint       [paths ...] [--format text|json|sarif] \
                         [--rules R001,N001] [--baseline lint_baseline.json \
                         [--update-baseline]]

``experiment`` regenerates one paper table/figure block and prints the
paper-style text table; ``--fast`` switches from BENCH to SMOKE scale.
``serve-bench`` drives the concurrent serving layer (micro-batching
encode queue + embedding cache + HNSW top-k) under a worker pool and
reports throughput against naive one-request-one-forward encoding;
``--trace-log`` mirrors every request trace to JSONL for ``trace``.
``train --log-json`` persists a JSONL run record (config, seed, per-epoch
loss/grad-norm/timing), ``--profile`` times every autograd op,
``--sample-hz`` runs the wall-clock stack sampler over the fit and
``--track-memory`` adds tracemalloc allocation accounting;
``report`` pretty-prints a run record (profiles render under one
"hot paths" section).  ``profile-serve`` runs the serving workload plus
an exact-metric phase under the stack sampler and writes a
speedscope-loadable flamegraph JSON (https://www.speedscope.app/).  ``metrics`` renders the metrics
registry in Prometheus exposition format; ``trace`` prints critical-path
trees for the slowest recorded traces; ``bench-diff`` gates a fresh
bench JSON against a committed baseline with per-metric tolerances
(``make bench-check``).  ``lint`` runs the project's static-analysis
pass (``repro.analysis``) and exits non-zero when violations are found.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

import numpy as np

from .core import Trainer, pair_distance_matrix
from .data import make_dataset, prepare
from .eval import evaluate_rankings
from .experiments import (
    BENCH,
    MODEL_NAMES,
    SMOKE,
    build_model,
    effectiveness_table,
    efficiency_table,
    format_effectiveness,
    format_efficiency,
    format_sweep,
    load_corpus,
    run_model,
)
from .io import load_model, save_dataset, save_model
from .metrics import METRIC_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the repro-tmn CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-tmn",
        description="Reproduction of TMN: Trajectory Matching Networks (ICDE 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic corpus")
    gen.add_argument("--kind", choices=("geolife", "porto"), default="porto")
    gen.add_argument("--n", type=int, default=200)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output path (.npz)")
    gen.add_argument("--raw", action="store_true", help="skip preprocessing")

    train = sub.add_parser("train", help="train a model on a synthetic corpus")
    train.add_argument("--kind", choices=("geolife", "porto"), default="porto")
    train.add_argument("--metric", choices=METRIC_NAMES, default="dtw")
    train.add_argument("--model", choices=MODEL_NAMES, default="TMN")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--fast", action="store_true", help="SMOKE scale")
    train.add_argument("--out", required=True, help="checkpoint path prefix")
    train.add_argument(
        "--profile",
        action="store_true",
        help="profile autograd ops during training and print the op table",
    )
    train.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="write a JSONL run record (config, seed, per-epoch stats)",
    )
    train.add_argument(
        "--sample-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="run the wall-clock stack sampler over the fit at HZ samples/s",
    )
    train.add_argument(
        "--track-memory",
        action="store_true",
        help="tracemalloc allocation accounting per epoch (and per op with --profile)",
    )

    ev = sub.add_parser("evaluate", help="evaluate a checkpoint on a fresh test split")
    ev.add_argument("--checkpoint", required=True)
    ev.add_argument("--kind", choices=("geolife", "porto"), default="porto")
    ev.add_argument("--metric", choices=METRIC_NAMES, default="dtw")
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument("--fast", action="store_true")

    exp = sub.add_parser("experiment", help="regenerate one paper table/figure")
    exp.add_argument(
        "which",
        choices=("table2", "table3", "table4", "fig3", "fig4", "fig5"),
    )
    exp.add_argument("--dataset", choices=("geolife", "porto"), default="porto")
    exp.add_argument("--metric", choices=METRIC_NAMES, default="dtw")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--fast", action="store_true")

    report = sub.add_parser("report", help="pretty-print a JSONL run record")
    report.add_argument("path", help="run record written by train --log-json")

    serve = sub.add_parser(
        "serve-bench", help="benchmark the concurrent similarity-serving layer"
    )
    serve.add_argument("--kind", choices=("geolife", "porto"), default="porto")
    serve.add_argument("--n-db", type=int, default=60, help="indexed trajectories")
    serve.add_argument("--queries", type=int, default=500, help="cache-miss queries")
    serve.add_argument("--workers", type=int, default=4, help="caller threads")
    serve.add_argument("--batch-size", type=int, default=32, help="max encode batch")
    serve.add_argument(
        "--max-wait-ms", type=float, default=4.0, help="batch flush deadline"
    )
    serve.add_argument("--hidden-dim", type=int, default=32, help="encoder width")
    serve.add_argument(
        "--traj-len",
        type=int,
        default=None,
        help="points per trajectory (default: the corpus default length)",
    )
    serve.add_argument("--k", type=int, default=5, help="neighbours per query")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline (missed => degraded exact answer)",
    )
    serve.add_argument(
        "--json", action="store_true", help="print the result dict as JSON"
    )
    serve.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help="mirror every request trace to a JSONL file (view: repro-tmn trace)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics-registry snapshot as JSON (also on SLO breach)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="benchmark the sharded process-pool tier with N worker processes "
        "instead of the single-process server (ignores --kind/--hidden-dim/"
        "--traj-len/--deadline-ms: the sharded bench uses the deterministic "
        "feature encoder over random walks; --trace-log persists the "
        "stitched cross-process traces)",
    )
    serve.add_argument(
        "--shard-strategy",
        choices=("round-robin", "hash"),
        default="round-robin",
        help="shard assignment for --shards (content-hash or round-robin)",
    )
    serve.add_argument(
        "--shard-deadline-ms",
        type=float,
        default=5000.0,
        help="per-shard scatter-gather deadline for --shards (missed shards "
        "fall back to an exact coordinator-side scan)",
    )

    prof = sub.add_parser(
        "profile-serve",
        help="profile the serving workload with the wall-clock stack sampler",
    )
    prof.add_argument("--kind", choices=("geolife", "porto"), default="porto")
    prof.add_argument("--n-db", type=int, default=60, help="indexed trajectories")
    prof.add_argument("--queries", type=int, default=300, help="cache-miss queries")
    prof.add_argument("--workers", type=int, default=4, help="caller threads")
    prof.add_argument("--hz", type=float, default=97.0, help="sampling frequency")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--exact-pairs",
        type=int,
        default=24,
        help="trajectories in the exact DP-metric phase (0 disables it)",
    )
    prof.add_argument(
        "--speedscope",
        default=None,
        metavar="PATH",
        help="write a speedscope-loadable flamegraph JSON (speedscope.app)",
    )
    prof.add_argument(
        "--folded",
        default=None,
        metavar="PATH",
        help="write collapsed stacks (flamegraph.pl / inferno format)",
    )
    prof.add_argument(
        "--top", type=int, default=12, help="rows in the printed top-frames table"
    )

    metrics = sub.add_parser(
        "metrics", help="render the metrics registry in Prometheus text format"
    )
    metrics.add_argument(
        "--demo",
        action="store_true",
        help="run a small seeded serve workload first so there is data to show",
    )

    trace = sub.add_parser(
        "trace", help="print critical-path trees for the slowest recorded traces"
    )
    trace.add_argument(
        "path",
        nargs="?",
        default=None,
        help="JSONL trace log (from serve-bench --trace-log); default: in-process ring",
    )
    trace.add_argument(
        "--demo",
        action="store_true",
        help="run a small seeded serve workload first so the ring has traces",
    )
    trace.add_argument(
        "--top", type=int, default=3, help="how many slowest traces to print"
    )
    trace.add_argument(
        "--name", default=None, help="only consider traces with this name"
    )
    trace.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="N",
        help="only consider stitched traces that touched shard N (matches "
        "grafted worker-side spans and the coordinator's shard-N spans)",
    )
    trace.add_argument(
        "--demo-shards",
        type=int,
        default=0,
        metavar="N",
        help="run a small seeded N-shard serve workload first so the ring "
        "has stitched cross-process traces (overrides --demo)",
    )

    diff = sub.add_parser(
        "bench-diff", help="compare a bench JSON against a committed baseline"
    )
    diff.add_argument("current", help="freshly produced bench JSON")
    diff.add_argument("baseline", help="committed baseline bench JSON")
    diff.add_argument(
        "--json", action="store_true", help="print the full diff as JSON"
    )
    diff.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=REL",
        help="override the relative tolerance for one metric (repeatable)",
    )

    lint = sub.add_parser("lint", help="run the project static-analysis pass")
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--tests", default=None, help="tests directory for R003")
    lint.add_argument("--baseline", default=None, help="JSON suppression file")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                      dest="fmt", help="report format (default: text)")
    lint.add_argument("--json", action="store_true",
                      help="shorthand for --format json")
    lint.add_argument("--rules", default=None, help="comma-separated rule subset")
    lint.add_argument("--scope", default=None,
                      help="rule family to run (concurrency, stability, ...)")
    lint.add_argument("--fail-on", choices=("error", "warning"), default="warning",
                      dest="fail_on",
                      help="lowest severity that fails the run (default: warning)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="re-snapshot current findings into the --baseline file")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table (id, family, severity, doc) and exit")
    return parser


def _scale(fast: bool):
    return SMOKE if fast else BENCH


def _cmd_generate(args) -> int:
    ds = make_dataset(args.kind, args.n, seed=args.seed)
    if not args.raw:
        ds, _ = prepare(ds)
    path = save_dataset(ds, args.out)
    print(f"wrote {len(ds)} trajectories to {path}")
    return 0


def _cmd_train(args) -> int:
    from .obs import (
        OpProfiler,
        RunWriter,
        StackSampler,
        format_op_table,
        format_top_frames,
    )

    scale = _scale(args.fast)
    corpus = load_corpus(args.kind, scale, seed=args.seed)
    model, config = build_model(args.model, scale, seed=args.seed)
    if args.epochs:
        config = config.with_updates(epochs=args.epochs)
        model = type(model)(config)
    trainer = Trainer(model, config, metric=args.metric)

    writer = None
    if args.log_json:
        writer = RunWriter(
            args.log_json,
            name=f"{args.model}-{args.kind}-{args.metric}",
            config=dataclasses.asdict(config),
            seed=args.seed,
            metric=args.metric,
        )
    profiler = OpProfiler(track_memory=args.track_memory) if args.profile else None
    sampler = StackSampler(hz=args.sample_hz) if args.sample_hz else None
    try:
        if profiler is not None:
            profiler.enable()
        if sampler is not None:
            sampler.start()
        history = trainer.fit(
            corpus.train_points,
            verbose=True,
            on_epoch=writer.write_epoch if writer else None,
            track_memory=args.track_memory,
        )
    finally:
        if sampler is not None:
            sampler.stop()
        if profiler is not None:
            profiler.disable()
    if writer is not None:
        from .obs import get_registry

        writer.finish(
            final_loss=history.final_loss,
            op_profile=profiler.snapshot() if profiler else None,
            sample_profile=sampler.snapshot() if sampler else None,
            metrics=get_registry().snapshot(),
        )
    if sampler is not None:
        print(
            f"sampled {sampler.samples} stack(s) over {sampler.seconds:.2f}s "
            f"at {sampler.hz:g} hz:"
        )
        print(format_top_frames(sampler.merged_stacks()))
    if profiler is not None:
        print(format_op_table(profiler.snapshot()))
    path = save_model(model, args.out)
    print(f"final loss {history.final_loss:.5f}; checkpoint at {path}")
    return 0


def _cmd_evaluate(args) -> int:
    scale = _scale(args.fast)
    corpus = load_corpus(args.kind, scale, seed=args.seed)
    model = load_model(args.checkpoint)
    model.prepare(corpus.train_points)  # rebuild corpus-level structures
    pred = pair_distance_matrix(model, corpus.test_points)
    scores = evaluate_rankings(
        corpus.test_distances(args.metric), pred, hr_ks=(5, 10), recall=(5, 10)
    )
    for key, value in scores.items():
        print(f"{key}: {value:.4f}")
    return 0


def _cmd_experiment(args) -> int:
    scale = _scale(args.fast)
    corpus = load_corpus(args.dataset, scale, seed=args.seed)
    if args.which == "table2":
        results = effectiveness_table(corpus, [args.metric], scale)
        print(format_effectiveness(results, [args.metric]))
    elif args.which == "table3":
        rows = efficiency_table(corpus, scale)
        print(format_efficiency(rows))
    elif args.which == "table4":
        for name in ("TMN", "TMN-kd"):
            r = run_model(name, corpus, args.metric, scale)
            print(f"{name:8s} {r.scores}")
    elif args.which == "fig3":
        for name in ("TMN", "TMN-qerror"):
            r = run_model(name, corpus, args.metric, scale)
            print(f"{name:12s} {r.scores}")
    elif args.which == "fig4":
        from .experiments import ascii_line_chart

        dims = (8, 16, 32)
        results = [
            run_model("TMN", corpus, args.metric, scale, config_overrides={"hidden_dim": d}).scores
            for d in dims
        ]
        print(format_sweep("hidden dimension sweep", dims, results))
        print()
        print(
            ascii_line_chart(
                "Figure 4a (ASCII): HR-k vs hidden dimension",
                dims,
                {key: [r[key] for r in results] for key in results[0]},
            )
        )
    elif args.which == "fig5":
        for name in ("TMN", "TMN-noSub"):
            r = run_model(name, corpus, args.metric, scale)
            print(f"{name:10s} {r.scores}")
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    from .serve import format_serve_bench, run_serve_bench

    if args.shards > 0:
        from .serve import format_shard_bench, run_shard_bench

        result = run_shard_bench(
            n_db=args.n_db,
            n_queries=args.queries,
            shards=args.shards,
            workers=args.workers,
            k=args.k,
            batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            shard_deadline_s=args.shard_deadline_ms / 1000.0,
            strategy=args.shard_strategy,
            seed=args.seed,
            metrics_out=args.metrics_out,
            trace_log=args.trace_log,
        )
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            print(format_shard_bench(result))
        return 0 if result.dropped == 0 else 1

    deadline = args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    result = run_serve_bench(
        n_db=args.n_db,
        n_queries=args.queries,
        workers=args.workers,
        batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        hidden_dim=args.hidden_dim,
        kind=args.kind,
        k=args.k,
        seed=args.seed,
        deadline_s=deadline,
        traj_len=args.traj_len,
        trace_log=args.trace_log,
        metrics_out=args.metrics_out,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_serve_bench(result))
    return 0 if result.dropped == 0 else 1


def _cmd_profile_serve(args) -> int:
    from .data import make_dataset
    from .metrics import get_metric, pairwise_distance_matrix
    from .obs import StackSampler, format_top_frames, get_tracer
    from .serve import format_serve_bench, run_serve_bench

    sampler = StackSampler(hz=args.hz)
    with sampler:
        result = run_serve_bench(
            n_db=args.n_db,
            n_queries=args.queries,
            workers=args.workers,
            kind=args.kind,
            seed=args.seed,
            enforce_slos=False,
        )
        if args.exact_pairs:
            # An explicit exact-metric phase: the serving path is
            # embedding-based, so without this the DP kernels (the very
            # code ROADMAP 2 wants to optimise) would never appear in
            # the profile.  Runs under its own trace so its samples are
            # attributed to the serve.exact-metric phase.
            exact = make_dataset(args.kind, args.exact_pairs, seed=args.seed)
            points = [t.points for t in exact]
            with get_tracer().trace("serve.exact-metric", n=len(points)):
                pairwise_distance_matrix(points, get_metric("dtw"))
    print(format_serve_bench(result))
    print()
    print(
        f"profile: {sampler.samples} sample(s) over {sampler.seconds:.2f}s "
        f"at {args.hz:g} hz"
    )
    print(format_top_frames(sampler.merged_stacks(), n=args.top))
    if args.speedscope:
        path = sampler.write_speedscope(args.speedscope)
        print(f"speedscope profile written to {path} (open at speedscope.app)")
    if args.folded:
        path = sampler.write_folded(args.folded)
        print(f"folded stacks written to {path}")
    return 0 if sampler.samples else 1


def _run_demo_workload() -> None:
    """A small seeded serve run so metrics/trace have real data to show."""
    from .serve import run_serve_bench

    run_serve_bench(n_db=12, n_queries=48, workers=4, naive_queries=4, seed=0)


def _run_demo_shard_workload(shards: int) -> None:
    """A small seeded sharded run so the ring has stitched traces."""
    from .serve import run_shard_bench

    run_shard_bench(
        n_db=48, n_queries=24, shards=shards, workers=2, seed=0,
        enforce_slos=False,
    )


def _trace_touches_shard(trace, shard: int) -> bool:
    """Whether a stitched trace gathered from (or grafted spans of) ``shard``."""
    marker = f"shard-{shard}"
    for event in trace.events:
        if event.get("shard") == shard or event.get("name") == marker:
            return True
    return False


def _cmd_metrics(args) -> int:
    from .obs import get_registry, render_exposition

    if args.demo:
        _run_demo_workload()
    print(render_exposition(get_registry()), end="")
    return 0


def _cmd_trace(args) -> int:
    from .obs import format_trace, get_tracer, read_trace_log

    if args.demo_shards > 0:
        _run_demo_shard_workload(args.demo_shards)
    elif args.demo:
        _run_demo_workload()
    if args.path is not None:
        try:
            traces = read_trace_log(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.name is not None:
            traces = [t for t in traces if t.name == args.name]
    else:
        traces = get_tracer().recent(name=args.name)
    if args.shard is not None:
        traces = [t for t in traces if _trace_touches_shard(t, args.shard)]
    if not traces:
        hint = " (try --demo, or serve-bench --trace-log)" if args.path is None else ""
        print(f"no traces recorded{hint}")
        return 1
    slowest = sorted(traces, key=lambda t: t.duration, reverse=True)[: args.top]
    blocks = [format_trace(t, deadline_s=t.attrs.get("deadline_s")) for t in slowest]
    print(f"{len(traces)} trace(s); slowest {len(slowest)}:\n")
    print("\n\n".join(blocks))
    return 0


def _cmd_bench_diff(args) -> int:
    import json

    from .obs import compare_bench_files

    overrides = {}
    for spec in args.tolerance:
        metric, _, rel = spec.partition("=")
        if not metric or not rel:
            print(f"error: bad --tolerance {spec!r} (want METRIC=REL)", file=sys.stderr)
            return 2
        try:
            overrides[metric] = float(rel)
        except ValueError:
            print(f"error: bad --tolerance value {rel!r}", file=sys.stderr)
            return 2
    try:
        diff = compare_bench_files(args.current, args.baseline, overrides=overrides)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.format_text())
    return 0 if diff.ok else 1


def _cmd_report(args) -> int:
    from .obs import format_run, read_run

    try:
        record = read_run(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_run(record))
    return 0


def _cmd_lint(args) -> int:
    from .analysis import run_analysis, write_baseline

    if getattr(args, "list_rules", False):
        from .analysis import format_rule_table
        from .analysis import rules as _rules  # noqa: F401  (registers the catalogue)

        print(format_rule_table())
        return 0
    rules = [r.strip() for r in args.rules.split(",")] if args.rules else None
    update = getattr(args, "update_baseline", False)
    if update and not args.baseline:
        print("error: --update-baseline requires --baseline PATH", file=sys.stderr)
        return 2
    try:
        report = run_analysis(
            args.paths,
            tests_dir=args.tests,
            # When refreshing the baseline, run unfiltered so the snapshot
            # captures every current finding, not just the unsuppressed ones.
            baseline=None if update else args.baseline,
            rules=rules,
            scope=args.scope,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if update:
        write_baseline(args.baseline, report.violations)
        print(f"wrote {len(report.violations)} suppression(s) to {args.baseline}")
        return 0
    fmt = "json" if args.json else args.fmt
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(report.to_sarif())
    else:
        print(report.format_text())
    return 0 if not report.failing(args.fail_on) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "serve-bench": _cmd_serve_bench,
        "profile-serve": _cmd_profile_serve,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "bench-diff": _cmd_bench_diff,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
