"""Training objectives (Section IV-D).

``L = L_entire + L_sub`` where ``L_entire`` (Eq. 14) is a rank-weighted MSE
between predicted and ground-truth similarity of whole trajectories, and
``L_sub`` (Eq. 15) repeats the comparison on prefix sub-trajectories.  The
Q-error loss (Figure 3 comparison) is provided as an alternative.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, clip, maximum

__all__ = ["weighted_mse_loss", "qerror_loss", "pair_loss"]


def weighted_mse_loss(pred_sim: Tensor, true_sim: np.ndarray, weights: np.ndarray) -> Tensor:
    """Rank-weighted mean squared error (Eq. 14).

    Parameters
    ----------
    pred_sim:
        Predicted similarities, shape (B,), values in (0, 1].
    true_sim:
        Ground-truth similarities ``exp(-alpha * D)``, shape (B,).
    weights:
        Rank weights ``w_as`` per pair, shape (B,).
    """
    true_sim = np.asarray(true_sim, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if pred_sim.shape != true_sim.shape or pred_sim.shape != weights.shape:
        raise ValueError(
            f"shape mismatch: pred {pred_sim.shape}, true {true_sim.shape}, "
            f"weights {weights.shape}"
        )
    diff = pred_sim - Tensor(true_sim)
    return (Tensor(weights) * diff * diff).mean()


def qerror_loss(
    pred_sim: Tensor,
    true_sim: np.ndarray,
    weights: np.ndarray,
    floor: float = 1e-4,
) -> Tensor:
    """Weighted Q-error loss (Moerkotte et al.): ``max(p, t) / min(p, t)``.

    Similarities are floored at ``floor`` to avoid the exploding ratios the
    paper identifies as Q-error's failure mode ("if the smaller value is too
    small, then the loss may be too large").
    """
    true_sim = np.asarray(true_sim, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if pred_sim.shape != true_sim.shape or pred_sim.shape != weights.shape:
        raise ValueError("pred/true/weights shapes must match")
    pred = clip(pred_sim, floor, None)
    true = Tensor(np.maximum(true_sim, floor))
    ratio_a = pred / true
    ratio_b = true / pred
    q = maximum(ratio_a, ratio_b)
    return (Tensor(weights) * q).mean()


def pair_loss(
    kind: str,
    pred_sim: Tensor,
    true_sim: np.ndarray,
    weights: np.ndarray,
) -> Tensor:
    """Dispatch between the MSE (paper default) and Q-error objectives."""
    if kind == "mse":
        return weighted_mse_loss(pred_sim, true_sim, weights)
    if kind == "qerror":
        return qerror_loss(pred_sim, true_sim, weights)
    raise KeyError(f"unknown loss kind {kind!r}")
