"""Training-pair sampling strategies (Section IV-C).

Two strategies are implemented:

- :class:`RankSampler` — the paper's method: draw 2k random candidates per
  anchor, rank them by true distance, take the closest k as near samples and
  the farthest k as far samples.  Rank-proportional weights
  ``[2n/(n²+n), 2(n-1)/(n²+n), ..., 2/(n²+n)]`` emphasise the most similar
  samples (Section IV-D).
- :class:`KDTreeSampler` — Traj2SimVec's method: simplify every trajectory
  to a fixed-length vector, index the vectors in a k-d tree, and always take
  the anchor's k nearest tree neighbours as near samples.  Swapping this in
  yields the TMN-kd ablation (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..index import KDTree

__all__ = ["PairSample", "RankSampler", "KDTreeSampler", "rank_weights", "simplify_trajectory"]


@dataclass(frozen=True)
class PairSample:
    """One training pair: anchor index, sample index, loss weight, near flag."""

    anchor: int
    sample: int
    weight: float
    is_near: bool


def rank_weights(n: int) -> np.ndarray:
    """The paper's rank-proportional weights for n ranked samples.

    ``[2n, 2(n-1), ..., 2] / (n² + n)`` — sums to 1, biggest weight first.
    """
    if n < 1:
        raise ValueError("need at least one sample to weight")
    ranks = np.arange(n, 0, -1, dtype=float)
    return 2.0 * ranks / (n * n + n)


class RankSampler:
    """The paper's 2k random-candidate ranking sampler.

    Parameters
    ----------
    distances:
        Ground-truth train-set distance matrix ``D`` under the target
        metric (the sampler is metric-aware, unlike Traj2SimVec's).
    sampling_number:
        2k — total candidates per anchor (half become near, half far).
    """

    def __init__(self, distances: np.ndarray, sampling_number: int = 20):
        distances = np.asarray(distances)
        if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
            raise ValueError("distances must be a square matrix")
        if sampling_number % 2 != 0 or sampling_number < 2:
            raise ValueError("sampling_number must be an even integer >= 2")
        if sampling_number >= distances.shape[0]:
            raise ValueError(
                f"sampling_number {sampling_number} too large for "
                f"{distances.shape[0]} training trajectories"
            )
        self.distances = distances
        self.sampling_number = sampling_number

    def sample(self, anchor: int, rng: np.random.Generator) -> List[PairSample]:
        """Draw the paper's near/far pairs for one anchor."""
        n_train = self.distances.shape[0]
        candidates = rng.choice(
            np.setdiff1d(np.arange(n_train), [anchor]),
            size=self.sampling_number,
            replace=False,
        )
        order = np.argsort(self.distances[anchor, candidates], kind="stable")
        ranked = candidates[order]
        half = self.sampling_number // 2
        near, far = ranked[:half], ranked[half:]
        w_near = rank_weights(half)
        # Far samples are ranked by similarity too (closest far sample first).
        w_far = rank_weights(half)
        out = [
            PairSample(anchor, int(s), float(w), True) for s, w in zip(near, w_near)
        ]
        out += [
            PairSample(anchor, int(s), float(w), False) for s, w in zip(far, w_far)
        ]
        return out


def simplify_trajectory(points: np.ndarray, n_segments: int = 10) -> np.ndarray:
    """Compress a trajectory evenly into ``n_segments`` points, flattened.

    Traj2SimVec's preprocessing: each trajectory becomes a fixed-length
    vector so all of them fit in one k-d tree.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    if n_segments < 2:
        raise ValueError("n_segments must be >= 2")
    # Evenly spaced sample positions (inclusive of both ends).
    idx = np.linspace(0, len(points) - 1, n_segments)
    lo = np.floor(idx).astype(int)
    hi = np.ceil(idx).astype(int)
    frac = (idx - lo)[:, None]
    resampled = points[lo] * (1 - frac) + points[hi] * frac
    return resampled.ravel()


class KDTreeSampler:
    """Traj2SimVec's k-d tree sampler (used by TMN-kd and Traj2SimVec).

    Near samples are always the anchor's ``k_neighbors`` nearest neighbours
    in simplified-vector space; far samples are uniform random among the
    rest.  Metric-agnostic by construction — the paper argues this is its
    weakness.
    """

    def __init__(
        self,
        trajectories: Sequence,
        distances: np.ndarray,
        k_neighbors: int = 5,
        n_segments: int = 10,
        n_far: Optional[int] = None,
    ):
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        points_list = [t.points if hasattr(t, "points") else np.asarray(t) for t in trajectories]
        if len(points_list) <= k_neighbors:
            raise ValueError("need more trajectories than k_neighbors")
        self.vectors = np.stack(
            [simplify_trajectory(p, n_segments=n_segments) for p in points_list]
        )
        self.tree = KDTree(self.vectors)
        self.distances = np.asarray(distances)
        self.k_neighbors = k_neighbors
        self.n_far = n_far if n_far is not None else k_neighbors

    def sample(self, anchor: int, rng: np.random.Generator) -> List[PairSample]:
        """Draw this strategy's near/far pairs for one anchor index."""
        _, idx = self.tree.query(self.vectors[anchor], k=self.k_neighbors + 1)
        near = [int(i) for i in idx if i != anchor][: self.k_neighbors]
        n_total = len(self.vectors)
        exclude = set(near) | {anchor}
        pool = np.array([i for i in range(n_total) if i not in exclude])
        far = rng.choice(pool, size=min(self.n_far, len(pool)), replace=False)
        # Order near samples by true distance so rank weights stay meaningful.
        near = sorted(near, key=lambda s: self.distances[anchor, s])
        w_near = rank_weights(len(near))
        far = sorted(far.tolist(), key=lambda s: self.distances[anchor, s])
        w_far = rank_weights(len(far))
        out = [PairSample(anchor, s, float(w), True) for s, w in zip(near, w_near)]
        out += [PairSample(anchor, int(s), float(w), False) for s, w in zip(far, w_far)]
        return out
