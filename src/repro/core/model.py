"""The TMN model (Section IV-B) and the shared pair-model interface.

Every model in the reproduction — TMN and the four baselines — implements
:class:`TrajectoryPairModel`: given a padded pair batch it returns per-step
representations ``O`` of shape (B, T, d) for both sides, from which the
trajectory embedding is the row at each sequence's final real step.  The
trainer and evaluation stack are written against this interface only, so
comparisons are apples-to-apples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, concat, no_grad
from ..data.batching import pair_batch
from ..nn import GRU, LSTM, MLP, LeakyReLU, Linear, Module, cross_match, gather_last
from .config import TMNConfig


def make_rnn(backbone: str, input_size: int, hidden_size: int, rng):
    """Instantiate the configured recurrent backbone (LSTM or GRU)."""
    if backbone == "lstm":
        return LSTM(input_size, hidden_size, rng=rng)
    if backbone == "gru":
        return GRU(input_size, hidden_size, rng=rng)
    raise KeyError(f"unknown backbone {backbone!r}")

__all__ = [
    "TrajectoryPairModel",
    "TMN",
    "make_rnn",
    "pair_distance_matrix",
    "pair_cross_distance_matrix",
]


class TrajectoryPairModel(Module):
    """Interface shared by TMN and every baseline.

    Subclasses implement :meth:`forward_pair`; single-trajectory encoding
    defaults to running the pair forward with the trajectory on both sides
    (correct for siamese models, and the natural reading of TMN's encoder
    whose matching needs a counterpart).
    """

    #: Embedding dimension d; subclasses must set it.
    output_dim: int

    @property
    def requires_pair_interaction(self) -> bool:
        """Whether representations depend on the partner trajectory.

        Siamese baselines encode each trajectory independently, so the
        similarity-search database can be built with one forward pass per
        trajectory.  TMN's matching mechanism makes representations
        pair-dependent, so faithful evaluation runs a forward pass per
        *pair* — the accuracy/efficiency trade-off Table III quantifies.
        """
        return False

    def prepare(self, points_list: Sequence[np.ndarray]) -> None:
        """Hook called once with the training trajectories before fitting.

        Baselines that need corpus-level structures (NeuTraj's grid memory,
        Traj2SimVec's k-d tree) override this; default is a no-op.
        """

    def forward_pair(
        self,
        points_a: np.ndarray,
        lengths_a: np.ndarray,
        mask_a: np.ndarray,
        points_b: np.ndarray,
        lengths_b: np.ndarray,
        mask_b: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """Per-step representations ``(O_a, O_b)`` each of shape (B, T, d)."""
        raise NotImplementedError

    def embed_pair(self, trajs_a: Sequence, trajs_b: Sequence) -> Tuple[Tensor, Tensor]:
        """Final-step embeddings (B, d) for two aligned trajectory lists."""
        pa, la, ma, pb, lb, mb = pair_batch(trajs_a, trajs_b)
        out_a, out_b = self.forward_pair(pa, la, ma, pb, lb, mb)
        return gather_last(out_a, la), gather_last(out_b, lb)

    def encode(self, trajs: Sequence, batch_size: int = 64) -> np.ndarray:
        """Embed trajectories into R^d for the similarity-search database.

        Runs under ``no_grad``; batches are padded independently to keep
        memory bounded.  For pair-interacting models (TMN with matching
        enabled) each trajectory is matched against itself; this is the
        fast approximate path — faithful evaluation uses
        :func:`pair_distance_matrix` instead.
        """
        chunks: List[np.ndarray] = []
        trajs = list(trajs)
        with no_grad():
            for start in range(0, len(trajs), batch_size):
                batch = trajs[start : start + batch_size]
                emb_a, _ = self.embed_pair(batch, batch)
                chunks.append(emb_a.data)
        return np.concatenate(chunks, axis=0)


def pair_distance_matrix(
    model: TrajectoryPairModel,
    trajs: Sequence,
    batch_pairs: int = 256,
) -> np.ndarray:
    """Predicted-distance matrix for top-k search, respecting pair semantics.

    Siamese models are encoded once per trajectory; pair-interacting models
    (TMN) run one forward per trajectory pair over the upper triangle.
    """
    trajs = list(trajs)
    n = len(trajs)
    if n < 2:
        raise ValueError("need at least two trajectories")
    if not model.requires_pair_interaction:
        from ..eval.search import embedding_distance_matrix

        return embedding_distance_matrix(model.encode(trajs))
    result = np.zeros((n, n))
    rows, cols = np.triu_indices(n, k=1)
    with no_grad():
        for start in range(0, rows.size, batch_pairs):
            r = rows[start : start + batch_pairs]
            c = cols[start : start + batch_pairs]
            emb_a, emb_b = model.embed_pair([trajs[i] for i in r], [trajs[j] for j in c])
            dists = np.sqrt(((emb_a.data - emb_b.data) ** 2).sum(axis=1))
            result[r, c] = dists
            result[c, r] = dists
    return result


def pair_cross_distance_matrix(
    model: TrajectoryPairModel,
    queries: Sequence,
    base: Sequence,
    batch_pairs: int = 256,
) -> np.ndarray:
    """Predicted Q x N distance matrix between two collections."""
    queries = list(queries)
    base = list(base)
    if not model.requires_pair_interaction:
        from ..eval.search import embedding_distance_matrix

        return embedding_distance_matrix(model.encode(queries), model.encode(base))
    result = np.zeros((len(queries), len(base)))
    q_idx, b_idx = np.meshgrid(
        np.arange(len(queries)), np.arange(len(base)), indexing="ij"
    )
    q_idx = q_idx.ravel()
    b_idx = b_idx.ravel()
    with no_grad():
        for start in range(0, q_idx.size, batch_pairs):
            qs = q_idx[start : start + batch_pairs]
            bs = b_idx[start : start + batch_pairs]
            emb_a, emb_b = model.embed_pair(
                [queries[i] for i in qs], [base[j] for j in bs]
            )
            result[qs, bs] = np.sqrt(((emb_a.data - emb_b.data) ** 2).sum(axis=1))
    return result


class TMN(TrajectoryPairModel):
    """Trajectory Matching Network (Figure 2, Eq. 4-13).

    Pipeline per side of the pair:

    1. point embedding ``x = LeakyReLU(W0 p + b0)`` into d/2 dims (Eq. 4-5);
    2. matching mechanism: attention match pattern against the *other*
       trajectory and discrepancy ``M = X - P X_other`` (Eq. 6-11);
    3. LSTM over ``[X ⊕ M]`` (Eq. 12);
    4. per-step MLP head producing the final representations ``O`` (Eq. 13).

    With ``config.matching = False`` step 2 is skipped and the LSTM sees
    ``X`` alone — the TMN-NM ablation.
    """

    def __init__(self, config: Optional[TMNConfig] = None):
        super().__init__()
        self.config = config if config is not None else TMNConfig()
        rng = np.random.default_rng(self.config.seed)
        d = self.config.hidden_dim
        d_hat = self.config.embed_dim
        self.output_dim = d
        self.point_embed = Linear(2, d_hat, rng=rng)
        self.act = LeakyReLU(0.1)
        lstm_in = 2 * d_hat if self.config.matching else d_hat
        self.lstm = make_rnn(self.config.backbone, lstm_in, d, rng)
        self.mlp = MLP([d, d, d], rng=rng)
        self._last_patterns: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def requires_pair_interaction(self) -> bool:
        """True when the matching mechanism is active (pair-dependent)."""
        return self.config.matching

    def embed_points(self, points: np.ndarray) -> Tensor:
        """Eq. 4-5: map raw coordinates (B, T, 2) to embeddings (B, T, d/2)."""
        return self.act(self.point_embed(Tensor(points)))

    def forward_pair(self, points_a, lengths_a, mask_a, points_b, lengths_b, mask_b):
        """Per-step representations (O_a, O_b) for a padded pair batch."""
        x_a = self.embed_points(points_a)
        x_b = self.embed_points(points_b)
        if self.config.matching:
            m_ab, p_ab = cross_match(x_a, x_b, mask_a=mask_a, mask_b=mask_b)
            m_ba, p_ba = cross_match(x_b, x_a, mask_a=mask_b, mask_b=mask_a)
            self._last_patterns = (p_ab.data, p_ba.data)
            in_a = concat([x_a, m_ab], axis=-1)
            in_b = concat([x_b, m_ba], axis=-1)
        else:
            self._last_patterns = None
            in_a, in_b = x_a, x_b
        z_a, _ = self.lstm(in_a, mask=mask_a)
        z_b, _ = self.lstm(in_b, mask=mask_b)
        return self.mlp(z_a), self.mlp(z_b)

    @property
    def last_match_patterns(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Match patterns ``(P_{a<-b}, P_{b<-a})`` from the latest forward.

        Exposed for inspection/visualisation (the learned analogue of the
        DTW match lines in Figure 1).
        """
        return self._last_patterns
