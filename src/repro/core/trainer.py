"""Training loop for TMN and the baselines (Section IV-C/D).

The :class:`Trainer` is model-agnostic: anything implementing
:class:`~repro.core.model.TrajectoryPairModel` trains under the same
sampling strategies, similarity normalisation and loss functions, which is
what makes the paper's model comparisons meaningful.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..autograd import concat
from ..metrics import MetricSpec, get_metric, pairwise_distance_matrix
from ..nn import gather_last
from ..obs.log import get_logger
from ..obs.memory import MemoryTracker, alloc_span, update_memory_gauges
from ..obs.metrics import get_registry
from ..obs.spans import SpanRecorder, diff_totals
from ..obs.trace import get_tracer, trace_span
from ..optim import Adam, clip_grad_norm
from .config import TMNConfig, alpha_for_metric
from .loss import pair_loss
from .model import TrajectoryPairModel
from .sampling import KDTreeSampler, PairSample, RankSampler
from .similarity import distance_to_similarity, predicted_similarity

__all__ = ["Trainer", "TrainingHistory"]

_log = get_logger("repro.trainer")


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    metric: str
    epoch_losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    #: Mean pre-clip global gradient norm per epoch (same length as
    #: ``epoch_losses``) — the number ``clip_grad_norm`` used to discard.
    grad_norms: List[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        """Mean loss of the last trained epoch."""
        if not self.epoch_losses:
            raise RuntimeError("no epochs recorded")
        return self.epoch_losses[-1]


class Trainer:
    """Fits a pair model to approximate one distance metric.

    Parameters
    ----------
    model:
        Any :class:`TrajectoryPairModel` (TMN or a baseline).
    config:
        Training hyper-parameters; ``config.sampler`` and ``config.loss``
        select the ablation variants.
    metric:
        Metric name or prepared :class:`MetricSpec` to learn.
    """

    def __init__(
        self,
        model: TrajectoryPairModel,
        config: TMNConfig,
        metric: Union[str, MetricSpec] = "dtw",
    ):
        self.model = model
        self.config = config
        self.metric = metric if isinstance(metric, MetricSpec) else get_metric(metric)
        self.alpha = config.alpha if config.alpha is not None else alpha_for_metric(self.metric.name)
        # The paper's alpha values (16 / 8) are calibrated to the raw
        # lon/lat scale of Geolife and Porto.  To stay faithful on any
        # coordinate scale, alpha is divided by the mean train-set distance
        # (fixed in :meth:`fit`) so that exp(-alpha_eff * D) spreads over
        # (0, 1) instead of collapsing to zero.
        self.effective_alpha: float = self.alpha
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate)
        #: Hierarchical wall-time breakdown of :meth:`fit` (fresh per trainer):
        #: epoch → sampling / batch → forward / loss / backward / optimizer.
        self.spans = SpanRecorder()

    # ------------------------------------------------------------------
    def fit(
        self,
        train_trajs: Sequence,
        distances: Optional[np.ndarray] = None,
        verbose: bool = False,
        on_epoch: Optional[Callable[[dict], None]] = None,
        track_memory: bool = False,
    ) -> TrainingHistory:
        """Train the model on a trajectory collection.

        Parameters
        ----------
        train_trajs:
            Training trajectories (dataset, list of Trajectory, or arrays).
        distances:
            Optional precomputed ground-truth matrix ``D`` (saves the exact
            computation when several models share one training set).
        verbose:
            Log one structured event per epoch via :mod:`repro.obs.log`.
        on_epoch:
            Optional callback receiving one dict per epoch — ``{"epoch",
            "loss", "grad_norm", "seconds", "lr", "spans"}`` — the payload
            :class:`repro.obs.run.RunWriter` persists as a JSONL line.
            With ``track_memory`` the payload also carries ``alloc_bytes``
            (the epoch's net Python-heap allocation delta).
        track_memory:
            Run the epochs under a tracemalloc
            :class:`~repro.obs.memory.MemoryTracker` (roughly doubles
            allocation cost — opt-in, exposed as ``train
            --track-memory``); each epoch's allocation delta lands in the
            ``mem.alloc.train.epoch`` histogram.
        """
        with contextlib.ExitStack() as memory_scope:
            if track_memory:
                memory_scope.enter_context(MemoryTracker())
            return self._fit(
                train_trajs, distances=distances, verbose=verbose, on_epoch=on_epoch
            )

    def _fit(
        self,
        train_trajs: Sequence,
        distances: Optional[np.ndarray],
        verbose: bool,
        on_epoch: Optional[Callable[[dict], None]],
    ) -> TrainingHistory:
        points = [t.points if hasattr(t, "points") else np.asarray(t, float) for t in train_trajs]
        if len(points) < self.config.sampling_number + 1:
            raise ValueError(
                f"need more than sampling_number={self.config.sampling_number} "
                f"training trajectories, got {len(points)}"
            )
        if distances is None:
            with self.spans.span("exact-metric"):
                distances = pairwise_distance_matrix(points, self.metric)
        distances = np.asarray(distances)
        if distances.shape != (len(points), len(points)):
            raise ValueError("distance matrix does not match the training set")

        positive = distances[distances > 0]
        scale = float(positive.mean()) if positive.size else 1.0
        self.effective_alpha = self.alpha / max(scale * 8.0, 1e-12)

        self.model.prepare(points)
        sampler = self._build_sampler(points, distances)
        rng = np.random.default_rng(self.config.seed + 1)
        history = TrainingHistory(metric=self.metric.name)

        self.model.train()
        metrics = get_registry()
        best_loss = np.inf
        stale_epochs = 0
        for _ in range(self.config.epochs):
            start = time.perf_counter()
            spans_before = self.spans.totals()
            losses: List[float] = []
            norms: List[float] = []
            anchors = rng.permutation(len(points))
            # One request-scoped trace per epoch: batch child spans (with
            # forward/loss/backward/optimizer grandchildren) make a slow
            # epoch inspectable via `repro-tmn trace`, complementing the
            # aggregate SpanRecorder totals.  The alloc span is a no-op
            # unless fit(track_memory=True) opened a tracemalloc session.
            epoch_alloc = alloc_span("train.epoch", registry=metrics)
            with self.spans.span("epoch"), epoch_alloc, get_tracer().trace(
                "train.epoch",
                epoch=len(history.epoch_losses) + 1,
                metric=self.metric.name,
            ) as epoch_trace:
                for chunk_start in range(0, len(anchors), self.config.batch_anchors):
                    batch_anchors = anchors[chunk_start : chunk_start + self.config.batch_anchors]
                    samples: List[PairSample] = []
                    with self.spans.span("sampling"), trace_span("sampling"):
                        for a in batch_anchors:
                            samples.extend(sampler.sample(int(a), rng))
                    with trace_span("batch") as batch_span:
                        loss_value, grad_norm = self._train_step(points, distances, samples)
                        batch_span.set(pairs=len(samples), loss=loss_value)
                    losses.append(loss_value)
                    norms.append(grad_norm)
                    metrics.counter("train.steps").inc()
                    metrics.counter("train.pairs").inc(len(samples))
                    metrics.histogram("train.grad_norm").observe(grad_norm)
                epoch_trace.set(
                    loss=float(np.mean(losses)), batches=len(losses)
                )
            history.epoch_losses.append(float(np.mean(losses)))
            history.epoch_seconds.append(time.perf_counter() - start)
            history.grad_norms.append(float(np.mean(norms)))
            metrics.counter("train.epochs").inc()
            metrics.gauge("train.last_loss").set(history.epoch_losses[-1])
            if verbose:
                _log.info(
                    "epoch",
                    metric=self.metric.name,
                    epoch=len(history.epoch_losses),
                    loss=history.epoch_losses[-1],
                    grad_norm=history.grad_norms[-1],
                    seconds=history.epoch_seconds[-1],
                )
            if epoch_alloc.tracked:
                update_memory_gauges(metrics)
            if on_epoch is not None:
                payload = {
                    "epoch": len(history.epoch_losses),
                    "loss": history.epoch_losses[-1],
                    "grad_norm": history.grad_norms[-1],
                    "seconds": history.epoch_seconds[-1],
                    "lr": self.optimizer.lr,
                    "spans": diff_totals(self.spans.totals(), spans_before),
                }
                if epoch_alloc.tracked:
                    payload["alloc_bytes"] = epoch_alloc.net_bytes
                on_epoch(payload)
            if self.config.patience is not None:
                current = history.epoch_losses[-1]
                if current < best_loss - self.config.min_delta:
                    best_loss = current
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        history.stopped_early = True
                        break
        self.model.eval()
        return history

    # ------------------------------------------------------------------
    def _build_sampler(self, points, distances):
        if self.config.sampler == "rank":
            return RankSampler(distances, sampling_number=self.config.sampling_number)
        return KDTreeSampler(
            points,
            distances,
            k_neighbors=self.config.kd_neighbors,
            n_far=self.config.kd_neighbors,
        )

    def _train_step(self, points, distances, samples: List[PairSample]):
        """One optimisation step; returns ``(loss, pre-clip grad norm)``."""
        from ..data.batching import pair_batch

        with self.spans.span("batch"):
            with self.spans.span("forward"), trace_span("forward"):
                trajs_a = [points[s.anchor] for s in samples]
                trajs_b = [points[s.sample] for s in samples]
                pa, la, ma, pb, lb, mb = pair_batch(trajs_a, trajs_b)
                out_a, out_b = self.model.forward_pair(pa, la, ma, pb, lb, mb)
                emb_a = gather_last(out_a, la)
                emb_b = gather_last(out_b, lb)
                pred = predicted_similarity(emb_a, emb_b)

            with self.spans.span("loss"), trace_span("loss"):
                anchor_idx = np.array([s.anchor for s in samples])
                sample_idx = np.array([s.sample for s in samples])
                weights = np.array([s.weight for s in samples])
                true = distance_to_similarity(
                    distances[anchor_idx, sample_idx], self.effective_alpha
                )

                loss = pair_loss(self.config.loss, pred, true, weights)
                if self.config.sub_loss:
                    sub = self._sub_trajectory_loss(pa, la, pb, lb, out_a, out_b, weights)
                    if sub is not None:
                        loss = loss + sub

            with self.spans.span("backward"), trace_span("backward"):
                self.optimizer.zero_grad()
                loss.backward()
            with self.spans.span("optimizer"), trace_span("optimizer"):
                grad_norm = clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.step()
        return float(loss.item()), float(grad_norm)

    def _sub_trajectory_loss(self, pa, la, pb, lb, out_a, out_b, weights):
        """Eq. 15: prefix supervision every ``sub_stride`` points.

        For each cut c (10, 20, ... by default) and each pair whose both
        sides extend beyond c, compares the step-c representations against
        the exact distance of the two length-c prefixes.
        """
        stride = self.config.sub_stride
        shortest = np.minimum(la, lb)
        max_cut = int(shortest.max())
        preds = []
        trues = []
        w_parts = []
        n_terms_per_pair = np.zeros(len(la))
        for cut in range(stride, max_cut, stride):
            idx = np.where(shortest > cut)[0]
            if idx.size == 0:
                continue
            cut_len = np.full(idx.size, cut)
            with self.spans.span("exact-metric"):
                prefix_dist = self.metric.batch(pa[idx, :cut], pb[idx, :cut], cut_len, cut_len)
            trues.append(distance_to_similarity(prefix_dist, self.effective_alpha))
            emb_a = out_a[idx, cut - 1]
            emb_b = out_b[idx, cut - 1]
            preds.append(predicted_similarity(emb_a, emb_b))
            w_parts.append(weights[idx])
            n_terms_per_pair[idx] += 1
        if not preds:
            return None
        pred = concat(preds, axis=0)
        true = np.concatenate(trues)
        w = np.concatenate(w_parts)
        return pair_loss(self.config.loss, pred, true, w)
