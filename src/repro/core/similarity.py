"""Distance <-> similarity transformations (Section IV-D).

The paper trains against the normalised similarity ``S = exp(-alpha * D)``
(values in (0, 1]) rather than raw distances, and every model predicts a
similarity through the Euclidean distance between embeddings.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor

__all__ = ["distance_to_similarity", "similarity_to_distance", "predicted_similarity"]


def distance_to_similarity(distance, alpha: float):
    """``S = exp(-alpha * D)`` on arrays or Tensors."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    # The exponent -alpha * D is <= 0: alpha > 0 is validated above and
    # metric distances are nonnegative, so exp cannot overflow.
    if isinstance(distance, Tensor):
        return (distance * (-alpha)).exp()  # lint: allow(N001)
    return np.exp(-alpha * np.asarray(distance))  # lint: allow(N001)


def similarity_to_distance(similarity, alpha: float):
    """Inverse transform ``D = -log(S) / alpha``."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    sim = np.asarray(similarity, dtype=float)
    if np.any(sim <= 0) or np.any(sim > 1):
        raise ValueError("similarities must lie in (0, 1]")
    # sim is validated to lie in (0, 1] immediately above, so log is finite.
    return -np.log(sim) / alpha  # lint: allow(N002)


def predicted_similarity(emb_a, emb_b, eps: float = 1e-12):
    """Model-side similarity ``exp(-||o_a - o_b||)``.

    Monotone-decreasing in embedding distance, so top-k search by embedding
    distance and by predicted similarity agree.  Works on Tensors (training)
    and arrays (evaluation).
    """
    if isinstance(emb_a, Tensor) or isinstance(emb_b, Tensor):
        emb_a = emb_a if isinstance(emb_a, Tensor) else Tensor(emb_a)
        emb_b = emb_b if isinstance(emb_b, Tensor) else Tensor(emb_b)
        diff = emb_a - emb_b
        dist = ((diff * diff).sum(axis=-1) + eps).sqrt()
        return (dist * -1.0).exp()
    dist = np.sqrt(((np.asarray(emb_a) - np.asarray(emb_b)) ** 2).sum(axis=-1))
    return np.exp(-dist)
