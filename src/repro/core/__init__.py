"""TMN core: model, matching mechanism, sampling, losses and trainer."""

from .config import TMNConfig, alpha_for_metric
from .loss import pair_loss, qerror_loss, weighted_mse_loss
from .model import TMN, TrajectoryPairModel, pair_cross_distance_matrix, pair_distance_matrix
from .sampling import (
    KDTreeSampler,
    PairSample,
    RankSampler,
    rank_weights,
    simplify_trajectory,
)
from .similarity import distance_to_similarity, predicted_similarity, similarity_to_distance
from .trainer import Trainer, TrainingHistory

__all__ = [
    "TMN",
    "TrajectoryPairModel",
    "pair_distance_matrix",
    "pair_cross_distance_matrix",
    "TMNConfig",
    "alpha_for_metric",
    "Trainer",
    "TrainingHistory",
    "RankSampler",
    "KDTreeSampler",
    "PairSample",
    "rank_weights",
    "simplify_trajectory",
    "pair_loss",
    "weighted_mse_loss",
    "qerror_loss",
    "distance_to_similarity",
    "similarity_to_distance",
    "predicted_similarity",
]
