"""Configuration for TMN and its training loop.

Defaults follow Section V-A4 of the paper (d = 128, lr = 5e-3, Adam,
alpha = 16 for DTW/ERP and 8 otherwise, train ratio 0.2, sampling number
20).  Experiments at reproduction scale override ``hidden_dim`` and
``epochs`` downward; every such override is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["TMNConfig", "alpha_for_metric"]

#: Paper's normalisation constants: alpha = 16 under DTW and ERP, 8 under
#: Hausdorff, Fréchet, EDR and LCSS.  (Our corpora are normalised to unit
#: scale, so these also serve as sane defaults here.)
_PAPER_ALPHA = {"dtw": 16.0, "erp": 16.0, "frechet": 8.0, "hausdorff": 8.0, "edr": 8.0, "lcss": 8.0}


def alpha_for_metric(metric_name: str) -> float:
    """The paper's similarity-normalisation alpha for a metric."""
    try:
        return _PAPER_ALPHA[metric_name.lower()]
    except KeyError:
        raise KeyError(f"no default alpha for metric {metric_name!r}") from None


@dataclass(frozen=True)
class TMNConfig:
    """Hyper-parameters of the TMN model and trainer.

    Attributes
    ----------
    hidden_dim:
        Dimension ``d`` of the LSTM hidden state and final embedding; the
        point-embedding dimension is ``d / 2`` (paper Section IV-B).
    matching:
        Whether the cross-trajectory matching mechanism is active.  Setting
        this to False yields the TMN-NM ablation of Table II.
    alpha:
        Similarity normalisation ``S = exp(-alpha * D)``.  ``None`` selects
        the paper default for the metric at training time.
    learning_rate / epochs / batch_anchors:
        Optimisation schedule.  ``batch_anchors`` anchors are drawn per
        step; each contributes ``sampling_number`` pairs.
    sampling_number:
        The paper's ``sn``: 2k candidates are ranked per anchor; the top
        half become near samples and the bottom half far samples.
    sub_loss:
        Whether the sub-trajectory (prefix) loss ``L_sub`` is added.
    sub_stride:
        Prefix cut stride (paper: every 10th point).
    loss:
        "mse" (paper default) or "qerror" (Figure 3 comparison).
    sampler:
        "rank" (the paper's strategy) or "kdtree" (Traj2SimVec's strategy;
        the TMN-kd ablation of Table IV).
    backbone:
        Recurrent cell: "lstm" (the paper's choice) or "gru" — a
        design-choice ablation this reproduction adds.
    grad_clip:
        Global gradient-norm clip; stabilises the LSTM on long sequences.
    patience:
        Optional early stopping: training halts when the epoch loss has
        not improved by at least ``min_delta`` for this many epochs.
    seed:
        Seed for parameter init and sampling.
    """

    hidden_dim: int = 128
    matching: bool = True
    alpha: Optional[float] = None
    learning_rate: float = 5e-3
    epochs: int = 10
    batch_anchors: int = 8
    sampling_number: int = 20
    sub_loss: bool = True
    sub_stride: int = 10
    loss: str = "mse"
    sampler: str = "rank"
    backbone: str = "lstm"
    kd_neighbors: int = 5
    patience: Optional[int] = None
    min_delta: float = 1e-5
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_dim < 2 or self.hidden_dim % 2 != 0:
            raise ValueError("hidden_dim must be an even integer >= 2")
        if self.sampling_number < 2 or self.sampling_number % 2 != 0:
            raise ValueError("sampling_number must be an even integer >= 2 (half near, half far)")
        if self.loss not in ("mse", "qerror"):
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.sampler not in ("rank", "kdtree"):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.backbone not in ("lstm", "gru"):
            raise ValueError(f"unknown backbone {self.backbone!r}")
        if self.patience is not None and self.patience < 1:
            raise ValueError("patience must be >= 1 when set")
        if self.sub_stride < 1:
            raise ValueError("sub_stride must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    @property
    def embed_dim(self) -> int:
        """Point-embedding dimension d̂ = d / 2 (Eq. 4)."""
        return self.hidden_dim // 2

    def with_updates(self, **kwargs) -> "TMNConfig":
        """Return a copy with fields replaced (configs are immutable)."""
        return replace(self, **kwargs)
