"""Approximation-quality analysis beyond top-k rankings.

HR-k and Rk@t (the paper's metrics) measure ranking quality; this module
adds regression-style diagnostics — absolute/relative error of the
predicted similarity and rank correlation — useful when debugging a model
or comparing design variants more finely than hit ratios allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["ApproximationReport", "approximation_report", "spearman_per_query"]


@dataclass(frozen=True)
class ApproximationReport:
    """Summary of how well predicted distances track the ground truth."""

    mae: float  # mean absolute error of normalised similarities
    mre: float  # mean relative error
    spearman: float  # rank correlation over all off-diagonal pairs
    mean_query_spearman: float  # averaged per-query rank correlation

    def as_dict(self) -> Dict[str, float]:
        """The report as a plain {name: value} dict."""
        return {
            "MAE": self.mae,
            "MRE": self.mre,
            "Spearman": self.spearman,
            "QuerySpearman": self.mean_query_spearman,
        }


def _offdiag(matrix: np.ndarray) -> np.ndarray:
    mask = ~np.eye(matrix.shape[0], dtype=bool)
    return matrix[mask]


def _normalise(values: np.ndarray) -> np.ndarray:
    span = values.max() - values.min()
    if span == 0:
        return np.zeros_like(values)
    return (values - values.min()) / span


def approximation_report(gt_dist: np.ndarray, pred_dist: np.ndarray) -> ApproximationReport:
    """Compare a predicted distance matrix against the exact one.

    Both matrices are min-max normalised before MAE/MRE (embedding
    distances live on an arbitrary scale; only the shape is comparable).
    """
    gt_dist = np.asarray(gt_dist, dtype=float)
    pred_dist = np.asarray(pred_dist, dtype=float)
    if gt_dist.shape != pred_dist.shape or gt_dist.ndim != 2:
        raise ValueError("matrices must be two equal-shape square arrays")
    if gt_dist.shape[0] != gt_dist.shape[1]:
        raise ValueError("matrices must be square")
    gt = _normalise(_offdiag(gt_dist))
    pred = _normalise(_offdiag(pred_dist))
    abs_err = np.abs(gt - pred)
    mae = float(abs_err.mean())
    denom = np.maximum(gt, 1e-6)
    mre = float((abs_err / denom).mean())
    if np.ptp(gt) == 0 or np.ptp(pred) == 0:
        # Constant input: correlation undefined; a degenerate matrix is a
        # perfect "prediction" of another constant one.
        rho = 1.0 if np.ptp(gt) == np.ptp(pred) else 0.0
    else:
        rho = float(scipy_stats.spearmanr(gt, pred).statistic)
    return ApproximationReport(
        mae=mae,
        mre=mre,
        spearman=rho,
        mean_query_spearman=spearman_per_query(gt_dist, pred_dist),
    )


def spearman_per_query(gt_dist: np.ndarray, pred_dist: np.ndarray) -> float:
    """Average Spearman rank correlation of each query row (self excluded).

    This is the quantity top-k search quality actually depends on: whether
    each query orders the database correctly.
    """
    gt_dist = np.asarray(gt_dist, dtype=float)
    pred_dist = np.asarray(pred_dist, dtype=float)
    if gt_dist.shape != pred_dist.shape:
        raise ValueError("matrices must align")
    n = gt_dist.shape[0]
    if n < 3:
        raise ValueError("need at least 3 items for per-query correlation")
    rhos = []
    for row in range(n):
        keep = np.arange(n) != row
        gt_row = gt_dist[row, keep]
        pred_row = pred_dist[row, keep]
        if np.ptp(gt_row) == 0 or np.ptp(pred_row) == 0:
            rhos.append(1.0 if np.ptp(gt_row) == np.ptp(pred_row) else 0.0)
            continue
        rho = scipy_stats.spearmanr(gt_row, pred_row).statistic
        if np.isfinite(rho):
            rhos.append(rho)
    return float(np.mean(rhos)) if rhos else 0.0
