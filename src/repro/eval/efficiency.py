"""Timing harness for the efficiency study (Table III).

Splits the learned pipeline into the paper's three phases — training time
per epoch, per-trajectory inference (encoding) time, and the similarity
computation between two embedding vectors — and times the exact metrics'
all-pairs computation for comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..metrics import MetricSpec, get_metric, pairwise_distance_matrix
from ..obs.metrics import get_registry
from ..obs.spans import span

__all__ = ["EfficiencyReport", "time_exact_metric", "time_encoding", "time_vector_similarity"]


@dataclass(frozen=True)
class EfficiencyReport:
    """One Table III row."""

    method: str
    training_s: Optional[float]  # per epoch; None for exact metrics
    inference_s: Optional[float]  # per trajectory; None for exact metrics
    computation_s: float  # exact: all-pairs; learned: one vector pair


def time_exact_metric(trajs: Sequence, metric: Union[str, MetricSpec]) -> float:
    """Seconds to compute all pairwise exact distances of a collection."""
    spec = metric if isinstance(metric, MetricSpec) else get_metric(metric)
    start = time.perf_counter()
    with span("exact-metric"):
        pairwise_distance_matrix(trajs, spec)
    seconds = time.perf_counter() - start
    get_registry().histogram(f"eval.exact_metric_s.{spec.name}").observe(seconds)
    return seconds


def time_encoding(model, trajs: Sequence, batch_size: int = 64) -> float:
    """Average seconds to encode one trajectory (the inference phase)."""
    trajs = list(trajs)
    if not trajs:
        raise ValueError("need at least one trajectory to time encoding")
    start = time.perf_counter()
    with span("encoding"):
        model.encode(trajs, batch_size=batch_size)
    per_traj = (time.perf_counter() - start) / len(trajs)
    get_registry().histogram("eval.encode_s_per_traj").observe(per_traj)
    return per_traj


def time_vector_similarity(embeddings: np.ndarray, repeats: int = 10_000) -> float:
    """Average seconds for one Euclidean similarity between two embeddings."""
    embeddings = np.asarray(embeddings)
    if len(embeddings) < 2:
        raise ValueError("need at least two embeddings")
    a, b = embeddings[0], embeddings[1]
    start = time.perf_counter()
    for _ in range(repeats):
        float(np.sqrt(((a - b) ** 2).sum()))
    return (time.perf_counter() - start) / repeats
