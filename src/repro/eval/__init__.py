"""Evaluation stack: top-k search, HR-k / Rk@t ranking metrics and the
Table III efficiency timing harness."""

from .analysis import ApproximationReport, approximation_report, spearman_per_query
from .efficiency import (
    EfficiencyReport,
    time_encoding,
    time_exact_metric,
    time_vector_similarity,
)
from .ranking import evaluate_rankings, hitting_ratio, recall_k_at_t
from .search import embedding_distance_matrix, topk_indices

__all__ = [
    "ApproximationReport",
    "approximation_report",
    "spearman_per_query",
    "embedding_distance_matrix",
    "topk_indices",
    "hitting_ratio",
    "recall_k_at_t",
    "evaluate_rankings",
    "EfficiencyReport",
    "time_exact_metric",
    "time_encoding",
    "time_vector_similarity",
]
