"""Top-k trajectory similarity search over embeddings (Section V-B).

Following the paper (which reuses NeuTraj's implementation), search is the
straightforward kind: compute all pairwise embedding distances, sort, take
the top k.  The learned embedding makes this O(d) per pair instead of the
quadratic exact metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["embedding_distance_matrix", "topk_indices"]


def embedding_distance_matrix(
    embeddings: np.ndarray,
    others: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise Euclidean distances between embedding rows.

    With ``others=None`` computes the symmetric self-distance matrix used
    for in-database top-k search.
    """
    a = np.asarray(embeddings, dtype=np.float64)
    b = a if others is None else np.asarray(others, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"embedding shapes incompatible: {a.shape} vs {b.shape}")
    sq_a = (a**2).sum(axis=1)
    sq_b = (b**2).sum(axis=1)
    d2 = sq_a[:, None] + sq_b[None, :] - 2.0 * a @ b.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def topk_indices(dist_matrix: np.ndarray, k: int, exclude_self: bool = True) -> np.ndarray:
    """Per-row indices of the k smallest distances.

    Parameters
    ----------
    dist_matrix:
        (Q, N) distances; when ``exclude_self`` the diagonal is skipped
        (queries come from the same collection as the database).
    """
    dist_matrix = np.asarray(dist_matrix, dtype=np.float64)
    q, n = dist_matrix.shape
    limit = n - 1 if exclude_self else n
    if not 1 <= k <= limit:
        raise ValueError(f"k={k} out of range for {n} candidates (exclude_self={exclude_self})")
    work = dist_matrix
    if exclude_self:
        if q != n:
            raise ValueError("exclude_self requires a square matrix")
        work = dist_matrix.copy()
        np.fill_diagonal(work, np.inf)
    part = np.argpartition(work, kth=k - 1, axis=1)[:, :k]
    vals = np.take_along_axis(work, part, axis=1)
    order = np.argsort(vals, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)
