"""Evaluation metrics of Section V-A3: HR-k and Rk@t.

- HR-k — top-k hitting ratio: overlap fraction between the learned top-k
  and the ground-truth top-k.
- Rk@t — top-t recall of the top-k ground truth: how much of the true
  top-k appears in the predicted top-t (R10@50 in the paper).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .search import topk_indices

__all__ = ["hitting_ratio", "recall_k_at_t", "evaluate_rankings"]


def _overlap(pred_rows: np.ndarray, gt_rows: np.ndarray) -> float:
    hits = 0
    for pred, gt in zip(pred_rows, gt_rows):
        hits += len(set(pred.tolist()) & set(gt.tolist()))
    return hits / (gt_rows.shape[0] * gt_rows.shape[1])


def hitting_ratio(
    gt_dist: np.ndarray,
    pred_dist: np.ndarray,
    k: int,
    exclude_self: bool = True,
) -> float:
    """HR-k: mean overlap of predicted and ground-truth top-k sets."""
    gt_top = topk_indices(gt_dist, k, exclude_self=exclude_self)
    pred_top = topk_indices(pred_dist, k, exclude_self=exclude_self)
    return _overlap(pred_top, gt_top)


def recall_k_at_t(
    gt_dist: np.ndarray,
    pred_dist: np.ndarray,
    k: int,
    t: int,
    exclude_self: bool = True,
) -> float:
    """Rk@t: fraction of the true top-k found within the predicted top-t."""
    if t < k:
        raise ValueError("t must be >= k for a recall-style metric")
    gt_top = topk_indices(gt_dist, k, exclude_self=exclude_self)
    pred_top = topk_indices(pred_dist, t, exclude_self=exclude_self)
    return _overlap(pred_top, gt_top)


def evaluate_rankings(
    gt_dist: np.ndarray,
    pred_dist: np.ndarray,
    hr_ks: Sequence[int] = (10, 50),
    recall: Sequence[int] = (10, 50),
    exclude_self: bool = True,
) -> Dict[str, float]:
    """The paper's evaluation bundle: HR-10, HR-50, R10@50.

    Returns a dict keyed "HR-10", "HR-50", "R10@50" (adjusted to the
    requested parameters).
    """
    if gt_dist.shape != pred_dist.shape:
        raise ValueError("ground-truth and predicted matrices must align")
    out: Dict[str, float] = {}
    for k in hr_ks:
        out[f"HR-{k}"] = hitting_ratio(gt_dist, pred_dist, k, exclude_self=exclude_self)
    k, t = recall
    out[f"R{k}@{t}"] = recall_k_at_t(gt_dist, pred_dist, k, t, exclude_self=exclude_self)
    return out
