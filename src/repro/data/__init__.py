"""Trajectory data substrate: containers, synthetic corpora, preprocessing,
grid mapping (for NeuTraj) and batching utilities."""

from .augment import add_noise, crop, downsample
from .batching import pad_batch, pair_batch
from .grid import GridMapper
from .loaders import load_geolife_directory, load_geolife_plt, load_porto_csv
from .preprocess import NormStats, filter_center, filter_min_length, normalize, prepare
from .synthetic import GEOLIFE_BBOX, PORTO_BBOX, make_dataset, make_geolife_like, make_porto_like
from .trajectory import Trajectory, TrajectoryDataset

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "make_geolife_like",
    "make_porto_like",
    "make_dataset",
    "GEOLIFE_BBOX",
    "PORTO_BBOX",
    "prepare",
    "normalize",
    "filter_center",
    "filter_min_length",
    "NormStats",
    "GridMapper",
    "load_geolife_plt",
    "load_geolife_directory",
    "load_porto_csv",
    "pad_batch",
    "downsample",
    "add_noise",
    "crop",
    "pair_batch",
]
