"""Trajectory perturbations for robustness experiments.

Real GPS pipelines vary in sampling rate and noise level; a useful learned
similarity model should degrade gracefully when the test distribution
shifts.  These perturbations support the robustness extension experiment
(``examples/robustness.py``): downsampling, additive jitter and cropping.
All operations are seeded and never mutate their input.
"""

from __future__ import annotations

import numpy as np

from .trajectory import Trajectory

__all__ = ["downsample", "add_noise", "crop"]


def _points_of(traj) -> np.ndarray:
    pts = traj.points if isinstance(traj, Trajectory) else np.asarray(traj, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) trajectory, got {pts.shape}")
    return pts


def downsample(traj, keep_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Randomly keep roughly ``keep_fraction`` of the points.

    The first and last points are always kept (they anchor most metrics),
    so the result has at least two points for inputs of length >= 2.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    pts = _points_of(traj)
    n = len(pts)
    # Scalar config parameter; 1.0 is the exact "keep everything" sentinel.
    if n <= 2 or keep_fraction == 1.0:  # lint: allow(N004)
        return pts.copy()
    keep = rng.random(n) < keep_fraction
    keep[0] = keep[-1] = True
    return pts[keep].copy()


def add_noise(traj, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive isotropic Gaussian jitter with standard deviation ``sigma``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    pts = _points_of(traj)
    return pts + rng.normal(scale=sigma, size=pts.shape)


def crop(traj, keep_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Keep a random contiguous window covering ``keep_fraction`` of points.

    Models a trip observed only partially (late start / early stop of the
    recording device).
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    pts = _points_of(traj)
    n = len(pts)
    window = max(2, int(round(keep_fraction * n)))
    if window >= n:
        return pts.copy()
    start = int(rng.integers(0, n - window + 1))
    return pts[start : start + window].copy()
