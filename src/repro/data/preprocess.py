"""Preprocessing pipeline mirroring Section V-A of the paper.

The paper filters out trajectories in sparse areas (keeping the city-centre
region), removes trajectories with fewer than 10 records, and the learning
models consume normalised coordinates.  The same steps are provided here as
composable functions plus a one-call :func:`prepare` pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["NormStats", "filter_min_length", "filter_center", "normalize", "prepare"]


@dataclass(frozen=True)
class NormStats:
    """Mean/std used to normalise a corpus; kept so eps-style metric
    parameters and embeddings can be mapped back to raw coordinates."""

    mean: Tuple[float, float]
    std: Tuple[float, float]

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the normalisation to raw points."""
        return (points - np.asarray(self.mean)) / np.asarray(self.std)

    def inverse(self, points: np.ndarray) -> np.ndarray:
        """Map normalised points back to raw coordinates."""
        return points * np.asarray(self.std) + np.asarray(self.mean)


def filter_min_length(dataset: TrajectoryDataset, min_points: int = 10) -> TrajectoryDataset:
    """Drop trajectories with fewer than ``min_points`` records (paper: 10)."""
    kept = [t for t in dataset if len(t) >= min_points]
    out = TrajectoryDataset(kept, name=dataset.name, meta=dict(dataset.meta))
    out.meta["min_points"] = min_points
    return out


def filter_center(
    dataset: TrajectoryDataset,
    keep_fraction: float = 0.8,
) -> TrajectoryDataset:
    """Keep trajectories in the dense centre of the corpus.

    The paper "filters out the trajectories that locate in the sparse area
    and remains the ones in the center area of the city".  We keep every
    trajectory whose centroid falls inside the central bounding box covering
    ``keep_fraction`` of the coordinate range in each axis.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    centroids = np.array([t.centroid() for t in dataset])
    lo = np.quantile(centroids, (1 - keep_fraction) / 2, axis=0)
    hi = np.quantile(centroids, 1 - (1 - keep_fraction) / 2, axis=0)
    kept = [
        t
        for t, c in zip(dataset, centroids)
        if np.all(c >= lo) and np.all(c <= hi)
    ]
    out = TrajectoryDataset(kept, name=dataset.name, meta=dict(dataset.meta))
    out.meta["center_fraction"] = keep_fraction
    return out


def normalize(
    dataset: TrajectoryDataset,
    stats: Optional[NormStats] = None,
) -> Tuple[TrajectoryDataset, NormStats]:
    """Standardise coordinates to zero mean / unit variance per axis.

    Passing precomputed ``stats`` applies a previous fit (e.g. normalising a
    test split with the training statistics).
    """
    if stats is None:
        all_points = np.concatenate([t.points for t in dataset], axis=0)
        mean = all_points.mean(axis=0)
        std = all_points.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        stats = NormStats(mean=(float(mean[0]), float(mean[1])), std=(float(std[0]), float(std[1])))
    transformed = [
        Trajectory(stats.transform(t.points), traj_id=t.traj_id, timestamps=t.timestamps)
        for t in dataset
    ]
    out = TrajectoryDataset(transformed, name=dataset.name, meta=dict(dataset.meta))
    out.meta["normalized"] = True
    return out, stats


def prepare(
    dataset: TrajectoryDataset,
    min_points: int = 10,
    keep_fraction: float = 0.8,
) -> Tuple[TrajectoryDataset, NormStats]:
    """Full paper preprocessing: centre filter → length filter → normalise."""
    dataset = filter_center(dataset, keep_fraction=keep_fraction)
    dataset = filter_min_length(dataset, min_points=min_points)
    if len(dataset) == 0:
        raise ValueError("preprocessing removed every trajectory")
    return normalize(dataset)
