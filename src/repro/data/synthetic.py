"""Synthetic stand-ins for the Geolife and Porto GPS corpora.

The paper evaluates on two public datasets that cannot be downloaded in this
offline environment:

- **Geolife** — multi-modal human movement in Beijing (walking, cycling,
  bus/car), heterogeneous speeds and lengths;
- **Porto** — taxi trips on a street network, so movement follows road
  segments with turns.

The generators below synthesise corpora with the structural properties the
learning task actually depends on: 2-D coordinate sequences, spatially
clustered start points, heterogeneous lengths, and a mix of locally similar
and dissimilar routes so that near/far sampling is informative under every
distance metric.  Coordinates are produced in a small lon/lat-like bounding
box around a city centre and then normalised by the preprocessing pipeline,
mirroring the paper's "center area" filtering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["make_geolife_like", "make_porto_like", "make_dataset"]

#: Synthetic city bounding boxes (degrees), loosely Beijing / Porto shaped.
GEOLIFE_BBOX = (116.20, 39.80, 116.60, 40.10)
PORTO_BBOX = (-8.70, 41.10, -8.55, 41.20)

_MODES = {
    # mode: (step length in degrees, heading persistence)
    "walk": (0.0006, 0.95),
    "bike": (0.0015, 0.90),
    "vehicle": (0.0040, 0.85),
}


def make_geolife_like(
    n_trajectories: int,
    rng: Optional[np.random.Generator] = None,
    min_len: int = 12,
    max_len: int = 48,
    noise: float = 0.0002,
    n_hubs: int = 12,
) -> TrajectoryDataset:
    """Generate a Geolife-like corpus of multi-modal human movement.

    Trajectories start near one of ``n_hubs`` activity hubs, follow a
    correlated random walk whose step length switches between walk / bike /
    vehicle modes mid-trip, and carry GPS-style jitter.

    Parameters
    ----------
    n_trajectories:
        Number of trajectories to generate.
    rng:
        Seeded generator; required for reproducible corpora.
    min_len, max_len:
        Bounds on the number of sample points (paper filters < 10 records).
    noise:
        Standard deviation of the additive GPS jitter (degrees).
    n_hubs:
        Number of activity centres people travel between.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    x0, y0, x1, y1 = GEOLIFE_BBOX
    hubs = np.column_stack(
        [rng.uniform(x0, x1, size=n_hubs), rng.uniform(y0, y1, size=n_hubs)]
    )
    mode_names = list(_MODES)
    trajectories = []
    for i in range(n_trajectories):
        length = int(rng.integers(min_len, max_len + 1))
        hub = hubs[rng.integers(0, n_hubs)]
        start = hub + rng.normal(scale=0.01, size=2)
        # Aim roughly at another hub to create shared corridors.
        target = hubs[rng.integers(0, n_hubs)]
        heading = np.arctan2(target[1] - start[1], target[0] - start[0])
        heading += rng.normal(scale=0.3)
        mode = mode_names[rng.integers(0, len(mode_names))]
        step, persistence = _MODES[mode]
        pts = np.empty((length, 2))
        pos = start.copy()
        for t in range(length):
            pts[t] = pos
            if rng.random() < 0.05:  # mode switch mid-trip
                mode = mode_names[rng.integers(0, len(mode_names))]
                step, persistence = _MODES[mode]
            heading = persistence * heading + (1 - persistence) * rng.normal(
                loc=heading, scale=0.8
            )
            heading += rng.normal(scale=0.15)
            pos = pos + step * np.array([np.cos(heading), np.sin(heading)])
            pos[0] = np.clip(pos[0], x0, x1)
            pos[1] = np.clip(pos[1], y0, y1)
        pts += rng.normal(scale=noise, size=pts.shape)
        timestamps = np.cumsum(rng.uniform(1.0, 5.0, size=length))
        trajectories.append(Trajectory(pts, traj_id=i, timestamps=timestamps))
    return TrajectoryDataset(
        trajectories,
        name="geolife-like",
        meta={"bbox": GEOLIFE_BBOX, "kind": "geolife", "n_hubs": n_hubs},
    )


def make_porto_like(
    n_trajectories: int,
    rng: Optional[np.random.Generator] = None,
    min_len: int = 12,
    max_len: int = 48,
    noise: float = 0.00015,
    grid_step: float = 0.004,
) -> TrajectoryDataset:
    """Generate a Porto-like corpus of taxi trips on a synthetic road grid.

    Trips start at intersections of a Manhattan-style street grid and move
    along axis-aligned segments, turning at intersections with a small
    probability — producing the piecewise-straight, corridor-sharing
    structure of road-network trajectories.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    x0, y0, x1, y1 = PORTO_BBOX
    n_cols = int((x1 - x0) / grid_step)
    n_rows = int((y1 - y0) / grid_step)
    directions = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
    trajectories = []
    for i in range(n_trajectories):
        length = int(rng.integers(min_len, max_len + 1))
        col = rng.integers(1, n_cols - 1)
        row = rng.integers(1, n_rows - 1)
        pos = np.array([x0 + col * grid_step, y0 + row * grid_step])
        direction = directions[rng.integers(0, 4)].copy()
        pts = np.empty((length, 2))
        sub_step = grid_step / 2.0  # two GPS samples per block
        for t in range(length):
            pts[t] = pos
            at_intersection = t % 2 == 0
            if at_intersection and rng.random() < 0.35:
                # Turn left or right, never reverse.
                perp = np.array([-direction[1], direction[0]])
                direction = perp if rng.random() < 0.5 else -perp
            nxt = pos + direction * sub_step
            if not (x0 <= nxt[0] <= x1 and y0 <= nxt[1] <= y1):
                direction = -direction
                nxt = pos + direction * sub_step
            pos = nxt
        pts += rng.normal(scale=noise, size=pts.shape)
        timestamps = np.cumsum(np.full(length, 15.0))  # Porto samples every 15 s
        trajectories.append(Trajectory(pts, traj_id=i, timestamps=timestamps))
    return TrajectoryDataset(
        trajectories,
        name="porto-like",
        meta={"bbox": PORTO_BBOX, "kind": "porto", "grid_step": grid_step},
    )


def make_dataset(
    kind: str,
    n_trajectories: int,
    seed: int = 0,
    **kwargs,
) -> TrajectoryDataset:
    """Convenience front door: ``kind`` is "geolife" or "porto"."""
    rng = np.random.default_rng(seed)
    if kind == "geolife":
        return make_geolife_like(n_trajectories, rng=rng, **kwargs)
    if kind == "porto":
        return make_porto_like(n_trajectories, rng=rng, **kwargs)
    raise KeyError(f"unknown dataset kind {kind!r}; choose 'geolife' or 'porto'")
