"""Trajectory and dataset containers (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Trajectory", "TrajectoryDataset"]


@dataclass
class Trajectory:
    """A sequence of 2-D sample points ordered by time (Definition 1).

    Attributes
    ----------
    points:
        Array of shape (n, 2); columns are (lon, lat) or normalised x/y.
    traj_id:
        Stable identifier within its dataset.
    timestamps:
        Optional per-point epoch seconds; not used by the models (the paper
        feeds coordinate tuples only) but kept for provenance.
    """

    points: np.ndarray
    traj_id: int = -1
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError(f"points must be (n, 2), got {self.points.shape}")
        if len(self.points) == 0:
            raise ValueError("a trajectory needs at least one point")
        if self.timestamps is not None:
            self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
            if self.timestamps.shape != (len(self.points),):
                raise ValueError("timestamps must align with points")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.points)

    def prefix(self, n: int) -> "Trajectory":
        """Sub-trajectory of the first ``n`` points (the paper's ``T^(:i)``)."""
        if not 1 <= n <= len(self):
            raise ValueError(f"prefix length {n} out of range for length {len(self)}")
        ts = self.timestamps[:n] if self.timestamps is not None else None
        return Trajectory(self.points[:n].copy(), traj_id=self.traj_id, timestamps=ts)

    def bbox(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) bounding box."""
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def centroid(self) -> np.ndarray:
        """Mean point of the trajectory."""
        return self.points.mean(axis=0)

    def length_along(self) -> float:
        """Total travelled path length (sum of consecutive point gaps)."""
        if len(self) < 2:
            return 0.0
        return float(np.sqrt((np.diff(self.points, axis=0) ** 2).sum(axis=1)).sum())


@dataclass
class TrajectoryDataset:
    """An ordered collection of trajectories with a name for provenance."""

    trajectories: List[Trajectory]
    name: str = "unnamed"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for i, t in enumerate(self.trajectories):
            if t.traj_id < 0:
                t.traj_id = i

    def __len__(self) -> int:
        return len(self.trajectories)

    def __getitem__(self, idx):
        if isinstance(idx, (slice, list, np.ndarray)):
            if isinstance(idx, slice):
                subset = self.trajectories[idx]
            else:
                subset = [self.trajectories[i] for i in np.asarray(idx).tolist()]
            return TrajectoryDataset(subset, name=self.name, meta=dict(self.meta))
        return self.trajectories[idx]

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    @property
    def points_list(self) -> List[np.ndarray]:
        """The raw (n, 2) point arrays of every trajectory."""
        return [t.points for t in self.trajectories]

    def lengths(self) -> np.ndarray:
        """Number of points of every trajectory, as an int array."""
        return np.array([len(t) for t in self.trajectories], dtype=int)

    def split(self, train_ratio: float, rng: Optional[np.random.Generator] = None):
        """Shuffled train/test split (paper: training ratio tr = 0.2).

        Returns ``(train, test)`` datasets; with ``rng=None`` the order is
        preserved and the first ``train_ratio`` fraction becomes training
        data.
        """
        if not 0.0 < train_ratio < 1.0:
            raise ValueError("train_ratio must be in (0, 1)")
        order = np.arange(len(self))
        if rng is not None:
            order = rng.permutation(order)
        cut = int(round(train_ratio * len(self)))
        cut = max(1, min(len(self) - 1, cut))
        train = self[order[:cut].tolist()]
        test = self[order[cut:].tolist()]
        train.name = f"{self.name}-train"
        test.name = f"{self.name}-test"
        return train, test
