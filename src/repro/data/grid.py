"""Grid-cell mapping used by the NeuTraj baseline.

NeuTraj represents each trajectory point by the grid cell it falls in and
its SAM module attends over a cell's spatial neighbourhood.  The mapper here
converts coordinates to integer cell ids and enumerates neighbouring cells.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["GridMapper"]


class GridMapper:
    """Uniform grid over a bounding box.

    Parameters
    ----------
    bbox:
        (min_x, min_y, max_x, max_y); points outside are clamped to the
        border cells.
    n_cells:
        Number of cells along each axis.
    """

    def __init__(self, bbox: Tuple[float, float, float, float], n_cells: int = 32):
        x0, y0, x1, y1 = bbox
        if x1 <= x0 or y1 <= y0:
            raise ValueError(f"degenerate bbox {bbox}")
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        self.bbox = bbox
        self.n_cells = n_cells
        self._dx = (x1 - x0) / n_cells
        self._dy = (y1 - y0) / n_cells

    @classmethod
    def fit(cls, points: np.ndarray, n_cells: int = 32, pad: float = 1e-9) -> "GridMapper":
        """Build a mapper covering a point cloud."""
        points = np.asarray(points)
        mins = points.min(axis=0) - pad
        maxs = points.max(axis=0) + pad
        return cls((mins[0], mins[1], maxs[0], maxs[1]), n_cells=n_cells)

    @property
    def num_cells(self) -> int:
        """Total number of cells in the grid."""
        return self.n_cells * self.n_cells

    def cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Map (n, 2) points to integer (n, 2) grid coordinates."""
        points = np.asarray(points)
        x0, y0, _, _ = self.bbox
        gx = np.floor((points[..., 0] - x0) / self._dx).astype(int)
        gy = np.floor((points[..., 1] - y0) / self._dy).astype(int)
        gx = np.clip(gx, 0, self.n_cells - 1)
        gy = np.clip(gy, 0, self.n_cells - 1)
        return np.stack([gx, gy], axis=-1)

    def cell_ids(self, points: np.ndarray) -> np.ndarray:
        """Flattened cell id per point: ``gx * n_cells + gy``."""
        coords = self.cell_coords(points)
        return coords[..., 0] * self.n_cells + coords[..., 1]

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Coordinates of a cell's centre."""
        if not 0 <= cell_id < self.num_cells:
            raise ValueError(f"cell id {cell_id} out of range")
        gx, gy = divmod(cell_id, self.n_cells)
        x0, y0, _, _ = self.bbox
        return np.array([x0 + (gx + 0.5) * self._dx, y0 + (gy + 0.5) * self._dy])

    def neighbors(self, cell_id: int, radius: int = 1) -> List[int]:
        """Cell ids in the (2r+1)^2 neighbourhood, clipped at the borders.

        Includes the cell itself; this is the neighbourhood SAM reads.
        """
        gx, gy = divmod(cell_id, self.n_cells)
        out = []
        for dx in range(-radius, radius + 1):
            for dy in range(-radius, radius + 1):
                nx, ny = gx + dx, gy + dy
                if 0 <= nx < self.n_cells and 0 <= ny < self.n_cells:
                    out.append(nx * self.n_cells + ny)
        return out
