"""Parsers for the paper's real datasets (Geolife PLT, Porto CSV).

The offline reproduction runs on synthetic corpora, but downstream users
who download the public datasets can feed them through the identical
pipeline.  Formats:

- **Geolife** distributes one ``.plt`` file per trip: six header lines,
  then ``lat,lon,0,altitude,date_serial,date,time`` per record.
- **Porto** (ECML/PKDD 2015 taxi challenge) is a CSV whose ``POLYLINE``
  column holds a JSON array of ``[lon, lat]`` pairs sampled every 15 s.

Both loaders return a :class:`~repro.data.trajectory.TrajectoryDataset`
ready for :func:`repro.data.prepare`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["load_geolife_plt", "load_geolife_directory", "load_porto_csv"]

_GEOLIFE_HEADER_LINES = 6


def load_geolife_plt(path: Union[str, Path], traj_id: int = -1) -> Trajectory:
    """Parse one Geolife ``.plt`` trip file into a Trajectory.

    Points are stored as (lon, lat) to match the rest of the library;
    timestamps are the PLT date serial converted to seconds.
    """
    path = Path(path)
    lons: List[float] = []
    lats: List[float] = []
    stamps: List[float] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle):
            if line_no < _GEOLIFE_HEADER_LINES:
                continue
            parts = line.strip().split(",")
            if len(parts) < 5:
                raise ValueError(f"{path}: malformed record on line {line_no + 1}")
            lat, lon = float(parts[0]), float(parts[1])
            serial = float(parts[4])
            lats.append(lat)
            lons.append(lon)
            stamps.append(serial * 86_400.0)  # days -> seconds
    if not lons:
        raise ValueError(f"{path}: no records after the header")
    points = np.column_stack([lons, lats])
    return Trajectory(points, traj_id=traj_id, timestamps=np.asarray(stamps))


def load_geolife_directory(
    root: Union[str, Path],
    limit: Optional[int] = None,
    min_points: int = 1,
) -> TrajectoryDataset:
    """Load every ``.plt`` under ``root`` (recursively, sorted for
    determinism) into one dataset."""
    root = Path(root)
    files = sorted(root.rglob("*.plt"))
    if limit is not None:
        files = files[:limit]
    if not files:
        raise FileNotFoundError(f"no .plt files under {root}")
    trajectories = []
    for i, path in enumerate(files):
        traj = load_geolife_plt(path, traj_id=i)
        if len(traj) >= min_points:
            trajectories.append(traj)
    return TrajectoryDataset(trajectories, name="geolife", meta={"kind": "geolife", "root": str(root)})


def load_porto_csv(
    path: Union[str, Path],
    limit: Optional[int] = None,
    polyline_column: str = "POLYLINE",
    sample_period_s: float = 15.0,
) -> TrajectoryDataset:
    """Parse the Porto taxi CSV.

    Rows with empty or single-point polylines are skipped (they carry no
    trajectory information), mirroring the paper's length filtering.
    """
    path = Path(path)
    trajectories: List[Trajectory] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or polyline_column not in reader.fieldnames:
            raise ValueError(f"{path}: missing column {polyline_column!r}")
        for row in reader:
            if limit is not None and len(trajectories) >= limit:
                break
            raw = row[polyline_column].strip()
            if not raw or raw == "[]":
                continue
            try:
                coords = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: bad POLYLINE {raw[:40]!r}") from exc
            if len(coords) < 2:
                continue
            points = np.asarray(coords, dtype=float)
            stamps = np.arange(len(points)) * sample_period_s
            trajectories.append(
                Trajectory(points, traj_id=len(trajectories), timestamps=stamps)
            )
    if not trajectories:
        raise ValueError(f"{path}: no usable trajectories")
    return TrajectoryDataset(trajectories, name="porto", meta={"kind": "porto", "source": str(path)})
