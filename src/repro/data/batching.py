"""Padding and batching helpers for model input.

TMN pads the shorter trajectory of a pair with trailing zero points
(Section IV-B); batched training pads every trajectory in the batch to the
batch maximum and tracks validity masks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["pad_batch", "pair_batch"]


def pad_batch(trajs: Sequence) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad trajectories to a common length with zero points.

    Returns
    -------
    padded:
        Float array (B, L, 2) where L is the longest input length.
    lengths:
        Int array (B,) of the true lengths.
    mask:
        Boolean (B, L); True marks real points.
    """
    points: List[np.ndarray] = []
    for t in trajs:
        p = t.points if hasattr(t, "points") else np.asarray(t, dtype=float)
        if p.ndim != 2 or p.shape[1] != 2:
            raise ValueError(f"expected (n, 2) trajectory, got {p.shape}")
        points.append(p)
    if not points:
        raise ValueError("cannot pad an empty batch")
    lengths = np.array([len(p) for p in points], dtype=int)
    longest = int(lengths.max())
    padded = np.zeros((len(points), longest, 2))
    mask = np.zeros((len(points), longest), dtype=bool)
    for i, p in enumerate(points):
        padded[i, : len(p)] = p
        mask[i, : len(p)] = True
    return padded, lengths, mask


def pair_batch(trajs_a: Sequence, trajs_b: Sequence):
    """Pad two aligned trajectory lists to one common length.

    TMN consumes pairs; both sides must share the time dimension so the
    match pattern ``X_a X_b^T`` is well-formed.  Returns the two padded
    stacks with their lengths and masks.
    """
    if len(trajs_a) != len(trajs_b):
        raise ValueError("pair batch requires equally many left/right trajectories")
    both = list(trajs_a) + list(trajs_b)
    padded, lengths, mask = pad_batch(both)
    b = len(trajs_a)
    return (
        padded[:b],
        lengths[:b],
        mask[:b],
        padded[b:],
        lengths[b:],
        mask[b:],
    )
