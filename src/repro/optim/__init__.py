"""Gradient-based optimizers.

The paper trains TMN with Adam; SGD and learning-rate schedules are included
for the parameter-sensitivity experiments (Figure 4).
"""

from .adam import Adam
from .clip import clip_grad_norm
from .schedule import ConstantLR, ExponentialDecayLR, StepLR
from .sgd import SGD

__all__ = [
    "Adam",
    "SGD",
    "clip_grad_norm",
    "ConstantLR",
    "StepLR",
    "ExponentialDecayLR",
]
