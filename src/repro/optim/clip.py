"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autograd import Tensor

__all__ = ["clip_grad_norm"]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Keeps long-sequence LSTM training stable.
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total
