"""Adam optimizer (Kingma & Ba, 2015) — the paper's optimizer of choice."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..autograd import Tensor

__all__ = ["Adam"]


class Adam:
    """Adam with bias-corrected first/second moment estimates.

    Parameters
    ----------
    params:
        Iterable of tensors with ``requires_grad=True``.
    lr:
        Learning rate (paper default: 5e-3 under DTW on Porto).
    betas:
        Exponential decay rates for the moment estimates.
    eps:
        Numerical stabiliser added to the denominator.
    weight_decay:
        Optional L2 penalty coefficient.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 5e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one Adam update using each parameter's accumulated ``.grad``."""
        self._step += 1
        t = self._step
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            # Sanctioned in-place update: no tape is alive between steps.
            # v_hat is an EMA of squared gradients, nonnegative by invariant.
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # lint: allow(R002, N002)
