"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..autograd import Tensor

__all__ = ["SGD"]


class SGD:
    """Vanilla SGD: ``p -= lr * grad``, with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one SGD update from each parameter's accumulated gradient."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            # Sanctioned in-place update: no tape is alive between steps.
            p.data -= self.lr * grad  # lint: allow(R002)
