"""Learning-rate schedules.

Small, explicit schedule objects that mutate an optimizer's ``lr``; used by
the Figure 4 learning-rate sensitivity experiments.
"""

from __future__ import annotations

__all__ = ["ConstantLR", "StepLR", "ExponentialDecayLR"]


class ConstantLR:
    """Keeps the learning rate fixed; exists so trainers can treat schedules uniformly."""

    def __init__(self, optimizer):
        self.optimizer = optimizer

    def step(self) -> float:
        """Advance one epoch and return the (possibly updated) learning rate."""
        return self.optimizer.lr


class StepLR:
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the (possibly updated) learning rate."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class ExponentialDecayLR:
    """Multiply lr by ``gamma`` every epoch."""

    def __init__(self, optimizer, gamma: float = 0.95):
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> float:
        """Advance one epoch and return the (possibly updated) learning rate."""
        self.optimizer.lr *= self.gamma
        return self.optimizer.lr
