"""Brute-force nearest neighbours — the oracle the k-d tree is tested against,
and the top-k search backend for embedding vectors (Section V-B2: prior work
computes all pairwise similarities and sorts)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["BruteForceIndex", "knn_brute"]


def knn_brute(base: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k-NN by full distance computation.

    Returns ``(distances, indices)`` of shape (Q, k), sorted ascending.
    """
    base = np.asarray(base, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if not 1 <= k <= len(base):
        raise ValueError(f"k must be in [1, {len(base)}]")
    # (Q, N) distance matrix via the expanded quadratic form.
    sq_b = (base**2).sum(axis=1)
    sq_q = (queries**2).sum(axis=1)
    d2 = sq_q[:, None] + sq_b[None, :] - 2.0 * queries @ base.T
    np.maximum(d2, 0.0, out=d2)
    idx = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
    part = np.take_along_axis(d2, idx, axis=1)
    order = np.argsort(part, axis=1, kind="stable")
    idx = np.take_along_axis(idx, order, axis=1)
    dists = np.sqrt(np.take_along_axis(d2, idx, axis=1))
    return dists, idx


class BruteForceIndex:
    """Minimal index-like wrapper over :func:`knn_brute`."""

    def __init__(self, base: np.ndarray):
        self.base = np.asarray(base, dtype=np.float64)
        if self.base.ndim != 2 or len(self.base) == 0:
            raise ValueError("base must be a non-empty (n, d) array")

    def query(self, point: np.ndarray, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbours of one point."""
        dists, idx = knn_brute(self.base, np.asarray(point)[None, :], k)
        return dists[0], idx[0]

    def query_batch(self, points: np.ndarray, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbours of many points."""
        return knn_brute(self.base, points, k)
