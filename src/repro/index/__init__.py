"""Spatial indexing substrate: a from-scratch k-d tree (backs Traj2SimVec's
sampling and the TMN-kd ablation) and a brute-force oracle."""

from .brute import BruteForceIndex, knn_brute
from .hnsw import HNSWIndex
from .kdtree import KDTree

__all__ = ["KDTree", "BruteForceIndex", "HNSWIndex", "knn_brute"]
